package core

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ooddash/internal/efficiency/effmath"
	"ooddash/internal/slurm"
)

// The long-range usage widgets: cluster-wide views that only became
// affordable with the rollup pipeline — a year of day buckets costs 365
// rows no matter how many jobs accounting holds. All three serve any
// authenticated user (the series aggregate across users, so per-job privacy
// does not apply) and ride the encode-once rendered cache with a single
// shared variant.

// ClusterUsageResponse is the cluster-wide usage chart: one series of
// bucketed totals, defaulting to the last year at day resolution.
type ClusterUsageResponse struct {
	BucketSecs   int64        `json:"bucket_seconds"`
	Resolution   string       `json:"resolution,omitempty"`
	PartialStart bool         `json:"partial_start,omitempty"`
	PartialEnd   bool         `json:"partial_end,omitempty"`
	Buckets      []TimeBucket `json:"buckets"`
}

// handleUsageCluster serves /api/usage/cluster?range=&bucket= — total
// cluster consumption over time (default range 1y).
func (s *Server) handleUsageCluster(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRangeDefault(r, now, "1y")
	if err != nil {
		writeError(w, err)
		return
	}
	if start.IsZero() {
		minEnd, _, ok, berr := s.rollupBounds(r, slurm.RollupScopeTotal, "")
		if berr != nil {
			writeFetchError(w, berr)
			return
		}
		if !ok {
			writeJSON(w, http.StatusOK, ClusterUsageResponse{})
			return
		}
		start = time.Unix(minEnd, 0).UTC()
	}
	series, meta, err := s.fetchRollup(r, rollupQuery{
		scope: slurm.RollupScopeTotal,
		start: start, end: end, bucket: r.URL.Query().Get("bucket"),
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		resp := &ClusterUsageResponse{
			BucketSecs: series.Res, Resolution: resolutionName(series.Res),
			PartialStart: series.PartialStart, PartialEnd: series.PartialEnd,
		}
		for i := range series.Rows {
			row := &series.Rows[i]
			resp.Buckets = append(resp.Buckets, TimeBucket{
				Start:     time.Unix(row.BucketStart, 0).UTC(),
				Jobs:      int(row.Jobs),
				Completed: int(row.Completed),
				Failed:    int(row.Failed),
				CPUHours:  float64(row.CPUSec) / 3600,
				GPUHours:  float64(row.GPUSec) / 3600,
				WallHours: float64(row.WallSec) / 3600,
			})
		}
		return resp, nil
	})
}

// AccountUsage is one account's consumption over the window.
type AccountUsage struct {
	Account   string  `json:"account"`
	Jobs      int64   `json:"jobs"`
	CPUHours  float64 `json:"cpu_hours"`
	GPUHours  float64 `json:"gpu_hours"`
	WallHours float64 `json:"wall_hours"`
}

// TopAccountsResponse ranks accounts by CPU-hours consumed in the window.
type TopAccountsResponse struct {
	RangeStart time.Time      `json:"range_start"`
	RangeEnd   time.Time      `json:"range_end"`
	Resolution string         `json:"resolution,omitempty"`
	Accounts   []AccountUsage `json:"accounts"`
}

// handleUsageAccounts serves /api/usage/accounts?range=&top= — the heaviest
// accounts in the window (default range 90d, top 10), ordered by CPU-hours.
func (s *Server) handleUsageAccounts(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRangeDefault(r, now, "90d")
	if err != nil {
		writeError(w, err)
		return
	}
	top := 10
	if v := r.URL.Query().Get("top"); v != "" {
		top, err = strconv.Atoi(v)
		if err != nil || top < 1 {
			writeError(w, fmt.Errorf("%w: bad top %q", errBadRequest, v))
			return
		}
	}
	if start.IsZero() {
		minEnd, _, ok, berr := s.rollupBounds(r, slurm.RollupScopeAccount, "")
		if berr != nil {
			writeFetchError(w, berr)
			return
		}
		if !ok {
			writeJSON(w, http.StatusOK, TopAccountsResponse{
				RangeStart: start, RangeEnd: end, Accounts: []AccountUsage{},
			})
			return
		}
		start = time.Unix(minEnd, 0).UTC()
	}
	series, meta, err := s.fetchRollup(r, rollupQuery{
		scope: slurm.RollupScopeAccount, start: start, end: end,
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		byAccount := make(map[string]*AccountUsage)
		for i := range series.Rows {
			row := &series.Rows[i]
			a := byAccount[row.Name]
			if a == nil {
				a = &AccountUsage{Account: row.Name}
				byAccount[row.Name] = a
			}
			a.Jobs += row.Jobs
			a.CPUHours += float64(row.CPUSec) / 3600
			a.GPUHours += float64(row.GPUSec) / 3600
			a.WallHours += float64(row.WallSec) / 3600
		}
		ranked := make([]AccountUsage, 0, len(byAccount))
		for _, a := range byAccount {
			ranked = append(ranked, *a)
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].CPUHours != ranked[j].CPUHours {
				return ranked[i].CPUHours > ranked[j].CPUHours
			}
			return ranked[i].Account < ranked[j].Account
		})
		if len(ranked) > top {
			ranked = ranked[:top]
		}
		return &TopAccountsResponse{
			RangeStart: start, RangeEnd: end,
			Resolution: resolutionName(series.Res), Accounts: ranked,
		}, nil
	})
}

// EfficiencyPoint is one bucket of the cluster efficiency trend. The
// percentages are means over the jobs that ended in the bucket; nil means
// not applicable (no jobs carried that metric).
type EfficiencyPoint struct {
	Start         time.Time `json:"start"`
	Jobs          int64     `json:"jobs"`
	TimePercent   *float64  `json:"time_percent"`
	CPUPercent    *float64  `json:"cpu_percent"`
	MemoryPercent *float64  `json:"memory_percent"`
	GPUPercent    *float64  `json:"gpu_percent"`
}

// EfficiencyTrendResponse is the cluster-wide efficiency-over-time payload.
type EfficiencyTrendResponse struct {
	BucketSecs   int64             `json:"bucket_seconds"`
	Resolution   string            `json:"resolution,omitempty"`
	PartialStart bool              `json:"partial_start,omitempty"`
	PartialEnd   bool              `json:"partial_end,omitempty"`
	Points       []EfficiencyPoint `json:"points"`
}

// handleUsageEfficiency serves /api/usage/efficiency?range=&bucket= — mean
// time/CPU/memory/GPU efficiency per bucket across the whole cluster
// (default range 30d), from the rollup store's exact fixed-point sums.
func (s *Server) handleUsageEfficiency(w http.ResponseWriter, r *http.Request) {
	if _, err := s.currentUser(r); err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRangeDefault(r, now, "30d")
	if err != nil {
		writeError(w, err)
		return
	}
	if start.IsZero() {
		minEnd, _, ok, berr := s.rollupBounds(r, slurm.RollupScopeTotal, "")
		if berr != nil {
			writeFetchError(w, berr)
			return
		}
		if !ok {
			writeJSON(w, http.StatusOK, EfficiencyTrendResponse{})
			return
		}
		start = time.Unix(minEnd, 0).UTC()
	}
	series, meta, err := s.fetchRollup(r, rollupQuery{
		scope: slurm.RollupScopeTotal,
		start: start, end: end, bucket: r.URL.Query().Get("bucket"),
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, "", func() (any, error) {
		resp := &EfficiencyTrendResponse{
			BucketSecs: series.Res, Resolution: resolutionName(series.Res),
			PartialStart: series.PartialStart, PartialEnd: series.PartialEnd,
		}
		conv := func(sumMicro, n int64) *float64 {
			v := effmath.FromMicro(sumMicro, n)
			if v < 0 {
				return nil
			}
			return &v
		}
		for i := range series.Rows {
			row := &series.Rows[i]
			resp.Points = append(resp.Points, EfficiencyPoint{
				Start:         time.Unix(row.BucketStart, 0).UTC(),
				Jobs:          row.Jobs,
				TimePercent:   conv(row.TimeEffMicro, row.TimeEffN),
				CPUPercent:    conv(row.CPUEffMicro, row.CPUEffN),
				MemoryPercent: conv(row.MemEffMicro, row.MemEffN),
				GPUPercent:    conv(row.GPUEffMicro, row.GPUEffN),
			})
		}
		return resp, nil
	})
}
