package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestMemLogStoreTail(t *testing.T) {
	m := NewMemLogStore()
	m.Write("/a.log", "one\ntwo\nthree\n")
	lines, total, err := m.ReadTail("/a.log", 2)
	if err != nil {
		t.Fatal(err)
	}
	if total != 3 || len(lines) != 2 {
		t.Fatalf("total=%d lines=%d", total, len(lines))
	}
	if lines[0].Number != 2 || lines[0].Text != "two" {
		t.Fatalf("lines[0] = %+v", lines[0])
	}
	if lines[1].Number != 3 || lines[1].Text != "three" {
		t.Fatalf("lines[1] = %+v", lines[1])
	}
}

func TestMemLogStoreAppend(t *testing.T) {
	m := NewMemLogStore()
	m.Append("/b.log", "first")
	m.Append("/b.log", "second\n")
	lines, total, err := m.ReadTail("/b.log", 10)
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || lines[0].Text != "first" || lines[1].Text != "second" {
		t.Fatalf("lines = %+v", lines)
	}
	if !m.Exists("/b.log") || m.Exists("/c.log") {
		t.Fatal("Exists wrong")
	}
}

func TestMemLogStoreMissing(t *testing.T) {
	m := NewMemLogStore()
	if _, _, err := m.ReadTail("/missing", 10); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestTailLinesEdgeCases(t *testing.T) {
	if lines, total := tailLines("", 5); lines != nil || total != 0 {
		t.Fatalf("empty = %v %d", lines, total)
	}
	// No trailing newline.
	lines, total := tailLines("a\nb", 5)
	if total != 2 || lines[1].Text != "b" {
		t.Fatalf("no-newline = %+v", lines)
	}
	// maxLines 0 means everything.
	lines, total = tailLines("a\nb\nc\n", 0)
	if total != 3 || len(lines) != 3 {
		t.Fatalf("unbounded = %d/%d", len(lines), total)
	}
}

func TestOSLogStoreTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.out")
	var b strings.Builder
	for i := 1; i <= 5000; i++ {
		fmt.Fprintf(&b, "line %d\n", i)
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o600); err != nil {
		t.Fatal(err)
	}
	var store OSLogStore
	lines, total, err := store.ReadTail(path, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if total != 5000 || len(lines) != 1000 {
		t.Fatalf("total=%d lines=%d", total, len(lines))
	}
	if lines[0].Number != 4001 || lines[0].Text != "line 4001" {
		t.Fatalf("lines[0] = %+v", lines[0])
	}
	if lines[999].Number != 5000 {
		t.Fatalf("last = %+v", lines[999])
	}
}

func TestOSLogStoreShortFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short.out")
	if err := os.WriteFile(path, []byte("only\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	var store OSLogStore
	lines, total, err := store.ReadTail(path, 1000)
	if err != nil || total != 1 || len(lines) != 1 {
		t.Fatalf("short = %v %d %v", lines, total, err)
	}
	if _, _, err := store.ReadTail(filepath.Join(dir, "nope"), 10); err == nil {
		t.Fatal("expected error for missing file")
	}
}
