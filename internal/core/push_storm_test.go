package core

import (
	"net/http"
	"testing"

	"ooddash/internal/push"
	"ooddash/internal/resilience"
	"ooddash/internal/slurmcli"
)

// ctldState returns the slurmctld breaker's snapshot.
func ctldState(t *testing.T, e *env) resilience.Stats {
	t.Helper()
	for _, b := range e.server.Resilience().Snapshot() {
		if b.Source == srcCtld {
			return b
		}
	}
	t.Fatal("no slurmctld breaker registered")
	return resilience.Stats{}
}

// TestDrillPushBackoffUnderNodeFailureStorm asserts the push scheduler's
// load-shedding posture through a node-failure storm that takes slurmctld
// out: while refreshes come back degraded (stale-while-error, then breaker
// short-circuits) the source's cadence stretches to 2xTTL, and once the
// storm clears and the breaker closes the 1xTTL cadence returns.
func TestDrillPushBackoffUnderNodeFailureStorm(t *testing.T) {
	var fr *slurmcli.FaultRunner
	e := newEnvWith(t, func(c *Config) {
		c.Push.DisableIdlePause = true // no SSE subscriber in this drill
		c.Push.Jitter = -1             // exact cadence math below
	}, func(inner slurmcli.Runner) slurmcli.Runner {
		fr = slurmcli.NewFaultRunner(inner, 7, nil)
		return fr
	})
	sched := e.server.PushScheduler()
	route := e.server.pushRoutes["system_status"]
	ttl := route.ttl
	if _, err := sched.Register(push.Source{
		Widget: route.widget, Key: route.key("alice"), TTL: ttl,
		Fetch: e.server.pushFetch(route, "alice"),
	}); err != nil {
		t.Fatal(err)
	}
	// Warm the cache so the storm has a last-known-good value to degrade to.
	e.wantStatus("alice", "/api/system_status", http.StatusOK)

	// The storm: nodes start failing their health checks and slurmctld stops
	// answering under the load.
	for _, n := range []string{"c001", "c002", "c003"} {
		if err := e.cluster.Ctl.SetNodeDown(n, "health check storm"); err != nil {
			t.Fatal(err)
		}
	}
	fr.SetRules(slurmcli.FaultRule{Outage: true})

	// First due refresh hits the dead controller, serves stale, and must
	// stretch its own cadence to 2xTTL.
	e.clock.Advance(ttl)
	if ran := e.server.TickPush(); ran != 1 {
		t.Fatalf("refreshes at 1xTTL into the storm = %d, want 1", ran)
	}
	if got := sched.Stats().Skipped; got != 1 {
		t.Fatalf("skipped cycles after degraded refresh = %d, want 1", got)
	}

	// One TTL later the source must NOT be due: that cycle is shed.
	e.clock.Advance(ttl)
	if ran := e.server.TickPush(); ran != 0 {
		t.Fatalf("refreshes during the shed cycle = %d, want 0", ran)
	}

	// Meanwhile client traffic keeps failing over to stale data and opens
	// the breaker (FailureThreshold consecutive failed calls).
	for i := 0; i < 3; i++ {
		status, hdr, body := e.getFull("alice", "/api/system_status")
		if status != http.StatusOK || hdr.Get(degradedHeader) == "" {
			t.Fatalf("storm request %d: status %d degraded=%q: %.120s",
				i, status, hdr.Get(degradedHeader), body)
		}
	}
	if st := ctldState(t, e); st.State != resilience.Open {
		t.Fatalf("breaker state during storm = %s, want open", st.State)
	}

	// The stretched refresh fires at 2xTTL, short-circuits on the open
	// breaker, stays degraded, and stretches again.
	e.clock.Advance(ttl)
	if ran := e.server.TickPush(); ran != 1 {
		t.Fatalf("refreshes at the stretched due time = %d, want 1", ran)
	}
	if got := sched.Stats().Skipped; got != 2 {
		t.Fatalf("skipped cycles while breaker open = %d, want 2", got)
	}
	e.clock.Advance(ttl)
	if ran := e.server.TickPush(); ran != 0 {
		t.Fatalf("refreshes during the second shed cycle = %d, want 0", ran)
	}

	// Storm over: controller answers again, nodes reboot back into service.
	fr.SetRules()
	for _, n := range []string{"c001", "c002", "c003"} {
		if err := e.cluster.Ctl.RebootNode(n, "storm recovery"); err != nil {
			t.Fatal(err)
		}
	}
	skippedBefore := sched.Stats().Skipped

	// The next due refresh probes the half-open breaker, succeeds fresh, and
	// restores the 1xTTL cadence.
	e.clock.Advance(ttl)
	if ran := e.server.TickPush(); ran != 1 {
		t.Fatalf("refreshes at recovery = %d, want 1", ran)
	}
	if st := ctldState(t, e); st.State != resilience.Closed {
		t.Fatalf("breaker state after recovery probe = %s, want closed", st.State)
	}
	e.clock.Advance(ttl)
	if ran := e.server.TickPush(); ran != 1 {
		t.Fatalf("refreshes one TTL after recovery = %d, want 1 (cadence restored)", ran)
	}
	if got := sched.Stats().Skipped; got != skippedBefore {
		t.Fatalf("skipped cycles grew after recovery: %d -> %d", skippedBefore, got)
	}
}
