package core

import (
	"context"
	"encoding/csv"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"ooddash/internal/efficiency"
	"ooddash/internal/efficiency/effmath"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// explainReason adapts the efficiency package's reason table for routes.
func explainReason(r slurm.PendingReason) (string, bool) {
	if r == slurm.ReasonNone || r == "" {
		return "", false
	}
	return efficiency.ExplainReason(r)
}

// parseTimeRange interprets the range/from/to query parameters shared by
// My Jobs and Job Performance Metrics (§5: last 24 hours through all time,
// plus a custom range).
func parseTimeRange(r *http.Request, now time.Time) (start, end time.Time, err error) {
	return parseTimeRangeDefault(r, now, "7d")
}

// parseTimeRangeDefault is parseTimeRange with a caller-chosen default
// range, for the long-horizon usage widgets that default to a year. An
// empty custom window (from == to, or ending before it starts) is rejected:
// every range here is half-open, so such a window can only ever be empty.
func parseTimeRangeDefault(r *http.Request, now time.Time, def string) (start, end time.Time, err error) {
	rng := r.URL.Query().Get("range")
	if rng == "" {
		rng = def
	}
	switch rng {
	case "24h":
		return now.Add(-24 * time.Hour), now, nil
	case "7d":
		return now.Add(-7 * 24 * time.Hour), now, nil
	case "30d":
		return now.Add(-30 * 24 * time.Hour), now, nil
	case "90d":
		return now.Add(-90 * 24 * time.Hour), now, nil
	case "1y":
		return now.Add(-365 * 24 * time.Hour), now, nil
	case "all":
		return time.Time{}, now, nil
	case "custom":
		from := r.URL.Query().Get("from")
		to := r.URL.Query().Get("to")
		start, err = time.Parse(time.RFC3339, from)
		if err != nil {
			return start, end, fmt.Errorf("%w: bad from %q", errBadRequest, from)
		}
		end, err = time.Parse(time.RFC3339, to)
		if err != nil {
			return start, end, fmt.Errorf("%w: bad to %q", errBadRequest, to)
		}
		if !end.After(start) {
			return start, end, fmt.Errorf("%w: range ends on or before it starts", errBadRequest)
		}
		return start, end, nil
	default:
		return start, end, fmt.Errorf("%w: unknown range %q", errBadRequest, rng)
	}
}

// EfficiencyView is the toggleable efficiency column triple (§4.3). Nil
// percentages mean not applicable (job has not run).
type EfficiencyView struct {
	TimePercent   *float64 `json:"time_percent"`
	CPUPercent    *float64 `json:"cpu_percent"`
	MemoryPercent *float64 `json:"memory_percent"`
	// GPUPercent carries the §9 GPU-utilization extension; null for
	// CPU-only jobs.
	GPUPercent *float64 `json:"gpu_percent"`
}

func efficiencyView(m efficiency.Metrics) EfficiencyView {
	conv := func(v float64) *float64 {
		if v < 0 {
			return nil
		}
		return &v
	}
	return EfficiencyView{
		TimePercent:   conv(m.TimePercent),
		CPUPercent:    conv(m.CPUPercent),
		MemoryPercent: conv(m.MemoryPercent),
		GPUPercent:    conv(m.GPUPercent),
	}
}

// JobRow is one row of the My Jobs table (§4.1), expanded form included.
type JobRow struct {
	JobID     string `json:"job_id"`
	Name      string `json:"name"`
	User      string `json:"user"`
	Account   string `json:"account"`
	Partition string `json:"partition"`
	QOS       string `json:"qos"`
	State     string `json:"state"`
	Reason    string `json:"reason,omitempty"`
	// ReasonHelp is the friendly explanation of the pending reason.
	ReasonHelp string `json:"reason_help,omitempty"`

	SubmitTime time.Time `json:"submit_time"`
	StartTime  time.Time `json:"start_time,omitempty"`
	EndTime    time.Time `json:"end_time,omitempty"`
	// WaitSeconds is the queue wait; ElapsedSeconds the wall time so far.
	WaitSeconds      int64 `json:"wait_seconds"`
	ElapsedSeconds   int64 `json:"elapsed_seconds"`
	TimeLimitSeconds int64 `json:"time_limit_seconds"`

	// Expanded-view details.
	ReqCPUs   int     `json:"req_cpus"`
	AllocCPUs int     `json:"alloc_cpus"`
	ReqMemMB  int64   `json:"req_mem_mb"`
	GPUs      int     `json:"gpus"`
	GPUHours  float64 `json:"gpu_hours"`
	NodeList  string  `json:"node_list,omitempty"`
	ExitCode  int     `json:"exit_code"`
	WorkDir   string  `json:"work_dir,omitempty"`

	Efficiency EfficiencyView `json:"efficiency"`
	Warnings   []string       `json:"warnings,omitempty"`

	IsArrayTask bool   `json:"is_array_task,omitempty"`
	App         string `json:"app,omitempty"`
	SessionID   string `json:"session_id,omitempty"`
	OverviewURL string `json:"overview_url"`
}

// MyJobsResponse is the My Jobs API payload.
type MyJobsResponse struct {
	Jobs []JobRow `json:"jobs"`
	// Total is the row count before any filtering, for the charts.
	Total int `json:"total"`
	// Matched is the post-filter count before pagination; Offset echoes the
	// requested page start so the table can render pager controls.
	Matched int `json:"matched"`
	Offset  int `json:"offset"`
}

// jobRowFromSacct converts an accounting row to the API row shape.
func jobRowFromSacct(row *slurmcli.SacctRow, now time.Time, th efficiency.Thresholds) JobRow {
	jr := JobRow{
		JobID:     row.JobID,
		Name:      row.Name,
		User:      row.User,
		Account:   row.Account,
		Partition: row.Partition,
		QOS:       row.QOS,
		State:     string(row.State),

		SubmitTime:       row.SubmitTime,
		StartTime:        row.StartTime,
		EndTime:          row.EndTime,
		ElapsedSeconds:   int64(row.Elapsed / time.Second),
		TimeLimitSeconds: int64(row.TimeLimit / time.Second),

		ReqCPUs:   row.ReqCPUs,
		AllocCPUs: row.AllocCPUs,
		ReqMemMB:  row.ReqMemMB,
		GPUs:      row.AllocTRES.GPUs,
		GPUHours:  row.GPUHours(),
		NodeList:  row.NodeList,
		ExitCode:  row.ExitCode,
		WorkDir:   row.WorkDir,

		IsArrayTask: row.IsArrayTask(),
		OverviewURL: "/job/" + row.JobID,
	}
	if row.NodeList == "None assigned" {
		jr.NodeList = ""
	}
	if row.State == slurm.StatePending {
		jr.Reason = string(row.Reason)
		if msg, ok := explainReason(row.Reason); ok {
			jr.ReasonHelp = msg
		}
		jr.WaitSeconds = int64(now.Sub(row.SubmitTime) / time.Second)
	} else if !row.StartTime.IsZero() {
		jr.WaitSeconds = int64(row.StartTime.Sub(row.SubmitTime) / time.Second)
	}
	jr.Efficiency = efficiencyView(efficiency.Compute(row))
	for _, warning := range efficiency.Warnings(row, th) {
		jr.Warnings = append(jr.Warnings, warning.Message)
	}
	if app, sess, ok := row.SessionInfo(); ok {
		jr.App, jr.SessionID = app, sess
	}
	return jr
}

// fetchUserJobs returns the table rows visible to the user (their own jobs
// plus their groups', §2.4 Privacy) in the window, cached per (user, window).
// The cache holds fully converted rows — efficiency metrics and warning
// strings are the expensive part of this route, so they are computed once
// per TTL instead of once per request; filters and pagination then run over
// the cached slice.
func (s *Server) fetchUserJobs(r *http.Request, userName string, accounts []string, start, end time.Time) ([]JobRow, fetchMeta, error) {
	// Built without Sprintf: this key is recomputed on every My Jobs request
	// (hit or miss), and Sprintf boxes both ints per call.
	key := "myjobs:" + userName + ":" +
		strconv.FormatInt(start.Unix(), 10) + ":" + strconv.FormatInt(end.Unix(), 10)
	v, meta, err := s.fetchVia(r, srcDBD, key, s.cfg.TTLs.JobHistory, func(ctx context.Context) (any, error) {
		rows, err := s.dbdBk.Sacct(ctx, slurmcli.SacctOptions{
			Accounts: accounts, AllUsers: true,
			Start: start, End: end,
		})
		if err != nil {
			return nil, err
		}
		now := s.clock.Now()
		th := efficiency.DefaultThresholds()
		converted := make([]JobRow, len(rows))
		for i := range rows {
			converted[i] = jobRowFromSacct(&rows[i], now, th)
		}
		// Newest submissions first, the table's default sort.
		sort.SliceStable(converted, func(i, j int) bool {
			return converted[i].SubmitTime.After(converted[j].SubmitTime)
		})
		return converted, nil
	})
	if err != nil {
		return nil, fetchMeta{}, err
	}
	return v.([]JobRow), meta, nil
}

func (s *Server) handleMyJobs(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	rows, meta, err := s.fetchUserJobs(r, user.Name, user.Accounts, start, end)
	if err != nil {
		writeFetchError(w, err)
		return
	}

	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		// Optional filters mirroring the page's controls.
		q := r.URL.Query()
		stateFilter := strings.ToUpper(q.Get("state"))
		userFilter := q.Get("user")
		accountFilter := q.Get("account")
		onlyMine := q.Get("mine") == "1"

		resp := MyJobsResponse{Total: len(rows)}
		for i := range rows {
			row := &rows[i]
			if onlyMine && row.User != user.Name {
				continue
			}
			if userFilter != "" && row.User != userFilter {
				continue
			}
			if accountFilter != "" && row.Account != accountFilter {
				continue
			}
			if stateFilter != "" && row.State != stateFilter {
				continue
			}
			resp.Jobs = append(resp.Jobs, *row)
		}
		resp.Matched = len(resp.Jobs)

		// Pagination: DataTables-style limit/offset keeps large histories from
		// shipping megabytes per request.
		offset, limit := 0, 0
		if v := q.Get("offset"); v != "" {
			offset, err = strconv.Atoi(v)
			if err != nil || offset < 0 {
				return nil, fmt.Errorf("%w: bad offset %q", errBadRequest, v)
			}
		}
		if v := q.Get("limit"); v != "" {
			limit, err = strconv.Atoi(v)
			if err != nil || limit <= 0 {
				return nil, fmt.Errorf("%w: bad limit %q", errBadRequest, v)
			}
		}
		if offset > len(resp.Jobs) {
			offset = len(resp.Jobs)
		}
		resp.Offset = offset
		resp.Jobs = resp.Jobs[offset:]
		if limit > 0 && len(resp.Jobs) > limit {
			resp.Jobs = resp.Jobs[:limit]
		}
		return resp, nil
	})
}

// handleMyJobsExport streams the (filtered) My Jobs table as CSV — the
// DataTables-style export next to the §3.4 account export, with the same
// scope and filters as the JSON route.
func (s *Server) handleMyJobsExport(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	rows, meta, err := s.fetchUserJobs(r, user.Name, user.Accounts, start, end)
	if err != nil {
		writeFetchError(w, err)
		return
	}
	q := r.URL.Query()
	stateFilter := strings.ToUpper(q.Get("state"))
	onlyMine := q.Get("mine") == "1"

	setDegradedHeader(w, meta)
	setPrivateCache(w.Header())
	w.Header().Set("Content-Type", "text/csv")
	w.Header().Set("Content-Disposition",
		fmt.Sprintf("attachment; filename=%s-jobs-%s.csv", s.cfg.ClusterName, user.Name))
	cw := csv.NewWriter(w)
	_ = cw.Write([]string{"job_id", "name", "user", "account", "partition", "qos",
		"state", "submit", "start", "end", "wait_seconds", "elapsed_seconds",
		"req_cpus", "req_mem_mb", "gpus", "gpu_hours",
		"time_eff_pct", "cpu_eff_pct", "mem_eff_pct", "exit_code"})
	fmtTime := func(t time.Time) string {
		if t.IsZero() {
			return ""
		}
		return t.UTC().Format(time.RFC3339)
	}
	fmtEff := func(v *float64) string {
		if v == nil {
			return ""
		}
		return strconv.FormatFloat(*v, 'f', 1, 64)
	}
	for i := range rows {
		row := &rows[i]
		if onlyMine && row.User != user.Name {
			continue
		}
		if stateFilter != "" && row.State != stateFilter {
			continue
		}
		_ = cw.Write([]string{
			row.JobID, row.Name, row.User, row.Account, row.Partition, row.QOS,
			row.State, fmtTime(row.SubmitTime), fmtTime(row.StartTime), fmtTime(row.EndTime),
			strconv.FormatInt(row.WaitSeconds, 10),
			strconv.FormatInt(row.ElapsedSeconds, 10),
			strconv.Itoa(row.ReqCPUs),
			strconv.FormatInt(row.ReqMemMB, 10),
			strconv.Itoa(row.GPUs),
			strconv.FormatFloat(row.GPUHours, 'f', 2, 64),
			fmtEff(row.Efficiency.TimePercent),
			fmtEff(row.Efficiency.CPUPercent),
			fmtEff(row.Efficiency.MemoryPercent),
			strconv.Itoa(row.ExitCode),
		})
	}
	cw.Flush()
}

// --- My Jobs charts (§4.2) --------------------------------------------------

// UserStateBar is one stacked bar of the job-state distribution chart:
// a user's job counts by state.
type UserStateBar struct {
	User   string         `json:"user"`
	Total  int            `json:"total"`
	States map[string]int `json:"states"`
}

// UserGPUHours is one bar of the GPU-hour distribution chart.
type UserGPUHours struct {
	User     string  `json:"user"`
	GPUHours float64 `json:"gpu_hours"`
}

// ChartsResponse is the My Jobs charts API payload.
type ChartsResponse struct {
	StateDistribution []UserStateBar `json:"state_distribution"`
	GPUHours          []UserGPUHours `json:"gpu_hours"`
}

func (s *Server) handleMyJobsCharts(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	rows, meta, err := s.fetchUserJobs(r, user.Name, user.Accounts, start, end)
	if err != nil {
		writeFetchError(w, err)
		return
	}

	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		states := make(map[string]*UserStateBar)
		gpu := make(map[string]float64)
		for i := range rows {
			row := &rows[i]
			bar := states[row.User]
			if bar == nil {
				bar = &UserStateBar{User: row.User, States: make(map[string]int)}
				states[row.User] = bar
			}
			bar.States[row.State]++
			bar.Total++
			gpu[row.User] += row.GPUHours
		}
		resp := ChartsResponse{}
		for _, bar := range states {
			resp.StateDistribution = append(resp.StateDistribution, *bar)
		}
		sort.Slice(resp.StateDistribution, func(i, j int) bool {
			if resp.StateDistribution[i].Total != resp.StateDistribution[j].Total {
				return resp.StateDistribution[i].Total > resp.StateDistribution[j].Total
			}
			return resp.StateDistribution[i].User < resp.StateDistribution[j].User
		})
		for u, hours := range gpu {
			if hours > 0 {
				resp.GPUHours = append(resp.GPUHours, UserGPUHours{User: u, GPUHours: hours})
			}
		}
		sort.Slice(resp.GPUHours, func(i, j int) bool {
			if resp.GPUHours[i].GPUHours != resp.GPUHours[j].GPUHours {
				return resp.GPUHours[i].GPUHours > resp.GPUHours[j].GPUHours
			}
			return resp.GPUHours[i].User < resp.GPUHours[j].User
		})
		return resp, nil
	})
}

// --- Job Performance Metrics (§5) --------------------------------------------

// JobPerfResponse is the aggregate metrics payload: the summary cards of
// the Job Performance Metrics app.
type JobPerfResponse struct {
	RangeStart time.Time `json:"range_start,omitempty"`
	RangeEnd   time.Time `json:"range_end"`

	TotalJobs        int     `json:"total_jobs"`
	CompletedJobs    int     `json:"completed_jobs"`
	FailedJobs       int     `json:"failed_jobs"`
	AvgWaitSeconds   float64 `json:"avg_wait_seconds"`
	MeanDurationSecs float64 `json:"mean_duration_seconds"`
	TotalWallSeconds int64   `json:"total_wall_seconds"`
	TotalCPUHours    float64 `json:"total_cpu_hours"`
	TotalGPUHours    float64 `json:"total_gpu_hours"`

	AvgTimeEfficiency   float64 `json:"avg_time_efficiency"`
	AvgCPUEfficiency    float64 `json:"avg_cpu_efficiency"`
	AvgMemoryEfficiency float64 `json:"avg_memory_efficiency"`
}

func (s *Server) handleJobPerf(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	// Job Performance Metrics covers the user's own terminal jobs, summed
	// from the rollup pipeline over the bucket-aligned window. Queued and
	// running work has no end time yet and so no bucket; the queue views
	// cover it.
	if start.IsZero() {
		minEnd, _, ok, berr := s.rollupBounds(r, slurm.RollupScopeUser, user.Name)
		if berr != nil {
			writeFetchError(w, berr)
			return
		}
		if !ok {
			writeJSON(w, http.StatusOK, JobPerfResponse{RangeStart: start, RangeEnd: end})
			return
		}
		start = time.Unix(minEnd, 0).UTC()
	}
	series, meta, err := s.fetchRollup(r, rollupQuery{
		scope: slurm.RollupScopeUser, name: user.Name, start: start, end: end,
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		return aggregateJobPerf(start, end, series), nil
	})
}

// aggregateJobPerf folds a rollup window into the summary metrics. The
// efficiency averages come from the store's exact fixed-point sums, so they
// equal a per-job mean recomputed from accounting rows.
func aggregateJobPerf(start, end time.Time, sr rollupSeries) JobPerfResponse {
	resp := JobPerfResponse{RangeStart: start, RangeEnd: end}
	var total slurm.RollupAgg
	for i := range sr.Rows {
		total.Add(&sr.Rows[i].RollupAgg)
	}
	resp.TotalJobs = int(total.Jobs)
	resp.CompletedJobs = int(total.Completed)
	resp.FailedJobs = int(total.Failed)
	if total.Started > 0 {
		resp.AvgWaitSeconds = float64(total.WaitSec) / float64(total.Started)
		resp.MeanDurationSecs = float64(total.WallSec) / float64(total.Started)
	}
	resp.TotalWallSeconds = total.WallSec
	resp.TotalCPUHours = float64(total.CPUSec) / 3600
	resp.TotalGPUHours = float64(total.GPUSec) / 3600
	if v := effmath.FromMicro(total.TimeEffMicro, total.TimeEffN); v >= 0 {
		resp.AvgTimeEfficiency = v
	}
	if v := effmath.FromMicro(total.CPUEffMicro, total.CPUEffN); v >= 0 {
		resp.AvgCPUEfficiency = v
	}
	if v := effmath.FromMicro(total.MemEffMicro, total.MemEffN); v >= 0 {
		resp.AvgMemoryEfficiency = v
	}
	return resp
}
