package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync/atomic"
)

// The rendered-response layer is the serving half of the paper's §2.4
// performance story. The server cache in internal/cache saves the *upstream*
// cost of a widget request (the Slurm command), but the original hit path
// still paid the full *render* cost on every request: rebuild the view model
// from parsed structs, json.Marshal it, and hash an ETag — work that is
// byte-for-byte identical for every request between two cache fills. At
// dashboard scale (ROADMAP north star; EELA's standalone-dashboard
// experience) that render cost dominates.
//
// serveRendered materializes each widget payload once per cache fill: the
// final JSON bytes (trailing newline included) and the precomputed strong
// ETag are stored in a second cache keyed by (widget, user variant, request
// URI) and guarded by the source data's revision number (fetchMeta.rev, from
// cache.Result.Rev). A hit costs an If-None-Match compare → 304, or a single
// w.Write of the stored bytes. A revision mismatch — the source cache
// refilled — rebuilds and re-stores. Degraded responses and uncacheable
// fetches (rev 0) fall back to the encode-per-request path: their bodies
// change per request (age_seconds) or per compute, so there is nothing to
// materialize.
//
// Per-user routes pass the user name as the variant, so one user's bytes are
// never served to another; authorization always runs before serveRendered.

// renderedResponse is one materialized widget payload.
type renderedResponse struct {
	rev     uint64   // fetchMeta.rev the body was built from
	body    []byte   // final bytes as written to the wire, trailing '\n' included
	etag    string   // strong ETag of body
	etagVal []string // etag as a ready header value for direct map assignment
}

// jsonContentType is the Content-Type header value every JSON response
// shares, assigned directly into the header map: Header.Set allocates a
// fresh one-element slice per call. net/http only reads the slice.
var jsonContentType = []string{"application/json"}

// marshalPayload is the single choke point for payload encoding; every
// json.Marshal of a widget body goes through it, and the counter it bumps
// is what lets the zero-Marshal-on-hit regression test (and /metrics) prove
// the hit path never re-encodes.
func (s *Server) marshalPayload(v any) ([]byte, error) {
	s.renderEncodes.Add(1)
	return json.Marshal(v)
}

// encodePayload is marshalPayload's streaming twin for callers that encode
// into a pooled scratch buffer: same counter, same output bytes as Marshal
// plus the trailing newline writeJSON's Encoder always produced.
func (s *Server) encodePayload(buf *bytes.Buffer, v any) error {
	s.renderEncodes.Add(1)
	return json.NewEncoder(buf).Encode(v)
}

// RenderEncodes reports how many payload encodes (json.Marshal calls on
// widget bodies) the server has performed — the hook the regression test and
// the hot-path benchmark use to assert encode-once behavior.
func (s *Server) RenderEncodes() int64 { return s.renderEncodes.Load() }

// RenderStats reports rendered-response cache traffic: hits served from
// materialized bytes and misses that had to (re)build.
func (s *Server) RenderStats() (hits, misses int64) {
	return s.renderHits.Load(), s.renderMisses.Load()
}

// SetRenderCacheDisabled toggles the rendered-response layer off, forcing
// every request down the encode-per-request path. The hot-path benchmark
// uses it to measure the re-encode baseline on the same process.
func (s *Server) SetRenderCacheDisabled(off bool) { s.renderOff.Store(off) }

// renderKey builds the rendered-cache key: widget, user variant, and the
// full request URI (path values and query parameters both shape the body).
// The NUL separators cannot appear in any component, so distinct triples
// never collide.
func renderKey(widget, variant, uri string) string {
	return widget + "\x00" + variant + "\x00" + uri
}

// serveRendered serves a widget payload through the rendered-response cache.
// meta must come from the fetchVia/absorb chain that produced the data;
// variant is the user name for per-user routes, "" for shared ones; build
// constructs the view model (it runs only on a render miss).
//
// Ineligible responses — degraded, uncacheable (rev 0), or with the layer
// toggled off — build and encode per request via writeWidgetJSON, exactly as
// before this layer existed.
func (s *Server) serveRendered(w http.ResponseWriter, r *http.Request, meta fetchMeta, variant string, build func() (any, error)) {
	if variant != "" {
		// Identity-variant payload: scope any fronting cache to the user
		// before either serving path (materialized bytes, 304, or the
		// per-request fallback) writes headers. See setPrivateCache.
		setPrivateCache(w.Header())
	}
	if meta.Degraded || meta.rev == 0 || meta.ttl <= 0 || s.renderOff.Load() {
		v, err := build()
		if err != nil {
			writeError(w, err)
			return
		}
		s.writeWidgetJSON(w, r, http.StatusOK, meta, v)
		return
	}
	key := renderKey(widgetFromContext(r.Context()), variant, r.URL.RequestURI())
	if cached, ok := s.rendered.Get(key); ok {
		if re, ok := cached.(*renderedResponse); ok && re.rev == meta.rev {
			s.renderHits.Add(1)
			s.writeRendered(w, r, re)
			return
		}
	}
	s.renderMisses.Add(1)
	v, err := build()
	if err != nil {
		writeError(w, err)
		return
	}
	raw, err := s.marshalPayload(v)
	if err != nil {
		writeError(w, fmt.Errorf("core: encoding response: %v", err))
		return
	}
	body := append(raw, '\n')
	re := &renderedResponse{rev: meta.rev, body: body, etag: etagFor(body)}
	re.etagVal = []string{re.etag}
	// The body stays valid as long as the source entry it was built from, so
	// it shares the source's TTL; a source refill bumps rev and overwrites.
	s.rendered.Set(key, re, meta.ttl)
	s.writeRendered(w, r, re)
}

// writeRendered is the materialized hit path: set the stored ETag, answer a
// matching If-None-Match with 304, otherwise write the stored bytes in one
// call. No view-model build, no Marshal, no hash.
func (s *Server) writeRendered(w http.ResponseWriter, r *http.Request, re *renderedResponse) {
	h := w.Header()
	h[etagHeaderKey] = re.etagVal
	if etagMatch(r.Header.Get("If-None-Match"), re.etag) {
		s.obsm.notModified.With(widgetFromContext(r.Context())).Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = jsonContentType
	w.WriteHeader(http.StatusOK)
	w.Write(re.body)
}

// renderCounters groups the rendered-layer atomics embedded in Server.
type renderCounters struct {
	renderHits    atomic.Int64
	renderMisses  atomic.Int64
	renderEncodes atomic.Int64
	renderOff     atomic.Bool
}
