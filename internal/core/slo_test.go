package core

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"ooddash/internal/slo"
	"ooddash/internal/slurmcli"
)

// TestSLOAdminEndpoint checks the admin gate and the shape of the live SLO
// snapshot: regular users get 403, staff see both default objectives with
// their budget ledgers and (initially inactive) alert rules.
func TestSLOAdminEndpoint(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/admin/slo", http.StatusForbidden)

	var st slo.Status
	e.getJSON("staff", "/api/admin/slo", &st)
	if len(st.Objectives) != 2 {
		t.Fatalf("objectives = %d, want 2 (availability, latency)", len(st.Objectives))
	}
	byName := map[string]slo.ObjectiveStatus{}
	for _, o := range st.Objectives {
		byName[o.Name] = o
	}
	avail, ok := byName["availability"]
	if !ok {
		t.Fatalf("no availability objective in %v", byName)
	}
	if avail.Budget.WindowSeconds != slo.BudgetWindow.Seconds() {
		t.Fatalf("budget window = %v, want %v", avail.Budget.WindowSeconds, slo.BudgetWindow.Seconds())
	}
	if len(avail.Alerts) != 2 {
		t.Fatalf("availability alerts = %d, want 2 (page, ticket)", len(avail.Alerts))
	}
	for _, a := range avail.Alerts {
		if a.State != "inactive" {
			t.Fatalf("fresh engine: alert %s state = %q, want inactive", a.Rule, a.State)
		}
	}
	lat, ok := byName["latency"]
	if !ok {
		t.Fatalf("no latency objective in %v", byName)
	}
	if lat.ThresholdSeconds <= 0 {
		t.Fatalf("latency threshold_seconds = %v, want > 0", lat.ThresholdSeconds)
	}
}

// TestSLOAdminPage checks the staff-only budget/alert panel: the HTML page
// is admin-gated like /admin, and its driving script is served.
func TestSLOAdminPage(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/admin/slo", http.StatusForbidden)
	status, body := e.get("staff", "/admin/slo")
	if status != http.StatusOK {
		t.Fatalf("/admin/slo as staff = %d, want 200", status)
	}
	for _, want := range []string{"Service Objectives", "slo-budgets", "/assets/slo.js"} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("/admin/slo page missing %q", want)
		}
	}
	status, js := e.get("staff", "/assets/slo.js")
	if status != http.StatusOK || !bytes.Contains(js, []byte("/api/admin/slo")) {
		t.Fatalf("/assets/slo.js = %d, must fetch /api/admin/slo", status)
	}
}

// TestSLOMiddlewareRecording checks that the instrument middleware feeds the
// SLI recorders for widget traffic but that the observability surfaces
// themselves (/metrics, /api/admin/slo) stay out of the SLIs — an admin
// polling dashboards must not inflate the availability denominator.
func TestSLOMiddlewareRecording(t *testing.T) {
	e := newEnv(t)
	g0, b0 := e.server.SLO().EventTotals("availability")

	e.wantStatus("alice", "/api/recent_jobs", http.StatusOK)
	e.wantStatus("alice", "/api/system_status", http.StatusOK)

	g1, b1 := e.server.SLO().EventTotals("availability")
	if g1 != g0+2 || b1 != b0 {
		t.Fatalf("after 2 healthy widget GETs: good %d->%d bad %d->%d, want +2 good, +0 bad", g0, g1, b0, b1)
	}
	lg, lb := e.server.SLO().EventTotals("latency")
	if lg != 2 || lb != 0 {
		t.Fatalf("latency totals = %d/%d, want 2 good / 0 bad", lg, lb)
	}

	// Self-observing routes must not record.
	e.wantStatus("staff", "/metrics", http.StatusOK)
	e.wantStatus("staff", "/api/admin/slo", http.StatusOK)
	g2, b2 := e.server.SLO().EventTotals("availability")
	if g2 != g1 || b2 != b1 {
		t.Fatalf("observability GETs recorded SLI events: good %d->%d bad %d->%d", g1, g2, b1, b2)
	}

	// Recording can be toggled off at runtime (the bench A/B switch).
	e.server.SetSLORecordingDisabled(true)
	e.wantStatus("alice", "/api/recent_jobs", http.StatusOK)
	g3, _ := e.server.SLO().EventTotals("availability")
	if g3 != g2 {
		t.Fatalf("disabled recorder still counted: good %d->%d", g2, g3)
	}
	e.server.SetSLORecordingDisabled(false)
}

// sloDrillObjectives are chaos-scale objectives for the determinism drill:
// tight windows and for-durations so a scripted outage walks an alert
// through its full lifecycle in a few simulated minutes.
func sloDrillObjectives() []slo.Objective {
	return []slo.Objective{
		{
			Name: "availability", Kind: slo.KindAvailability, Target: 0.9,
			Rules: []slo.Rule{{
				Name: "page", Severity: "page", Burn: 2,
				Short: 2 * time.Minute, Long: 5 * time.Minute,
				For: time.Minute, KeepFor: time.Minute,
			}},
		},
		{
			Name: "latency", Kind: slo.KindLatency, Target: 0.99,
			Threshold: 10 * time.Second,
			Rules: []slo.Rule{{
				Name: "ticket", Severity: "ticket", Burn: 3,
				Short: 2 * time.Minute, Long: 5 * time.Minute,
				For: time.Minute, KeepFor: time.Minute,
			}},
		},
	}
}

// runSLOTransitionScript builds a fresh env, scripts a deterministic
// degradation (warm cache, total slurmctld outage, stale-while-error
// serving past the TTL, recovery) on the sim clock, and returns the final
// /api/admin/slo body. Every SLI event, window bucket, and alert
// transition derives from the simulated clock, so two runs of the same
// script must produce byte-identical snapshots — including the transition
// log's timestamps and ordering (satellite: determinism).
func runSLOTransitionScript(t *testing.T) []byte {
	t.Helper()
	var fr *slurmcli.FaultRunner
	e := newEnvWith(t, func(c *Config) {
		c.SLO.Objectives = sloDrillObjectives()
	}, func(inner slurmcli.Runner) slurmcli.Runner {
		fr = slurmcli.NewFaultRunner(inner, 7, nil)
		return fr
	})

	// Warm the cache so the outage degrades to stale 200s (bad availability
	// events) instead of cold-cache 503s, which the SLI skips.
	e.wantStatus("alice", "/api/system_status", http.StatusOK)

	step := func() {
		e.advance(30 * time.Second)
		_, _ = e.get("alice", "/api/system_status")
		e.server.TickPush() // evaluates the alert state machine on cadence
	}

	fr.SetRules(slurmcli.FaultRule{Outage: true})
	for i := 0; i < 10; i++ { // 5 min of degraded stale serving
		step()
	}
	fr.SetRules() // recovery
	for i := 0; i < 12; i++ { // 6 min of healthy traffic: clear + resolve
		step()
	}

	status, body := e.get("staff", "/api/admin/slo")
	if status != http.StatusOK {
		t.Fatalf("GET /api/admin/slo = %d, want 200", status)
	}
	return body
}

// TestSLOAdminTransitionDeterminism replays the identical event sequence in
// two independent environments and requires byte-identical /api/admin/slo
// snapshots, transition log included.
func TestSLOAdminTransitionDeterminism(t *testing.T) {
	a := runSLOTransitionScript(t)
	b := runSLOTransitionScript(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("non-deterministic SLO snapshot:\nrun A: %s\nrun B: %s", a, b)
	}
	// The script must actually exercise the state machine: the page alert
	// has to fire during the outage and resolve after recovery.
	var st slo.Status
	if err := json.Unmarshal(a, &st); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	var page *slo.AlertStatus
	for i := range st.Objectives {
		if st.Objectives[i].Name != "availability" {
			continue
		}
		for j := range st.Objectives[i].Alerts {
			if st.Objectives[i].Alerts[j].Rule == "page" {
				page = &st.Objectives[i].Alerts[j]
			}
		}
	}
	if page == nil {
		t.Fatal("no availability/page alert in snapshot")
	}
	if page.Fired < 1 || page.Resolved < 1 {
		t.Fatalf("page alert fired=%d resolved=%d, want both >= 1 (script must fire and resolve)", page.Fired, page.Resolved)
	}
	if page.State != "inactive" {
		t.Fatalf("page alert final state = %q, want inactive after resolution", page.State)
	}
}
