package core

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/push"
	"ooddash/internal/slurm"
)

// sseStream is one live SSE connection decoding events into a channel.
type sseStream struct {
	resp   *http.Response
	events chan push.Event
	err    error
	done   chan struct{}
}

// openSSE connects user to /api/events with the given query string and
// starts decoding. Events arrive on .events; .done closes at stream end.
func (e *env) openSSE(user, query string) *sseStream {
	e.t.Helper()
	req, err := http.NewRequest("GET", e.web.URL+"/api/events?"+query, nil)
	if err != nil {
		e.t.Fatal(err)
	}
	req.Header.Set(auth.UserHeader, user)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := e.web.Client().Do(req)
	if err != nil {
		e.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		e.t.Fatalf("SSE connect: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		e.t.Fatalf("SSE Content-Type = %q", ct)
	}
	st := &sseStream{resp: resp, events: make(chan push.Event, 64), done: make(chan struct{})}
	go func() {
		defer close(st.done)
		dec := push.NewDecoder(resp.Body)
		for {
			ev, err := dec.Next()
			if err != nil {
				if err != io.EOF {
					st.err = err
				}
				return
			}
			st.events <- ev
		}
	}()
	e.t.Cleanup(func() { resp.Body.Close(); <-st.done })
	return st
}

// next waits for one event with a timeout.
func (st *sseStream) next(t *testing.T) push.Event {
	t.Helper()
	select {
	case ev := <-st.events:
		return ev
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for SSE event")
		return push.Event{}
	}
}

func TestEventStreamDeliversSnapshots(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()

	st := e.openSSE("alice", "widgets=system_status,recent_jobs")

	// Initial replay: the subscribe-time refresh published one current
	// snapshot per widget.
	got := map[string]push.Event{}
	for i := 0; i < 2; i++ {
		ev := st.next(t)
		got[ev.Name] = ev
	}
	if _, ok := got["system_status"]; !ok {
		t.Fatalf("initial replay missing system_status: %v", got)
	}
	ev, ok := got["recent_jobs"]
	if !ok {
		t.Fatalf("initial replay missing recent_jobs: %v", got)
	}
	if ev.ID == 0 {
		t.Fatal("snapshot event carried no version id")
	}
	var rj struct {
		Jobs []any `json:"jobs"`
	}
	if err := json.Unmarshal(ev.Data, &rj); err != nil {
		t.Fatalf("recent_jobs payload: %v\n%s", err, ev.Data)
	}
	if len(rj.Jobs) != 0 {
		t.Fatalf("expected empty job list, got %d", len(rj.Jobs))
	}

	// New work appears; after a TTL cycle the background refresh pushes the
	// changed payload without the client issuing any request.
	e.submit(slurm.SubmitRequest{User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024}})
	e.clock.Advance(80 * time.Second) // > TTL (60s for system_status) + 25% jitter
	e.cluster.Ctl.Tick()
	if n := e.server.TickPush(); n == 0 {
		t.Fatal("TickPush refreshed nothing after a TTL cycle")
	}
	deadline := time.After(5 * time.Second)
	for {
		var ev push.Event
		select {
		case ev = <-st.events:
		case <-deadline:
			t.Fatal("no recent_jobs update pushed after job submit")
		}
		if ev.Name != "recent_jobs" {
			continue
		}
		if err := json.Unmarshal(ev.Data, &rj); err != nil {
			t.Fatal(err)
		}
		if len(rj.Jobs) == 1 {
			return
		}
	}
}

func TestEventStreamResumeReplaysOnlyNewer(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()

	// First connection establishes the sources and versions.
	st := e.openSSE("alice", "widgets=system_status,announcements")
	var last int64
	for i := 0; i < 2; i++ {
		if ev := st.next(t); ev.ID > last {
			last = ev.ID
		}
	}
	st.resp.Body.Close()
	<-st.done

	// Reconnecting with Last-Event-ID at the head replays nothing; with 0 it
	// replays both current snapshots.
	req, _ := http.NewRequest("GET", e.web.URL+"/api/events?widgets=system_status,announcements", nil)
	req.Header.Set(auth.UserHeader, "alice")
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set("Last-Event-ID", strconv.FormatInt(last, 10))
	resp, err := e.web.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Nothing should arrive: close after a short grace period and confirm
	// the decoder saw no events before EOF.
	timer := time.AfterFunc(300*time.Millisecond, func() { resp.Body.Close() })
	defer timer.Stop()
	dec := push.NewDecoder(resp.Body)
	if ev, err := dec.Next(); err == nil {
		t.Fatalf("resume at head replayed event %+v", ev)
	}

	st2 := e.openSSE("alice", "widgets=system_status,announcements&last_event_id=0")
	seen := map[string]bool{}
	for i := 0; i < 2; i++ {
		seen[st2.next(t).Name] = true
	}
	if !seen["system_status"] || !seen["announcements"] {
		t.Fatalf("full replay = %v", seen)
	}
}

func TestEventStreamRejectsUnknownWidget(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()
	e.wantStatus("alice", "/api/events?widgets=nope", http.StatusBadRequest)
	// job_perf exists as a widget but is not push-enabled.
	e.wantStatus("alice", "/api/events?widgets=job_perf", http.StatusBadRequest)
	// Unauthenticated SSE is rejected like any other route.
	e.wantStatus("", "/api/events?widgets=system_status", http.StatusUnauthorized)
}

func TestEventsDispatchKeepsLegacyPoll(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()
	// No Accept header, no widgets param: the delta-poll feed still serves.
	status, body := e.get("alice", "/api/events?tail=1")
	if status != http.StatusOK {
		t.Fatalf("legacy poll status %d: %s", status, body)
	}
	var pollResp struct {
		NextSeq *int64 `json:"next_seq"`
	}
	if err := json.Unmarshal(body, &pollResp); err != nil || pollResp.NextSeq == nil {
		t.Fatalf("legacy poll payload lost: %v\n%s", err, body)
	}
}

func TestServerCloseEndsStreamsWithoutLeaking(t *testing.T) {
	e := newEnv(t)

	before := runtime.NumGoroutine()
	streams := make([]*sseStream, 0, 3)
	users := []string{"alice", "bob", "carol"}
	for _, u := range users {
		st := e.openSSE(u, "widgets=system_status,recent_jobs")
		// Drain the initial replay so only the shutdown event remains.
		for i := 0; i < 2; i++ {
			st.next(t)
		}
		streams = append(streams, st)
	}
	if n := e.server.PushHub().SubscriberCount(); n != 3 {
		t.Fatalf("subscribers = %d, want 3", n)
	}

	e.server.Close()
	e.server.Close() // idempotent

	for _, st := range streams {
		ev := st.next(t)
		if ev.Name != "shutdown" {
			t.Fatalf("final event = %q, want shutdown", ev.Name)
		}
		select {
		case <-st.done:
		case <-time.After(5 * time.Second):
			t.Fatal("stream did not end after shutdown event")
		}
		if st.err != nil {
			t.Fatalf("stream ended with error: %v", st.err)
		}
	}
	if n := e.server.PushHub().SubscriberCount(); n != 0 {
		t.Fatalf("subscribers after Close = %d", n)
	}
	// A closed server still serves plain HTTP.
	e.wantStatus("alice", "/api/system_status", http.StatusOK)

	// All handler and decoder goroutines must wind down (idle HTTP conns
	// get a small grace allowance).
	e.web.Client().CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before=%d now=%d\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestPushMetricsExposed(t *testing.T) {
	e := newEnv(t)
	defer e.server.Close()
	st := e.openSSE("alice", "widgets=system_status")
	st.next(t)

	status, body := e.get("staff", "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, want := range []string{
		"ooddash_push_connected_clients 1",
		"ooddash_push_events_published_total",
		"ooddash_push_refresh_seconds",
		`ooddash_push_widget_version{source="system_status"}`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
