package core

import (
	"fmt"
	"net/http"
)

// handleAdminSLO serves the live SLO view: every objective's 28-day error
// budget (spent/remaining/exhaustion ETA), its alert rules' states and
// current burn rates, and the recent alert transition log. Staff only,
// like /metrics and /api/admin/health. The snapshot is self-evaluating —
// reading it advances the alert state machines to the current clock, so a
// wall-clock deployment needs no background ticker for alert freshness.
func (s *Server) handleAdminSLO(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	writeJSON(w, http.StatusOK, s.sloEng.Status())
}
