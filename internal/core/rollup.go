package core

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/trace"
)

// The historical widgets (jobperf summary cards, usage charts, the
// year-scale cluster views) read slurmdbd's incremental rollups instead of
// scanning raw accounting rows, so their cost is O(buckets in the window)
// regardless of how many jobs the cluster has ever run. This file holds the
// shared policy: resolution selection, bucket alignment, the cached fetch,
// and the raw-recompute ablation the golden test and the loadgen bench
// compare against.

// maxAutoBuckets caps how many points auto resolution selection will put in
// a chart; past it the next coarser resolution takes over. maxExplicitBuckets
// is the hard ceiling for an explicitly requested bucket size — beyond that
// the request is a client error, not a silent downgrade.
const (
	maxAutoBuckets     = 400
	maxExplicitBuckets = 1500
)

// alignDown floors sec to a resolution boundary (toward -inf, so pre-epoch
// times still bucket consistently); alignUp is the matching ceiling.
func alignDown(sec, res int64) int64 {
	f := sec - sec%res
	if sec < 0 && sec%res != 0 {
		f -= res
	}
	return f
}

func alignUp(sec, res int64) int64 { return alignDown(sec+res-1, res) }

// rollupResolutions orders the available resolutions finest-first, with the
// retention window each level is kept for.
var rollupResolutions = []struct {
	secs      int64
	name      string
	retention int64
}{
	{slurm.RollupMinute, "minute", slurm.RollupMinuteRetention},
	{slurm.RollupHour, "hour", slurm.RollupHourRetention},
	{slurm.RollupDay, "day", slurm.RollupDayRetention},
}

func resolutionName(res int64) string {
	for _, r := range rollupResolutions {
		if r.secs == res {
			return r.name
		}
	}
	return strconv.FormatInt(res, 10)
}

// pickResolution chooses the bucket width for a window. bucket "" selects
// automatically: the finest resolution whose aligned window both fits in
// maxAutoBuckets points and is still fully inside that level's retention;
// day resolution is the fallback that always works. An explicit bucket is
// honored but validated — a window with more than maxExplicitBuckets
// buckets, or reaching past the level's retention, is rejected with a 400
// rather than silently served with missing or truncated data.
func pickResolution(now, start, end time.Time, bucket string) (res int64, selection string, err error) {
	buckets := func(res int64) int64 {
		return (alignUp(end.Unix(), res) - alignDown(start.Unix(), res)) / res
	}
	retained := func(res, retention int64) bool {
		return alignDown(start.Unix(), res) >= now.Unix()-retention
	}
	if bucket == "" {
		for _, cand := range rollupResolutions[:2] {
			if buckets(cand.secs) <= maxAutoBuckets && retained(cand.secs, cand.retention) {
				return cand.secs, "auto", nil
			}
		}
		return slurm.RollupDay, "auto", nil
	}
	for _, cand := range rollupResolutions {
		if cand.name != bucket {
			continue
		}
		if n := buckets(cand.secs); n > maxExplicitBuckets {
			return 0, "", fmt.Errorf("%w: range spans %d %s buckets (max %d); use a coarser bucket",
				errBadRequest, n, cand.name, maxExplicitBuckets)
		}
		if !retained(cand.secs, cand.retention) {
			return 0, "", fmt.Errorf("%w: range start is outside the %s rollup retention",
				errBadRequest, cand.name)
		}
		return cand.secs, "explicit", nil
	}
	return 0, "", fmt.Errorf("%w: unknown bucket %q", errBadRequest, bucket)
}

// rollupQuery names one pre-aggregated read: a scope/series, a half-open
// time window, and the requested bucket ("" = auto).
type rollupQuery struct {
	scope, name string
	start, end  time.Time
	bucket      string
}

// rollupSeries is the fetched window: sparse rows at the chosen resolution
// plus the aligned bounds actually queried. PartialStart/PartialEnd flag
// requested edges that fell inside a bucket — the first/last buckets then
// cover more than the request asked for, and are flagged rather than
// silently scaled.
type rollupSeries struct {
	Rows         []slurm.RollupRow
	Res          int64
	Start, End   int64
	PartialStart bool
	PartialEnd   bool
}

// fetchRollup is the cached read every rollup-backed widget goes through.
// The window is aligned outward to whole buckets before it becomes the
// cache key, so requests that differ only inside one bucket share an entry.
// With the ablation on (SetRollupDisabled) the same window is recomputed
// from raw accounting rows under a ":raw"-suffixed key.
func (s *Server) fetchRollup(r *http.Request, q rollupQuery) (rollupSeries, fetchMeta, error) {
	now := s.clock.Now()
	res, selection, err := pickResolution(now, q.start, q.end, q.bucket)
	if err != nil {
		return rollupSeries{}, fetchMeta{}, err
	}
	s.obsm.rollupQueries.With(resolutionName(res), selection).Inc()
	alignedStart := alignDown(q.start.Unix(), res)
	alignedEnd := alignUp(q.end.Unix(), res)
	raw := s.rollupOff.Load()
	key := "rollup:" + q.scope + ":" + q.name + ":" +
		strconv.FormatInt(alignedStart, 10) + ":" + strconv.FormatInt(alignedEnd, 10) + ":" +
		strconv.FormatInt(res, 10)
	if raw {
		key += ":raw"
	}
	v, meta, err := s.fetchVia(r, srcDBD, key, s.cfg.TTLs.JobHistory, func(ctx context.Context) (any, error) {
		var sp *trace.Span
		if trace.SpanFromContext(ctx) != nil {
			ctx, sp = trace.StartSpan(ctx, "rollup.query")
			sp.SetAttr("scope", q.scope)
			sp.SetAttr("resolution", resolutionName(res))
			if raw {
				sp.SetAttr("ablation", "raw")
			}
			defer sp.End()
		}
		if raw {
			return s.rawRollupRows(ctx, q.scope, q.name, alignedStart, alignedEnd, res)
		}
		result, err := s.dbdBk.Rollup(ctx, slurmcli.RollupOptions{
			Scope: q.scope, Name: q.name,
			Start: alignedStart, End: alignedEnd, Resolution: res,
		})
		if err != nil {
			return nil, err
		}
		return result.Rows, nil
	})
	if err != nil {
		return rollupSeries{}, fetchMeta{}, err
	}
	if raw {
		// The ablated recompute must not ride the rendered cache: its render
		// key equals the rollup path's and cache revs can collide across
		// entries, so materialized rollup bytes could answer a raw request.
		// rev 0 forces encode-per-request — the bytes are identical either way.
		meta.rev = 0
	}
	rows, _ := v.([]slurm.RollupRow)
	return rollupSeries{
		Rows: rows, Res: res,
		Start: alignedStart, End: alignedEnd,
		PartialStart: q.start.Unix() != alignedStart,
		PartialEnd:   q.end.Unix() != alignedEnd,
	}, meta, nil
}

// rollupBounds anchors "all history" ranges at the earliest/latest terminal
// end times the accounting store has seen. Uncached, like the old Sacct
// anchor, so the call still rides the slurmdbd policy. Under the ablation
// the bounds are recomputed by scanning accounting, keeping the two paths
// byte-identical end to end.
func (s *Server) rollupBounds(r *http.Request, scope, name string) (minEnd, maxEnd int64, ok bool, err error) {
	if s.rollupOff.Load() {
		v, rerr := s.runResilient(r, srcDBD, func(ctx context.Context) (any, error) {
			return s.dbdBk.Sacct(ctx, sacctScopeOptions(scope, name, time.Time{}, time.Time{}))
		})
		if rerr != nil {
			return 0, 0, false, rerr
		}
		rows := v.([]slurmcli.SacctRow)
		for i := range rows {
			row := &rows[i]
			if !row.State.Terminal() || row.EndTime.IsZero() {
				continue
			}
			endSec := row.EndTime.Unix()
			if !ok || endSec < minEnd {
				minEnd = endSec
			}
			if !ok || endSec > maxEnd {
				maxEnd = endSec
			}
			ok = true
		}
		return minEnd, maxEnd, ok, nil
	}
	v, rerr := s.runResilient(r, srcDBD, func(ctx context.Context) (any, error) {
		return s.dbdBk.Rollup(ctx, slurmcli.RollupOptions{Scope: scope, Name: name, Op: "bounds"})
	})
	if rerr != nil {
		return 0, 0, false, rerr
	}
	result := v.(slurmcli.RollupResult)
	return result.MinEnd, result.MaxEnd, result.HasBounds, nil
}

// sacctScopeOptions maps a rollup scope onto the accounting query covering
// it. sacct's -S/-E select anything overlapping the window — a superset of
// "ended inside it" — so the fold filters by end time afterwards.
func sacctScopeOptions(scope, name string, start, end time.Time) slurmcli.SacctOptions {
	opts := slurmcli.SacctOptions{Start: start, End: end, AllUsers: true}
	switch scope {
	case slurm.RollupScopeUser:
		if name != "" {
			opts.User, opts.AllUsers = name, false
		}
	case slurm.RollupScopeAccount:
		if name != "" {
			opts.Accounts = []string{name}
		}
	case slurm.RollupScopePartition:
		opts.Partition = name
	}
	return opts
}

// rawRollupRows recomputes a rollup window from raw accounting rows — the
// O(jobs) scan the pipeline replaces, kept as the golden reference: the
// equivalence test and the loadgen ablation flip SetRollupDisabled and
// assert byte-identical responses. The fold feeds AddSample the same
// wire-truncated inputs the daemon's ingest derives from the job record, so
// the sums match bit for bit.
func (s *Server) rawRollupRows(ctx context.Context, scope, name string, startSec, endSec, res int64) ([]slurm.RollupRow, error) {
	opts := sacctScopeOptions(scope, name, time.Unix(startSec, 0).UTC(), time.Unix(endSec, 0).UTC())
	rows, err := s.dbdBk.Sacct(ctx, opts)
	if err != nil {
		return nil, err
	}
	type cell struct {
		bucket int64
		name   string
	}
	agg := make(map[cell]*slurm.RollupAgg)
	for i := range rows {
		row := &rows[i]
		if !row.State.Terminal() || row.EndTime.IsZero() {
			continue
		}
		endT := row.EndTime.Unix()
		if endT < startSec || endT >= endSec {
			continue
		}
		series := ""
		switch scope {
		case slurm.RollupScopeUser:
			series = row.User
		case slurm.RollupScopeAccount:
			series = row.Account
		case slurm.RollupScopePartition:
			series = row.Partition
		}
		c := cell{alignDown(endT, res), series}
		a := agg[c]
		if a == nil {
			a = &slurm.RollupAgg{}
			agg[c] = a
		}
		started := !row.StartTime.IsZero()
		var waitSec int64
		if started {
			waitSec = row.StartTime.Unix() - row.SubmitTime.Unix()
		}
		a.AddSample(row.State, started,
			int64(row.Elapsed/time.Second), int64(row.TimeLimit/time.Second),
			int64(row.TotalCPU/time.Second), waitSec,
			row.AllocCPUs, row.AllocTRES.GPUs,
			row.MaxRSSMB, row.ReqMemMB, row.GPUUtilPercent)
	}
	out := make([]slurm.RollupRow, 0, len(agg))
	for c, a := range agg {
		out = append(out, slurm.RollupRow{BucketStart: c.bucket, Scope: scope, Name: c.name, RollupAgg: *a})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].BucketStart != out[j].BucketStart {
			return out[i].BucketStart < out[j].BucketStart
		}
		return out[i].Name < out[j].Name
	})
	return out, nil
}

// SetRollupDisabled toggles the raw-recompute ablation: when true, every
// rollup-backed widget recomputes its window by scanning raw accounting
// rows instead of reading the pre-aggregated buckets. The loadgen bench
// flips this to measure what the pipeline saves; responses must stay
// byte-identical across the toggle.
func (s *Server) SetRollupDisabled(off bool) { s.rollupOff.Store(off) }
