package core

// assetSLOJS drives the staff admin SLO page: one fetch of /api/admin/slo
// renders the error-budget ledger per objective, every burn-rate rule's
// live state and window burns, and the recent alert transition log. The
// page re-polls on a slow cadence — the snapshot is self-evaluating
// server-side, so each fetch reflects the alert state machines at that
// instant.
const assetSLOJS = `"use strict";
(() => {
  const budgetsEl = document.querySelector("#slo-budgets .widget-body");
  const alertsEl = document.querySelector("#slo-alerts .widget-body");
  const transEl = document.querySelector("#slo-transitions .widget-body");
  const asOfEl = document.getElementById("slo-asof");
  const refreshBtn = document.getElementById("slo-refresh");
  if (!budgetsEl || !alertsEl || !transEl) return;

  const esc = (s) => String(s).replace(/[&<>"]/g,
    (c) => ({"&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;"}[c]));
  const pct = (x) => (100 * x).toFixed(2) + "%";
  const days = (secs) => secs > 0 ? (secs / 86400).toFixed(1) + " d" : "—";

  function objectiveLabel(o) {
    let label = esc(o.name) + " ≥ " + pct(o.target);
    if (o.kind === "latency" && o.threshold_seconds) {
      label += " under " + (o.threshold_seconds * 1000).toFixed(0) + " ms";
    }
    return label;
  }

  function renderBudgets(objs) {
    const rows = objs.map((o) => {
      const b = o.budget;
      const spentW = Math.min(100, Math.max(0, 100 * b.spent_ratio));
      return "<tr><td>" + objectiveLabel(o) + "</td>" +
        "<td>" + b.total + " (" + b.bad + " bad)</td>" +
        "<td><span class='budget-track'><span class='budget-spent' style='width:" +
        spentW.toFixed(1) + "%'></span></span> " + pct(b.spent_ratio) + "</td>" +
        "<td>" + pct(b.remaining_ratio) + "</td>" +
        "<td>" + days(b.exhaustion_seconds) + "</td></tr>";
    });
    budgetsEl.innerHTML = "<table><thead><tr><th>Objective</th><th>Events (28d)</th>" +
      "<th>Budget spent</th><th>Remaining</th><th>Exhaustion</th></tr></thead><tbody>" +
      rows.join("") + "</tbody></table>";
  }

  function renderAlerts(objs) {
    const rows = [];
    for (const o of objs) {
      for (const a of o.alerts || []) {
        rows.push("<tr class='slo-" + esc(a.state) + "'>" +
          "<td>" + esc(o.name) + "/" + esc(a.rule) + "</td>" +
          "<td>" + esc(a.severity) + "</td>" +
          "<td><strong>" + esc(a.state) + "</strong></td>" +
          "<td>" + a.short_burn.toFixed(2) + "× / " + a.long_burn.toFixed(2) +
          "× (≥ " + a.burn_threshold + "×)</td>" +
          "<td>" + (a.short_window_seconds / 60) + "m / " +
          (a.long_window_seconds / 60) + "m</td>" +
          "<td>" + a.fired_total + " / " + a.resolved_total + "</td></tr>");
      }
    }
    alertsEl.innerHTML = "<table><thead><tr><th>Rule</th><th>Severity</th><th>State</th>" +
      "<th>Burn (short/long)</th><th>Windows</th><th>Fired/Resolved</th></tr></thead><tbody>" +
      rows.join("") + "</tbody></table>";
  }

  function renderTransitions(trans) {
    if (!trans || trans.length === 0) {
      transEl.textContent = "None yet.";
      return;
    }
    const rows = trans.slice().reverse().map((t) =>
      "<tr><td>" + esc(new Date(t.at).toISOString()) + "</td>" +
      "<td>" + esc(t.objective) + "/" + esc(t.rule) + "</td>" +
      "<td>" + esc(t.from) + " → " + esc(t.to) + "</td></tr>");
    transEl.innerHTML = "<table><thead><tr><th>At</th><th>Rule</th>" +
      "<th>Transition</th></tr></thead><tbody>" + rows.join("") + "</tbody></table>";
  }

  async function refresh() {
    let st;
    try {
      const resp = await fetch("/api/admin/slo");
      if (!resp.ok) {
        budgetsEl.textContent = "SLO fetch failed: " + resp.status;
        return;
      }
      st = await resp.json();
    } catch (err) {
      budgetsEl.textContent = "SLO fetch failed: " + err;
      return;
    }
    renderBudgets(st.objectives || []);
    renderAlerts(st.objectives || []);
    renderTransitions(st.transitions);
    if (asOfEl) asOfEl.textContent = "as of " + new Date(st.now).toISOString();
  }

  if (refreshBtn) refreshBtn.addEventListener("click", refresh);
  setInterval(refresh, 30000);
  refresh();
})();
`
