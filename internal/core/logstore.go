package core

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"sync"
)

// LogLine is one numbered line of a job log, as rendered in the Job Overview
// output/error tabs (§7: line numbers on the left).
type LogLine struct {
	Number int    `json:"number"`
	Text   string `json:"text"`
}

// LogStore reads job stdout/stderr files. ReadTail returns at most maxLines
// of the end of the file with absolute line numbers, the total line count,
// and whether the view was truncated — exactly the data the Job Overview
// log view needs (most recent 1000 lines, link to the full file).
type LogStore interface {
	ReadTail(path string, maxLines int) (lines []LogLine, total int, err error)
}

// tailLines extracts the last maxLines lines of content with numbering.
func tailLines(content string, maxLines int) ([]LogLine, int) {
	if content == "" {
		return nil, 0
	}
	content = strings.TrimSuffix(content, "\n")
	raw := strings.Split(content, "\n")
	total := len(raw)
	start := 0
	if maxLines > 0 && total > maxLines {
		start = total - maxLines
	}
	lines := make([]LogLine, 0, total-start)
	for i := start; i < total; i++ {
		lines = append(lines, LogLine{Number: i + 1, Text: raw[i]})
	}
	return lines, total
}

// MemLogStore is an in-memory LogStore used with the simulated cluster:
// the workload generator writes job logs here under the job's StdOut/StdErr
// paths. Safe for concurrent use.
type MemLogStore struct {
	mu    sync.RWMutex
	files map[string]*strings.Builder
}

// NewMemLogStore returns an empty in-memory log store.
func NewMemLogStore() *MemLogStore {
	return &MemLogStore{files: make(map[string]*strings.Builder)}
}

// Write replaces the contents of path.
func (m *MemLogStore) Write(path, content string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b := &strings.Builder{}
	b.WriteString(content)
	m.files[path] = b
}

// Append adds a line (newline added if missing) to path, creating it if
// necessary — how the simulated jobs stream output.
func (m *MemLogStore) Append(path, line string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.files[path]
	if !ok {
		b = &strings.Builder{}
		m.files[path] = b
	}
	b.WriteString(line)
	if !strings.HasSuffix(line, "\n") {
		b.WriteByte('\n')
	}
}

// Exists reports whether path has been written.
func (m *MemLogStore) Exists(path string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.files[path]
	return ok
}

// ReadTail implements LogStore.
func (m *MemLogStore) ReadTail(path string, maxLines int) ([]LogLine, int, error) {
	m.mu.RLock()
	b, ok := m.files[path]
	if !ok {
		m.mu.RUnlock()
		return nil, 0, fmt.Errorf("core: log file %q not found", path)
	}
	content := b.String()
	m.mu.RUnlock()
	lines, total := tailLines(content, maxLines)
	return lines, total, nil
}

// OSLogStore reads logs from the real filesystem; a production deployment
// would use this (log views inherit filesystem permissions, §7).
type OSLogStore struct{}

// ReadTail implements LogStore by streaming the file, keeping only the last
// maxLines lines in a ring so arbitrarily large logs read in O(file) time
// and O(maxLines) memory.
func (OSLogStore) ReadTail(path string, maxLines int) ([]LogLine, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, fmt.Errorf("core: %w", err)
	}
	defer f.Close()

	if maxLines <= 0 {
		maxLines = 1000
	}
	ring := make([]string, maxLines)
	total := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		ring[total%maxLines] = sc.Text()
		total++
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("core: reading %s: %w", path, err)
	}
	n := total
	if n > maxLines {
		n = maxLines
	}
	lines := make([]LogLine, 0, n)
	for i := total - n; i < total; i++ {
		lines = append(lines, LogLine{Number: i + 1, Text: ring[i%maxLines]})
	}
	return lines, total, nil
}
