package core

import (
	"strings"
	"testing"
)

// The frontend assets are embedded strings; these tests pin the structural
// contracts the served pages rely on. (Syntax is additionally checked with
// `node --check` in development; tests here stay toolchain-free.)

func TestWidgetsJSRendersEveryHomepageWidget(t *testing.T) {
	for _, id := range []string{
		"announcements", "recent-jobs", "system-status", "accounts", "storage",
		"myjobs-table", "cluster-status", "jobperf",
	} {
		if !strings.Contains(assetWidgetsJS, `case "`+id+`"`) {
			t.Errorf("widgets.js lacks a renderer for %q", id)
		}
	}
	// The cache policy markers: instant paint then conditional refresh.
	for _, marker := range []string{"DashCache.get", "DashCache.put", "data-api", "dataset.api"} {
		if !strings.Contains(assetWidgetsJS, marker) && !strings.Contains(assetWidgetsJS, strings.ReplaceAll(marker, "data-api", "[data-api]")) {
			t.Errorf("widgets.js missing %q", marker)
		}
	}
}

func TestCacheJSUsesIndexedDB(t *testing.T) {
	for _, marker := range []string{"indexedDB.open", "objectStore", "storedAt"} {
		if !strings.Contains(assetCacheJS, marker) {
			t.Errorf("cache.js missing %q", marker)
		}
	}
}

func TestCSSDefinesStateColors(t *testing.T) {
	for _, class := range []string{
		".node-cell.green", ".node-cell.faded-green", ".node-cell.yellow",
		".node-cell.orange", ".node-cell.red",
		".badge.red", ".badge.yellow", ".badge.gray",
		".progress", ".log-view",
	} {
		if !strings.Contains(assetCSS, class) {
			t.Errorf("dashboard.css missing %q", class)
		}
	}
}

func TestPagesReferenceAssets(t *testing.T) {
	for _, ref := range []string{"/assets/dashboard.css", "/assets/cache.js", "/assets/widgets.js"} {
		if !strings.Contains(baseTemplate, ref) {
			t.Errorf("base template missing %q", ref)
		}
	}
}
