package core

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/obs"
)

// validateMetricsExposition checks the document against the Prometheus text
// format rules a scraper enforces: one HELP and one TYPE per family, no
// duplicate family declarations, every sample belonging to the family most
// recently declared, and histogram series that are internally consistent
// (cumulative buckets ending in +Inf, with _count matching the +Inf bucket).
// This is core's own copy of the check — the obs package's equivalent lives
// in its test package and cannot be imported.
func validateMetricsExposition(t *testing.T, text string) {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	current := ""
	// bucketCum tracks cumulative bucket counts per histogram series (family
	// + labels minus le); counts records the series' _count samples.
	bucketLast := map[string]float64{}
	bucketInf := map[string]float64{}
	counts := map[string]float64{}

	stripLe := func(labels string) string {
		parts := strings.Split(labels, ",")
		kept := parts[:0]
		for _, p := range parts {
			if !strings.HasPrefix(p, "le=") {
				kept = append(kept, p)
			}
		}
		return strings.Join(kept, ",")
	}

	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			if helpSeen[name] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			name, kind := f[2], f[3]
			if _, dup := typeSeen[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if !helpSeen[name] {
				t.Errorf("line %d: TYPE for %s without preceding HELP", ln+1, name)
			}
			typeSeen[name] = kind
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Strip any OpenMetrics exemplar suffix (` # {trace_id="..."} v ts`)
		// so label and value parsing see only the sample itself.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		// Sample line: name{labels} value  |  name value
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Errorf("line %d: unterminated label set: %s", ln+1, line)
				continue
			}
			labels = line[i+1 : j]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		val, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Errorf("line %d: unparsable sample value: %s", ln+1, line)
			continue
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typeSeen[current] == "histogram" && strings.HasSuffix(name, suf) &&
				strings.TrimSuffix(name, suf) == current {
				base = current
			}
		}
		if base != current {
			t.Errorf("line %d: sample %s outside its family block (current %s)", ln+1, name, current)
			continue
		}
		if typeSeen[current] == "histogram" {
			series := current + "|" + stripLe(labels)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if val+1e-9 < bucketLast[series] {
					t.Errorf("line %d: non-cumulative bucket for %s: %g < %g",
						ln+1, series, val, bucketLast[series])
				}
				bucketLast[series] = val
				if strings.Contains(labels, `le="+Inf"`) {
					bucketInf[series] = val
				}
			case strings.HasSuffix(name, "_count"):
				counts[series] = val
			}
		}
	}
	for name := range helpSeen {
		if _, ok := typeSeen[name]; !ok {
			t.Errorf("HELP without TYPE for %s", name)
		}
	}
	for series, c := range counts {
		inf, ok := bucketInf[series]
		if !ok {
			t.Errorf("histogram series %s has no +Inf bucket", series)
			continue
		}
		if c != inf {
			t.Errorf("histogram series %s: _count %g != +Inf bucket %g", series, c, inf)
		}
	}
}

// TestMetricsExpositionValidity drives real widget traffic and then checks
// that the whole /metrics document parses as valid exposition and carries
// the per-widget histograms, per-source upstream attribution, and
// per-command Slurm attribution the tentpole promises.
func TestMetricsExpositionValidity(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/recent_jobs", http.StatusOK)
	e.wantStatus("alice", "/api/system_status", http.StatusOK)
	e.wantStatus("bob", "/api/myjobs", http.StatusOK)
	e.wantStatus("", "/api/recent_jobs", http.StatusUnauthorized)

	status, body := e.get("staff", "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", status, body)
	}
	text := string(body)
	validateMetricsExposition(t, text)

	for _, want := range []string{
		`ooddash_widget_request_seconds_bucket{widget="recent_jobs",le="+Inf"}`,
		`ooddash_widget_request_seconds_count{widget="recent_jobs"}`,
		`ooddash_widget_requests_total{widget="recent_jobs",status="200"} 1`,
		`ooddash_widget_requests_total{widget="recent_jobs",status="401"} 1`,
		`ooddash_upstream_latency_seconds_count{source="slurmctld"}`,
		`ooddash_upstream_outcomes_total{source="slurmctld",outcome="ok"}`,
		`ooddash_fetch_results_total{source="slurmdbd",result="ok"}`,
		`ooddash_slurm_commands_total{command="squeue",daemon="slurmctld",outcome="ok"}`,
		`ooddash_slurm_commands_total{command="sacct",daemon="slurmdbd",outcome="ok"}`,
		`ooddash_slurm_command_seconds_count{daemon="slurmctld"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceHeader asserts that every API response — success, client error,
// and auth failure alike — carries X-OODDash-Trace, that a well-formed
// inbound trace ID is adopted, and that a malformed one (which could inject
// into logs) is replaced.
func TestTraceHeader(t *testing.T) {
	e := newEnv(t)
	for _, tc := range []struct {
		user, path string
		status     int
	}{
		{"alice", "/api/recent_jobs", http.StatusOK},
		{"alice", "/api/job/999999", http.StatusNotFound},
		{"", "/api/storage", http.StatusUnauthorized},
		{"alice", "/metrics", http.StatusForbidden},
	} {
		status, hdr, _ := e.getFull(tc.user, tc.path)
		if status != tc.status {
			t.Fatalf("GET %s as %q: status %d, want %d", tc.path, tc.user, status, tc.status)
		}
		trace := hdr.Get("X-OODDash-Trace")
		if trace == "" {
			t.Errorf("GET %s (status %d): no X-OODDash-Trace header", tc.path, status)
		} else if !obs.ValidTraceID(trace) {
			t.Errorf("GET %s: malformed trace ID %q", tc.path, trace)
		}
	}

	send := func(inbound string) string {
		req, err := http.NewRequest("GET", e.web.URL+"/api/recent_jobs", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(auth.UserHeader, "alice")
		req.Header.Set("X-OODDash-Trace", inbound)
		resp, err := e.web.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-OODDash-Trace")
	}
	if got := send("proxy-abc123"); got != "proxy-abc123" {
		t.Errorf("valid inbound trace not adopted: got %q", got)
	}
	if got := send("bad id\"with} junk"); got == "bad id\"with} junk" || !obs.ValidTraceID(got) {
		t.Errorf("malformed inbound trace not replaced: got %q", got)
	}
}

// TestMountDuplicateNames locks in Mount's documented tolerance for the
// same widget named twice in the requested subset (each widget mounts once,
// no mux double-registration panic, no spurious unknown-widget error), and
// that subset-mounted widgets come instrumented.
func TestMountDuplicateNames(t *testing.T) {
	e := newEnv(t)
	mux := http.NewServeMux()
	if err := e.server.Mount(mux, "recent_jobs", "recent_jobs", "system_status"); err != nil {
		t.Fatalf("Mount with duplicate names: %v", err)
	}
	req := httptest.NewRequest("GET", "/api/recent_jobs", nil)
	req.Header.Set(auth.UserHeader, "alice")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("mounted subset: status %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("X-OODDash-Trace") == "" {
		t.Error("subset-mounted widget missing trace header (not instrumented)")
	}
	// Unknown names must still be reported.
	if err := e.server.Mount(http.NewServeMux(), "recent_jobs", "nope"); err == nil {
		t.Error("Mount with unknown widget: no error")
	}
}

// TestDegradedArrayPayload is the regression test for the silent-annotation
// bug: a degraded response with an array payload must still carry the
// X-OODDash-Degraded header (only the JSON annotation is impossible), the
// drop must be counted, and object payloads must report their age rounded
// to the nearest second rather than truncated.
func TestDegradedArrayPayload(t *testing.T) {
	e := newEnv(t)
	s := e.server
	meta := fetchMeta{Degraded: true, Age: 59*time.Second + 900*time.Millisecond}

	before := s.obsm.annotationsDropped.Value()
	rr := httptest.NewRecorder()
	s.writeWidgetJSON(rr, httptest.NewRequest("GET", "/api/test", nil), http.StatusOK, meta, []int{1, 2, 3})
	if got := rr.Header().Get(degradedHeader); got != "stale" {
		t.Errorf("array payload: %s header = %q, want \"stale\"", degradedHeader, got)
	}
	var arr []int
	if err := json.Unmarshal(rr.Body.Bytes(), &arr); err != nil || len(arr) != 3 {
		t.Errorf("array payload mangled: %v %s", err, rr.Body.String())
	}
	if got := s.obsm.annotationsDropped.Value(); got != before+1 {
		t.Errorf("annotationsDropped = %d, want %d", got, before+1)
	}

	rr = httptest.NewRecorder()
	s.writeWidgetJSON(rr, httptest.NewRequest("GET", "/api/test", nil), http.StatusOK, meta, map[string]string{"a": "b"})
	var obj struct {
		Degraded bool  `json:"degraded"`
		Age      int64 `json:"age_seconds"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &obj); err != nil {
		t.Fatalf("object payload: %v: %s", err, rr.Body.String())
	}
	if !obj.Degraded {
		t.Error("object payload: degraded annotation missing")
	}
	if want := int64(math.Round(meta.Age.Seconds())); obj.Age != want || obj.Age != 60 {
		t.Errorf("age_seconds = %d, want 60 (rounded, not truncated)", obj.Age)
	}
	if got := s.obsm.annotationsDropped.Value(); got != before+1 {
		t.Errorf("object payload wrongly counted as dropped: %d", got)
	}
}
