package core

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/obs"
	"ooddash/internal/obs/obstest"
)

// validateMetricsExposition checks the document against the Prometheus text
// format rules a scraper enforces; the actual validator is shared across
// registries (obs itself, core's /metrics, the fleet registry) in
// internal/obs/obstest.
func validateMetricsExposition(t *testing.T, text string) {
	t.Helper()
	obstest.Validate(t, text)
}

// TestMetricsExpositionValidity drives real widget traffic and then checks
// that the whole /metrics document parses as valid exposition and carries
// the per-widget histograms, per-source upstream attribution, and
// per-command Slurm attribution the tentpole promises.
func TestMetricsExpositionValidity(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/recent_jobs", http.StatusOK)
	e.wantStatus("alice", "/api/system_status", http.StatusOK)
	e.wantStatus("bob", "/api/myjobs", http.StatusOK)
	e.wantStatus("", "/api/recent_jobs", http.StatusUnauthorized)

	status, body := e.get("staff", "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics: status %d: %s", status, body)
	}
	text := string(body)
	validateMetricsExposition(t, text)

	for _, want := range []string{
		`ooddash_widget_request_seconds_bucket{widget="recent_jobs",le="+Inf"}`,
		`ooddash_widget_request_seconds_count{widget="recent_jobs"}`,
		`ooddash_widget_requests_total{widget="recent_jobs",status="200"} 1`,
		`ooddash_widget_requests_total{widget="recent_jobs",status="401"} 1`,
		`ooddash_upstream_latency_seconds_count{source="slurmctld"}`,
		`ooddash_upstream_outcomes_total{source="slurmctld",outcome="ok"}`,
		`ooddash_fetch_results_total{source="slurmdbd",result="ok"}`,
		`ooddash_slurm_commands_total{command="squeue",daemon="slurmctld",outcome="ok"}`,
		`ooddash_slurm_commands_total{command="sacct",daemon="slurmdbd",outcome="ok"}`,
		`ooddash_slurm_command_seconds_count{daemon="slurmctld"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestTraceHeader asserts that every API response — success, client error,
// and auth failure alike — carries X-OODDash-Trace, that a well-formed
// inbound trace ID is adopted, and that a malformed one (which could inject
// into logs) is replaced.
func TestTraceHeader(t *testing.T) {
	e := newEnv(t)
	for _, tc := range []struct {
		user, path string
		status     int
	}{
		{"alice", "/api/recent_jobs", http.StatusOK},
		{"alice", "/api/job/999999", http.StatusNotFound},
		{"", "/api/storage", http.StatusUnauthorized},
		{"alice", "/metrics", http.StatusForbidden},
	} {
		status, hdr, _ := e.getFull(tc.user, tc.path)
		if status != tc.status {
			t.Fatalf("GET %s as %q: status %d, want %d", tc.path, tc.user, status, tc.status)
		}
		trace := hdr.Get("X-OODDash-Trace")
		if trace == "" {
			t.Errorf("GET %s (status %d): no X-OODDash-Trace header", tc.path, status)
		} else if !obs.ValidTraceID(trace) {
			t.Errorf("GET %s: malformed trace ID %q", tc.path, trace)
		}
	}

	send := func(inbound string) string {
		req, err := http.NewRequest("GET", e.web.URL+"/api/recent_jobs", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(auth.UserHeader, "alice")
		req.Header.Set("X-OODDash-Trace", inbound)
		resp, err := e.web.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.Header.Get("X-OODDash-Trace")
	}
	if got := send("proxy-abc123"); got != "proxy-abc123" {
		t.Errorf("valid inbound trace not adopted: got %q", got)
	}
	if got := send("bad id\"with} junk"); got == "bad id\"with} junk" || !obs.ValidTraceID(got) {
		t.Errorf("malformed inbound trace not replaced: got %q", got)
	}
}

// TestMountDuplicateNames locks in Mount's documented tolerance for the
// same widget named twice in the requested subset (each widget mounts once,
// no mux double-registration panic, no spurious unknown-widget error), and
// that subset-mounted widgets come instrumented.
func TestMountDuplicateNames(t *testing.T) {
	e := newEnv(t)
	mux := http.NewServeMux()
	if err := e.server.Mount(mux, "recent_jobs", "recent_jobs", "system_status"); err != nil {
		t.Fatalf("Mount with duplicate names: %v", err)
	}
	req := httptest.NewRequest("GET", "/api/recent_jobs", nil)
	req.Header.Set(auth.UserHeader, "alice")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("mounted subset: status %d: %s", rr.Code, rr.Body.String())
	}
	if rr.Header().Get("X-OODDash-Trace") == "" {
		t.Error("subset-mounted widget missing trace header (not instrumented)")
	}
	// Unknown names must still be reported.
	if err := e.server.Mount(http.NewServeMux(), "recent_jobs", "nope"); err == nil {
		t.Error("Mount with unknown widget: no error")
	}
}

// TestDegradedArrayPayload is the regression test for the silent-annotation
// bug: a degraded response with an array payload must still carry the
// X-OODDash-Degraded header (only the JSON annotation is impossible), the
// drop must be counted, and object payloads must report their age rounded
// to the nearest second rather than truncated.
func TestDegradedArrayPayload(t *testing.T) {
	e := newEnv(t)
	s := e.server
	meta := fetchMeta{Degraded: true, Age: 59*time.Second + 900*time.Millisecond}

	before := s.obsm.annotationsDropped.Value()
	rr := httptest.NewRecorder()
	s.writeWidgetJSON(rr, httptest.NewRequest("GET", "/api/test", nil), http.StatusOK, meta, []int{1, 2, 3})
	if got := rr.Header().Get(degradedHeader); got != "stale" {
		t.Errorf("array payload: %s header = %q, want \"stale\"", degradedHeader, got)
	}
	var arr []int
	if err := json.Unmarshal(rr.Body.Bytes(), &arr); err != nil || len(arr) != 3 {
		t.Errorf("array payload mangled: %v %s", err, rr.Body.String())
	}
	if got := s.obsm.annotationsDropped.Value(); got != before+1 {
		t.Errorf("annotationsDropped = %d, want %d", got, before+1)
	}

	rr = httptest.NewRecorder()
	s.writeWidgetJSON(rr, httptest.NewRequest("GET", "/api/test", nil), http.StatusOK, meta, map[string]string{"a": "b"})
	var obj struct {
		Degraded bool  `json:"degraded"`
		Age      int64 `json:"age_seconds"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &obj); err != nil {
		t.Fatalf("object payload: %v: %s", err, rr.Body.String())
	}
	if !obj.Degraded {
		t.Error("object payload: degraded annotation missing")
	}
	if want := int64(math.Round(meta.Age.Seconds())); obj.Age != want || obj.Age != 60 {
		t.Errorf("age_seconds = %d, want 60 (rounded, not truncated)", obj.Age)
	}
	if got := s.obsm.annotationsDropped.Value(); got != before+1 {
		t.Errorf("object payload wrongly counted as dropped: %d", got)
	}
}
