// Package core implements the paper's primary contribution: the modular,
// responsive HPC dashboard built on the Open OnDemand architecture.
//
// The backend follows the paper's structure (§2.2–§2.4): each dashboard
// feature is one frontend template paired with one JSON API route; API
// routes run Slurm commands (through slurmcli.Runner) or call helper
// services (news feed, storage database) and cache the results in a
// server-side TTL cache with per-data-source expiration times. Every route
// resolves the authenticated user and filters results to that user's scope
// (own jobs, group jobs, own disks, own logs).
//
// The widget registry makes the modularity concrete: each widget can be
// mounted in isolation onto any http.ServeMux, which is how the paper's
// "copy a template and an API route to another OnDemand install" porting
// story is reproduced (§2.3, §8).
package core
