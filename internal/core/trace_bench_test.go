package core

import "testing"

// These benchmarks measure what span tracing costs the PR-4 encode-once hit
// path (BenchmarkWidgetServeEncodeOnce, which runs with tracing disabled).
//
// The budget the subsystem is designed to: a sampled-out request — head
// sampling enabled but this trace ID not selected — must add at most ~3
// allocations over the untraced hit path (the no-op span checks are
// pointer-nil tests, and no span structs are built). The fully-sampled
// variant exists to watch the retained-path cost; it is expected to
// allocate (spans, attrs, store bookkeeping) and is not gated.

// BenchmarkTracedHitPath is the sampled-out overhead: tracing on, sampling
// probability 0, every request hashes its trace ID, misses, and serves the
// materialized hit path with nil spans throughout.
func BenchmarkTracedHitPath(b *testing.B) {
	benchServeSampled(b, "/api/myjobs", false, false, 0)
}

// BenchmarkTracedHitPathSampled is the fully-traced hit path: every request
// builds its span tree and offers the finished trace to the tail sampler.
func BenchmarkTracedHitPathSampled(b *testing.B) {
	benchServeSampled(b, "/api/myjobs", false, false, 1)
}
