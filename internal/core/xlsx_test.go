package core

import (
	"archive/zip"
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

func TestWriteXLSXStructure(t *testing.T) {
	var buf bytes.Buffer
	rows := [][]any{
		{"user", "cpus", "hours"},
		{"ada", 16, 3.5},
		{"<script>", int64(2), 0.0},
	}
	if err := writeXLSX(&buf, "lab usage", rows); err != nil {
		t.Fatal(err)
	}
	zr, err := zip.NewReader(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatalf("not a zip: %v", err)
	}
	parts := make(map[string]string)
	for _, f := range zr.File {
		rc, err := f.Open()
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(rc)
		rc.Close()
		parts[f.Name] = string(data)
	}
	for _, want := range []string{
		"[Content_Types].xml", "_rels/.rels", "xl/workbook.xml",
		"xl/_rels/workbook.xml.rels", "xl/worksheets/sheet1.xml",
	} {
		if _, ok := parts[want]; !ok {
			t.Fatalf("missing part %q (have %v)", want, len(parts))
		}
	}
	sheet := parts["xl/worksheets/sheet1.xml"]
	// Header strings are inline; numbers are typed values.
	if !strings.Contains(sheet, `<c r="A1" t="inlineStr"><is><t>user</t></is></c>`) {
		t.Fatalf("header cell missing:\n%s", sheet)
	}
	if !strings.Contains(sheet, `<c r="B2"><v>16</v></c>`) {
		t.Fatalf("int cell missing:\n%s", sheet)
	}
	if !strings.Contains(sheet, `<c r="C2"><v>3.5</v></c>`) {
		t.Fatalf("float cell missing:\n%s", sheet)
	}
	// XML-hostile strings are escaped.
	if strings.Contains(sheet, "<script>") {
		t.Fatal("unescaped markup in sheet")
	}
	if !strings.Contains(sheet, "&lt;script&gt;") {
		t.Fatalf("escaped markup missing:\n%s", sheet)
	}
	if !strings.Contains(parts["xl/workbook.xml"], `name="lab usage"`) {
		t.Fatalf("workbook sheet name missing:\n%s", parts["xl/workbook.xml"])
	}
}

func TestXLSXCellRef(t *testing.T) {
	cases := []struct {
		row, col int
		want     string
	}{
		{0, 0, "A1"}, {1, 1, "B2"}, {0, 25, "Z1"}, {0, 26, "AA1"}, {9, 27, "AB10"},
	}
	for _, tc := range cases {
		if got := xlsxCellRef(tc.row, tc.col); got != tc.want {
			t.Errorf("xlsxCellRef(%d,%d) = %s, want %s", tc.row, tc.col, got, tc.want)
		}
	}
}

func TestAccountExportXLSXRoute(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	status, body := e.get("alice", "/api/accounts/lab-a/export.xlsx")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	zr, err := zip.NewReader(bytes.NewReader(body), int64(len(body)))
	if err != nil {
		t.Fatalf("response is not a valid xlsx zip: %v", err)
	}
	found := false
	for _, f := range zr.File {
		if f.Name == "xl/worksheets/sheet1.xml" {
			rc, _ := f.Open()
			data, _ := io.ReadAll(rc)
			rc.Close()
			if !strings.Contains(string(data), "alice") {
				t.Fatalf("sheet missing alice row:\n%s", data)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("worksheet part missing")
	}
	// Same privacy boundary as the CSV export.
	e.wantStatus("carol", "/api/accounts/lab-a/export.xlsx", 403)
}

func TestRecentJobsStateHelp(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		Name: "helpful", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	var resp RecentJobsResponse
	e.getJSON("alice", "/api/recent_jobs", &resp)
	if len(resp.Jobs) != 1 {
		t.Fatalf("jobs = %+v", resp.Jobs)
	}
	if !strings.Contains(resp.Jobs[0].StateHelp, "executing") {
		t.Fatalf("state help = %q", resp.Jobs[0].StateHelp)
	}
}
