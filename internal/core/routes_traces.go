package core

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"ooddash/internal/trace"
)

// TraceListResponse is the admin trace-store listing: retained summaries
// (newest first) plus the store's retention accounting, so an operator can
// see at a glance how much the tail sampler is keeping and why.
type TraceListResponse struct {
	Traces        []trace.Summary `json:"traces"`
	Retained      int             `json:"retained"`
	Capacity      int             `json:"capacity"`
	RetainedBytes int64           `json:"retained_bytes"`
	Decisions     trace.Decisions `json:"decisions"`
}

// handleAdminTraces serves GET /api/admin/traces — the staff entry point into
// the tail-sampled trace store. Filters: ?widget=, ?min_ms= (minimum duration),
// ?degraded=1 (error/degraded only), ?limit=. Never cached (TTL 0 in the
// widget table) and excluded from the instrument middleware's own tracing —
// observing the observer must not perturb or recurse into it.
func (s *Server) handleAdminTraces(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	q := r.URL.Query()
	f := trace.Filter{Widget: q.Get("widget")}
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, fmt.Errorf("%w: bad min_ms %q", errBadRequest, v))
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := q.Get("degraded"); v == "1" || v == "true" {
		f.DegradedOnly = true
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 1000 {
			writeError(w, fmt.Errorf("%w: bad limit %q", errBadRequest, v))
			return
		}
		f.Limit = n
	}
	st := s.tracer.Store()
	writeJSON(w, http.StatusOK, TraceListResponse{
		Traces:        st.List(f),
		Retained:      st.Len(),
		Capacity:      st.Max(),
		RetainedBytes: st.RetainedBytes(),
		Decisions:     st.Snapshot(),
	})
}

// handleAdminTrace serves GET /api/admin/traces/{id} — one retained trace as
// a span tree with microsecond offsets, the payload behind the waterfall view.
func (s *Server) handleAdminTrace(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	id := r.PathValue("id")
	tr, ok := s.tracer.Store().Get(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: no retained trace %s", errNotFound, id))
		return
	}
	writeJSON(w, http.StatusOK, tr.Export())
}
