package core

// A minimal XLSX writer for the Accounts widget's "export to Excel" option
// (§3.4 offers Excel or CSV). XLSX is a zip of XML parts; this writer emits
// the smallest valid workbook — one sheet, inline strings, numbers typed as
// numbers — which Excel, LibreOffice, and Google Sheets all open.

import (
	"archive/zip"
	"encoding/xml"
	"fmt"
	"io"
	"strconv"
)

// xlsxCellRef converts (row, col) (0-based) to an A1-style reference.
func xlsxCellRef(row, col int) string {
	name := ""
	for c := col; ; {
		name = string(rune('A'+c%26)) + name
		c = c/26 - 1
		if c < 0 {
			break
		}
	}
	return fmt.Sprintf("%s%d", name, row+1)
}

// writeXLSX writes a single-sheet workbook. Cells may be string, int,
// int64, or float64; everything else is rendered with fmt.Sprint.
func writeXLSX(w io.Writer, sheetName string, rows [][]any) error {
	zw := zip.NewWriter(w)
	write := func(path, content string) error {
		f, err := zw.Create(path)
		if err != nil {
			return err
		}
		_, err = f.Write([]byte(content))
		return err
	}

	if err := write("[Content_Types].xml", xml.Header+
		`<Types xmlns="http://schemas.openxmlformats.org/package/2006/content-types">`+
		`<Default Extension="rels" ContentType="application/vnd.openxmlformats-package.relationships+xml"/>`+
		`<Default Extension="xml" ContentType="application/xml"/>`+
		`<Override PartName="/xl/workbook.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.sheet.main+xml"/>`+
		`<Override PartName="/xl/worksheets/sheet1.xml" ContentType="application/vnd.openxmlformats-officedocument.spreadsheetml.worksheet+xml"/>`+
		`</Types>`); err != nil {
		return err
	}
	if err := write("_rels/.rels", xml.Header+
		`<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">`+
		`<Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/officeDocument" Target="xl/workbook.xml"/>`+
		`</Relationships>`); err != nil {
		return err
	}
	nameBuf, err := xmlEscape(sheetName)
	if err != nil {
		return err
	}
	if err := write("xl/workbook.xml", xml.Header+
		`<workbook xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main" `+
		`xmlns:r="http://schemas.openxmlformats.org/officeDocument/2006/relationships">`+
		`<sheets><sheet name="`+string(nameBuf)+`" sheetId="1" r:id="rId1"/></sheets></workbook>`); err != nil {
		return err
	}
	if err := write("xl/_rels/workbook.xml.rels", xml.Header+
		`<Relationships xmlns="http://schemas.openxmlformats.org/package/2006/relationships">`+
		`<Relationship Id="rId1" Type="http://schemas.openxmlformats.org/officeDocument/2006/relationships/worksheet" Target="worksheets/sheet1.xml"/>`+
		`</Relationships>`); err != nil {
		return err
	}

	sheet := xml.Header +
		`<worksheet xmlns="http://schemas.openxmlformats.org/spreadsheetml/2006/main"><sheetData>`
	for r, row := range rows {
		sheet += fmt.Sprintf(`<row r="%d">`, r+1)
		for c, cell := range row {
			ref := xlsxCellRef(r, c)
			switch v := cell.(type) {
			case int:
				sheet += fmt.Sprintf(`<c r="%s"><v>%d</v></c>`, ref, v)
			case int64:
				sheet += fmt.Sprintf(`<c r="%s"><v>%d</v></c>`, ref, v)
			case float64:
				sheet += fmt.Sprintf(`<c r="%s"><v>%s</v></c>`, ref, strconv.FormatFloat(v, 'f', -1, 64))
			default:
				escaped, err := xmlEscape(fmt.Sprint(v))
				if err != nil {
					return err
				}
				sheet += fmt.Sprintf(`<c r="%s" t="inlineStr"><is><t>%s</t></is></c>`, ref, escaped)
			}
		}
		sheet += `</row>`
	}
	sheet += `</sheetData></worksheet>`
	if err := write("xl/worksheets/sheet1.xml", sheet); err != nil {
		return err
	}
	return zw.Close()
}

// xmlEscape escapes text for embedding in XML content.
func xmlEscape(s string) ([]byte, error) {
	var buf []byte
	w := &sliceWriter{buf: &buf}
	if err := xml.EscapeText(w, []byte(s)); err != nil {
		return nil, err
	}
	return buf, nil
}

type sliceWriter struct{ buf *[]byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	*w.buf = append(*w.buf, p...)
	return len(p), nil
}
