package core

import (
	"fmt"
	"strings"
	"testing"
)

// Ablation from DESIGN.md: the Job Overview log view caps at 1000 lines so
// huge logs stay cheap. These benches quantify the cap against full reads.
func BenchmarkLogTailWindow(b *testing.B) {
	store := NewMemLogStore()
	var content strings.Builder
	for i := 1; i <= 200_000; i++ {
		fmt.Fprintf(&content, "[stamp] iteration %d complete\n", i)
	}
	store.Write("/big.log", content.String())

	for _, window := range []int{100, 1000, 0 /* full file */} {
		name := fmt.Sprintf("window=%d", window)
		if window == 0 {
			name = "window=full"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lines, total, err := store.ReadTail("/big.log", window)
				if err != nil || total != 200_000 {
					b.Fatalf("total=%d err=%v", total, err)
				}
				if window > 0 && len(lines) != window {
					b.Fatalf("lines=%d", len(lines))
				}
			}
		})
	}
}

func BenchmarkTailLines(b *testing.B) {
	var content strings.Builder
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&content, "line %d\n", i)
	}
	s := content.String()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lines, total := tailLines(s, 1000)
		if total != 50_000 || len(lines) != 1000 {
			b.Fatal("bad tail")
		}
	}
}
