package core

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/slurm"
)

func TestWidgetTableMatchesTable1(t *testing.T) {
	e := newEnv(t)
	widgets := e.server.Widgets()
	wantSources := map[string]string{
		"announcements":  "API call to center news page",
		"recent_jobs":    "squeue (Slurm)",
		"system_status":  "sinfo (Slurm)",
		"accounts":       "scontrol show assoc (Slurm)",
		"storage":        "ZFS and GPFS storage database",
		"my_jobs":        "sacct (Slurm)",
		"job_perf":       "sreport rollup (slurmdbd)",
		"cluster_status": "scontrol show node (Slurm)",
		"job_overview":   "scontrol show job (Slurm)",
		"node_overview":  "scontrol show node (Slurm)",
	}
	byName := make(map[string]Widget)
	for _, w := range widgets {
		byName[w.Name] = w
	}
	for name, source := range wantSources {
		w, ok := byName[name]
		if !ok {
			t.Errorf("missing widget %q", name)
			continue
		}
		if w.DataSource != source {
			t.Errorf("widget %s data source = %q, want %q", name, w.DataSource, source)
		}
	}
}

func TestMountSubsetInIsolation(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})

	// Another site adopts just two widgets on its own mux (§2.3, §8).
	mux := http.NewServeMux()
	if err := e.server.Mount(mux, "recent_jobs", "system_status"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) int {
		req, _ := http.NewRequest("GET", srv.URL+path, nil)
		req.Header.Set(auth.UserHeader, "alice")
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get("/api/recent_jobs"); got != 200 {
		t.Fatalf("mounted widget = %d", got)
	}
	if got := get("/api/system_status"); got != 200 {
		t.Fatalf("mounted widget = %d", got)
	}
	// Widgets that weren't adopted are absent.
	if got := get("/api/storage"); got != 404 {
		t.Fatalf("unmounted widget = %d, want 404", got)
	}
}

func TestMountUnknownWidget(t *testing.T) {
	e := newEnv(t)
	if err := e.server.Mount(http.NewServeMux(), "nonexistent"); err == nil {
		t.Fatal("expected error for unknown widget name")
	}
	// All unknown names are reported, deterministically sorted, with known
	// names accepted alongside.
	err := e.server.Mount(http.NewServeMux(), "zeta", "recent_jobs", "alpha")
	if err == nil {
		t.Fatal("expected error for unknown widget names")
	}
	if !strings.Contains(err.Error(), "alpha, zeta") {
		t.Fatalf("Mount error = %q, want all unknown names sorted", err)
	}
}

func TestWidgetFailureIsolation(t *testing.T) {
	e := newEnv(t)
	// Kill the news backend: announcements must fail alone (503: upstream
	// unavailable, no stale copy) while every other widget keeps serving
	// (§2.4 Modularity).
	e.feedSrv.Close()
	e.wantStatus("alice", "/api/announcements", 503)
	e.wantStatus("alice", "/api/recent_jobs", 200)
	e.wantStatus("alice", "/api/system_status", 200)
	e.wantStatus("alice", "/api/storage", 200)
}

func TestServerCacheReducesControllerLoad(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	stats := e.cluster.Ctl.Stats()
	before := stats.Count(slurm.RPCSqueue)
	for i := 0; i < 20; i++ {
		e.wantStatus("alice", "/api/recent_jobs", 200)
	}
	if got := stats.Count(slurm.RPCSqueue) - before; got != 1 {
		t.Fatalf("squeue RPCs for 20 cached requests = %d, want 1", got)
	}

	// After the TTL passes, exactly one more query goes through.
	e.clock.Advance(31 * time.Second)
	e.cluster.Ctl.Tick()
	for i := 0; i < 5; i++ {
		e.wantStatus("alice", "/api/recent_jobs", 200)
	}
	if got := stats.Count(slurm.RPCSqueue) - before; got != 2 {
		t.Fatalf("squeue RPCs after expiry = %d, want 2", got)
	}
}

func TestCacheDisabledHitsSlurmEveryTime(t *testing.T) {
	e := newEnv(t)
	e.server.Cache().Disabled = true
	stats := e.cluster.Ctl.Stats()
	before := stats.Count(slurm.RPCSqueue)
	for i := 0; i < 5; i++ {
		e.wantStatus("alice", "/api/recent_jobs", 200)
	}
	if got := stats.Count(slurm.RPCSqueue) - before; got != 5 {
		t.Fatalf("uncached squeue RPCs = %d, want 5", got)
	}
}

func TestStalenessBoundedByTTL(t *testing.T) {
	e := newEnv(t)
	var resp RecentJobsResponse
	e.getJSON("alice", "/api/recent_jobs", &resp)
	if len(resp.Jobs) != 0 {
		t.Fatalf("initial jobs = %+v", resp.Jobs)
	}
	// Submit a job; the cached (empty) response may persist up to the TTL…
	e.submit(slurm.SubmitRequest{
		Name: "fresh", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	e.getJSON("alice", "/api/recent_jobs", &resp)
	if len(resp.Jobs) != 0 {
		t.Fatalf("expected stale cache inside TTL, got %+v", resp.Jobs)
	}
	// …but no longer than the TTL.
	e.clock.Advance(31 * time.Second)
	e.cluster.Ctl.Tick()
	e.getJSON("alice", "/api/recent_jobs", &resp)
	if len(resp.Jobs) != 1 || resp.Jobs[0].Name != "fresh" {
		t.Fatalf("post-TTL jobs = %+v", resp.Jobs)
	}
}

func TestNewServerValidation(t *testing.T) {
	users := auth.NewDirectory()
	if _, err := NewServer(Config{}, Deps{Users: users}); err == nil {
		t.Fatal("expected error without runner")
	}
	e := newEnv(t)
	if _, err := NewServer(Config{}, Deps{Runner: e.server.runner}); err == nil {
		t.Fatal("expected error without user directory")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.TTLs.Announcements != 30*time.Minute {
		t.Fatalf("announcements TTL = %v", cfg.TTLs.Announcements)
	}
	if cfg.TTLs.RecentJobs != 30*time.Second {
		t.Fatalf("recent jobs TTL = %v", cfg.TTLs.RecentJobs)
	}
	if cfg.TTLs.Storage != time.Hour {
		t.Fatalf("storage TTL = %v", cfg.TTLs.Storage)
	}
	if cfg.LogTailLines != 1000 {
		t.Fatalf("log tail = %d", cfg.LogTailLines)
	}
	// Explicit values survive.
	cfg2 := Config{LogTailLines: 50, ClusterName: "x"}.withDefaults()
	if cfg2.LogTailLines != 50 || cfg2.ClusterName != "x" {
		t.Fatalf("cfg2 = %+v", cfg2)
	}
}
