package core

import (
	"testing"
	"time"

	"ooddash/internal/slurm"
)

func TestClusterStatusGridData(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 1024}, // fills c001 exactly
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	if err := e.cluster.Ctl.DrainNode("c004", "bad dimm"); err != nil {
		t.Fatal(err)
	}
	if err := e.cluster.Ctl.SetNodeDown("g002", "power supply"); err != nil {
		t.Fatal(err)
	}
	if err := e.cluster.Ctl.SetNodeMaint("c003", true); err != nil {
		t.Fatal(err)
	}
	e.cluster.Ctl.Tick()

	var resp ClusterStatusResponse
	e.getJSON("alice", "/api/cluster_status", &resp)
	if resp.Total != 6 {
		t.Fatalf("total = %d, want 6", resp.Total)
	}
	byName := make(map[string]NodeCell)
	for _, n := range resp.Nodes {
		byName[n.Name] = n
	}
	if c := byName["c001"]; c.Color != "green" || c.State != "ALLOCATED" {
		t.Fatalf("c001 = %+v", c)
	}
	if c := byName["c002"]; c.Color != "faded-green" || c.State != "IDLE" {
		t.Fatalf("c002 = %+v", c)
	}
	if c := byName["c003"]; c.Color != "orange" {
		t.Fatalf("c003 = %+v", c)
	}
	if c := byName["c004"]; c.Color != "yellow" {
		t.Fatalf("c004 = %+v", c)
	}
	if c := byName["g002"]; c.Color != "red" {
		t.Fatalf("g002 = %+v", c)
	}
	if resp.StateCounts["red"] != 1 || resp.StateCounts["yellow"] != 1 {
		t.Fatalf("state counts = %+v", resp.StateCounts)
	}
}

func TestClusterStatusSearch(t *testing.T) {
	e := newEnv(t)
	var resp ClusterStatusResponse
	e.getJSON("alice", "/api/cluster_status?search=gpu", &resp)
	if len(resp.Nodes) != 2 {
		t.Fatalf("gpu search = %+v", resp.Nodes)
	}
	e.getJSON("alice", "/api/cluster_status?search=c00", &resp)
	if len(resp.Nodes) != 4 {
		t.Fatalf("name search = %d nodes", len(resp.Nodes))
	}
	e.getJSON("alice", "/api/cluster_status?search=idle", &resp)
	if len(resp.Nodes) != 6 {
		t.Fatalf("state search = %d nodes", len(resp.Nodes))
	}
}

func TestClusterStatusSort(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 6, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1.0},
	})
	var resp ClusterStatusResponse
	e.getJSON("alice", "/api/cluster_status?sort=cpu_load&order=desc", &resp)
	if resp.Nodes[0].CPULoad < resp.Nodes[1].CPULoad {
		t.Fatalf("desc sort violated: %v then %v", resp.Nodes[0].CPULoad, resp.Nodes[1].CPULoad)
	}
	if resp.Nodes[0].Name != "c001" {
		t.Fatalf("busiest node = %s", resp.Nodes[0].Name)
	}
	e.wantStatus("alice", "/api/cluster_status?sort=bogus", 400)
}

func TestNodeOverview(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "carol", Account: "lab-b", Partition: "gpu",
		ReqTRES: slurm.TRES{CPUs: 8, MemMB: 32 * 1024, GPUs: 1},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.5},
	})
	var resp NodeOverviewResponse
	e.getJSON("alice", "/api/node/g001", &resp)
	if resp.Name != "g001" || resp.State != "MIXED" || resp.Color != "green" {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.CPUPercent != 50 || resp.MemPercent != 50 || resp.GPUPercent != 50 {
		t.Fatalf("percents = %v %v %v", resp.CPUPercent, resp.MemPercent, resp.GPUPercent)
	}
	if resp.GPUType != "a100" || resp.OS == "" || resp.Arch != "x86_64" {
		t.Fatalf("details = %+v", resp)
	}
	if len(resp.Partitions) != 1 || resp.Partitions[0] != "gpu" {
		t.Fatalf("partitions = %v", resp.Partitions)
	}
}

func TestNodeOverviewUnknownNode(t *testing.T) {
	e := newEnv(t)
	e.wantStatus("alice", "/api/node/zz999", 404)
}

func TestNodeJobsTab(t *testing.T) {
	e := newEnv(t)
	id := e.submit(slurm.SubmitRequest{
		Name: "on-node", User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour},
	})
	node := e.cluster.Ctl.Job(id).Nodes[0]
	var resp NodeJobsResponse
	e.getJSON("bob", "/api/node/"+node+"/jobs", &resp)
	if len(resp.Jobs) != 1 {
		t.Fatalf("jobs = %+v", resp.Jobs)
	}
	j := resp.Jobs[0]
	if j.Name != "on-node" || j.User != "alice" || j.State != "RUNNING" {
		t.Fatalf("job row = %+v", j)
	}
	if j.OverviewURL == "" {
		t.Fatal("missing overview link")
	}
	// A different node shows no jobs.
	var other NodeJobsResponse
	e.getJSON("bob", "/api/node/c004/jobs", &other)
	if len(other.Jobs) != 0 {
		t.Fatalf("c004 jobs = %+v", other.Jobs)
	}
}

func TestClusterStatusCached(t *testing.T) {
	e := newEnv(t)
	before := e.cluster.Ctl.Stats().Count(slurm.RPCNodeInfo)
	var resp ClusterStatusResponse
	e.getJSON("alice", "/api/cluster_status", &resp)
	e.getJSON("bob", "/api/cluster_status", &resp)
	e.getJSON("carol", "/api/cluster_status?search=gpu", &resp)
	after := e.cluster.Ctl.Stats().Count(slurm.RPCNodeInfo)
	if after-before != 1 {
		t.Fatalf("node info RPCs = %d, want 1 (shared cache)", after-before)
	}
}

func TestNodeStateColorMapping(t *testing.T) {
	tests := []struct {
		state slurm.NodeState
		want  string
	}{
		{slurm.NodeAllocated, "green"},
		{slurm.NodeMixed, "green"},
		{slurm.NodeIdle, "faded-green"},
		{slurm.NodeDrained, "yellow"},
		{slurm.NodeDraining, "yellow"},
		{slurm.NodeMaint, "orange"},
		{slurm.NodeDown, "red"},
	}
	for _, tc := range tests {
		if got := nodeStateColor(tc.state); got != tc.want {
			t.Errorf("nodeStateColor(%s) = %s, want %s", tc.state, got, tc.want)
		}
	}
}

func TestClusterStatusSortVariants(t *testing.T) {
	e := newEnv(t)
	e.submit(slurm.SubmitRequest{
		User: "alice", Account: "lab-a", Partition: "cpu",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 2048},
		Profile: slurm.UsageProfile{ActualDuration: time.Hour, CPUUtilization: 1.0},
	})
	for _, sortKey := range []string{"name", "state", "cpu_alloc", "mem", "cpu_load"} {
		var resp ClusterStatusResponse
		e.getJSON("alice", "/api/cluster_status?sort="+sortKey, &resp)
		if len(resp.Nodes) == 0 {
			t.Fatalf("sort=%s returned no nodes", sortKey)
		}
	}
	// cpu_alloc ascending puts idle nodes first.
	var asc ClusterStatusResponse
	e.getJSON("alice", "/api/cluster_status?sort=cpu_alloc", &asc)
	if asc.Nodes[0].CPUsAlloc != 0 {
		t.Fatalf("ascending cpu_alloc starts at %d", asc.Nodes[0].CPUsAlloc)
	}
	// mem descending puts the busy node first.
	var desc ClusterStatusResponse
	e.getJSON("alice", "/api/cluster_status?sort=mem&order=desc", &desc)
	if desc.Nodes[0].AllocMemMB == 0 {
		t.Fatal("descending mem starts at an idle node")
	}
	// state sort groups by state name.
	var byState ClusterStatusResponse
	e.getJSON("alice", "/api/cluster_status?sort=state", &byState)
	for i := 1; i < len(byState.Nodes); i++ {
		if byState.Nodes[i].State < byState.Nodes[i-1].State {
			t.Fatalf("state sort violated at %d", i)
		}
	}
}

func TestJobStateColors(t *testing.T) {
	cases := map[slurm.JobState]string{
		slurm.StateRunning:     "blue",
		slurm.StateCompleting:  "blue",
		slurm.StateCompleted:   "green",
		slurm.StatePending:     "yellow",
		slurm.StateSuspended:   "yellow",
		slurm.StateCancelled:   "gray",
		slurm.StateFailed:      "red",
		slurm.StateTimeout:     "red",
		slurm.StateOutOfMemory: "red",
	}
	for state, want := range cases {
		if got := stateColor(state); got != want {
			t.Errorf("stateColor(%s) = %s, want %s", state, got, want)
		}
	}
}
