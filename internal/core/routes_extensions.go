package core

// The routes in this file implement the paper's §9 "ongoing and future
// work" items as extensions: real-time job monitoring (a delta event feed
// instead of re-polling squeue), analysis of users' jobs (the insights
// engine), and permission-based accounting (admin-only cluster overview).

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"ooddash/internal/insights"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// EventSource is the real-time monitoring feed: job state transitions with
// monotonically increasing sequence numbers. The simulated cluster's
// controller implements it; a production deployment would adapt Slurm's
// strigger/jobcomp hooks.
type EventSource interface {
	EventsSince(seq int64, limit int) []slurm.Event
	LastEventSeq() int64
}

// JobEvent is one event on the wire.
type JobEvent struct {
	Seq     int64     `json:"seq"`
	Kind    string    `json:"kind"`
	JobID   string    `json:"job_id"`
	JobName string    `json:"job_name"`
	User    string    `json:"user"`
	State   string    `json:"state"`
	Time    time.Time `json:"time"`
}

// EventsResponse is the delta-poll payload: pass next_seq back as ?since=
// to receive only newer events.
type EventsResponse struct {
	Events  []JobEvent `json:"events"`
	NextSeq int64      `json:"next_seq"`
}

// handleEventsPoll is the legacy delta-poll feed; SSE requests are routed
// to handleEventStream by the handleEvents dispatcher in routes_push.go.
func (s *Server) handleEventsPoll(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if s.events == nil {
		writeError(w, fmt.Errorf("%w: no event source configured", errNotFound))
		return
	}
	since := int64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		since, err = strconv.ParseInt(v, 10, 64)
		if err != nil || since < 0 {
			writeError(w, fmt.Errorf("%w: bad since %q", errBadRequest, v))
			return
		}
	}
	limit := 100
	if v := r.URL.Query().Get("limit"); v != "" {
		limit, err = strconv.Atoi(v)
		if err != nil || limit <= 0 || limit > 1000 {
			writeError(w, fmt.Errorf("%w: bad limit %q", errBadRequest, v))
			return
		}
	}
	// tail=1 returns no events, just the current head sequence — clients
	// start a live watch here instead of replaying history.
	if r.URL.Query().Get("tail") == "1" {
		writeJSON(w, http.StatusOK, EventsResponse{NextSeq: s.events.LastEventSeq()})
		return
	}
	// Events are never cached server-side: the whole point of the feed is
	// freshness, and delta polling already keeps each request cheap.
	resp := EventsResponse{NextSeq: since}
	for _, e := range s.events.EventsSince(since, 0) {
		// Privacy scope matches My Jobs: own and group jobs only.
		if !user.Admin && e.User != user.Name && !user.MemberOf(e.Account) {
			resp.NextSeq = e.Seq
			continue
		}
		resp.Events = append(resp.Events, JobEvent{
			Seq: e.Seq, Kind: string(e.Kind),
			JobID:   strconv.FormatInt(int64(e.JobID), 10),
			JobName: e.JobName, User: e.User,
			State: string(e.State), Time: e.Time,
		})
		resp.NextSeq = e.Seq
		if len(resp.Events) == limit {
			break
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// --- Insights (analysis of users' jobs) ----------------------------------------

// InsightsResponse carries the analyzer's findings for the user.
type InsightsResponse struct {
	User     string             `json:"user"`
	Range    string             `json:"range"`
	Findings []insights.Finding `json:"findings"`
	JobCount int                `json:"job_count"`
}

func (s *Server) handleInsights(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	key := fmt.Sprintf("insights:%s:%d:%d", user.Name, start.Unix(), end.Unix())
	v, meta, err := s.fetchVia(r, srcDBD, key, s.cfg.TTLs.JobHistory, func(ctx context.Context) (any, error) {
		rows, err := s.dbdBk.Sacct(ctx, slurmcli.SacctOptions{
			User: user.Name, Start: start, End: end,
		})
		if err != nil {
			return nil, err
		}
		return &InsightsResponse{
			User:     user.Name,
			Range:    r.URL.Query().Get("range"),
			Findings: insights.Analyze(rows, insights.DefaultConfig()),
			JobCount: len(rows),
		}, nil
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	s.serveRendered(w, r, meta, user.Name, func() (any, error) {
		return v.(*InsightsResponse), nil
	})
}

// --- Admin overview (permission-based accounting) --------------------------------

// AdminUserRow is one user's cluster-wide consumption in the admin view.
type AdminUserRow struct {
	User       string  `json:"user"`
	Jobs       int     `json:"jobs"`
	CPUHours   float64 `json:"cpu_hours"`
	GPUHours   float64 `json:"gpu_hours"`
	FailedJobs int     `json:"failed_jobs"`
	AvgCPUEff  float64 `json:"avg_cpu_eff"`
}

// AdminOverviewResponse is the admin-only cluster accounting summary.
type AdminOverviewResponse struct {
	RangeEnd      time.Time      `json:"range_end"`
	TotalJobs     int            `json:"total_jobs"`
	TotalCPUHours float64        `json:"total_cpu_hours"`
	TotalGPUHours float64        `json:"total_gpu_hours"`
	StateCounts   map[string]int `json:"state_counts"`
	TopUsers      []AdminUserRow `json:"top_users"`
}

func (s *Server) handleAdminOverview(w http.ResponseWriter, r *http.Request) {
	user, err := s.currentUser(r)
	if err != nil {
		writeError(w, err)
		return
	}
	if !user.Admin {
		writeError(w, fmt.Errorf("%w: admin access required", errForbidden))
		return
	}
	now := s.clock.Now()
	start, end, err := parseTimeRange(r, now)
	if err != nil {
		writeError(w, err)
		return
	}
	key := fmt.Sprintf("admin_overview:%d:%d", start.Unix(), end.Unix())
	v, meta, err := s.fetchVia(r, srcDBD, key, s.cfg.TTLs.JobHistory, func(ctx context.Context) (any, error) {
		rows, err := s.dbdBk.Sacct(ctx, slurmcli.SacctOptions{
			AllUsers: true, Start: start, End: end,
		})
		if err != nil {
			return nil, err
		}
		return buildAdminOverview(rows, end), nil
	})
	if err != nil {
		writeFetchError(w, err)
		return
	}
	// Admin-gated above; the payload itself is the same for every admin.
	s.serveRendered(w, r, meta, "", func() (any, error) {
		return v.(*AdminOverviewResponse), nil
	})
}

func buildAdminOverview(rows []slurmcli.SacctRow, end time.Time) *AdminOverviewResponse {
	resp := &AdminOverviewResponse{
		RangeEnd:    end,
		StateCounts: make(map[string]int),
	}
	type acc struct {
		AdminUserRow
		effSum float64
		effN   int
	}
	perUser := make(map[string]*acc)
	for i := range rows {
		row := &rows[i]
		resp.TotalJobs++
		resp.StateCounts[string(row.State)]++
		resp.TotalCPUHours += row.TotalCPU.Hours()
		resp.TotalGPUHours += row.GPUHours()

		a := perUser[row.User]
		if a == nil {
			a = &acc{AdminUserRow: AdminUserRow{User: row.User}}
			perUser[row.User] = a
		}
		a.Jobs++
		a.CPUHours += row.TotalCPU.Hours()
		a.GPUHours += row.GPUHours()
		if row.State == slurm.StateFailed {
			a.FailedJobs++
		}
		if row.AllocCPUs > 0 && row.Elapsed > 0 {
			a.effSum += 100 * float64(row.TotalCPU) / (float64(row.Elapsed) * float64(row.AllocCPUs))
			a.effN++
		}
	}
	for _, a := range perUser {
		if a.effN > 0 {
			a.AvgCPUEff = a.effSum / float64(a.effN)
		}
		resp.TopUsers = append(resp.TopUsers, a.AdminUserRow)
	}
	sort.Slice(resp.TopUsers, func(i, j int) bool {
		if resp.TopUsers[i].CPUHours != resp.TopUsers[j].CPUHours {
			return resp.TopUsers[i].CPUHours > resp.TopUsers[j].CPUHours
		}
		return resp.TopUsers[i].User < resp.TopUsers[j].User
	})
	if len(resp.TopUsers) > 20 {
		resp.TopUsers = resp.TopUsers[:20]
	}
	return resp
}
