package core

import (
	"bytes"
	"strings"
	"testing"

	"ooddash/internal/trace"
)

// TestRollupGoldenEquivalence is the ablation contract: every rollup-backed
// route serves byte-identical JSON whether the window comes from the
// incremental store or is recomputed by scanning raw accounting rows
// (SetRollupDisabled). Any drift here means the ingest fold and the raw
// fold disagree on some job.
func TestRollupGoldenEquivalence(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	paths := []struct{ user, path string }{
		{"alice", "/api/jobperf/timeseries?range=24h&bucket=hour"},
		{"alice", "/api/jobperf/timeseries?range=24h"},
		{"alice", "/api/jobperf/timeseries?range=7d"},
		{"alice", "/api/jobperf/timeseries?range=all"},
		{"bob", "/api/jobperf/timeseries?range=custom&from=2026-07-01T08:30:00Z&to=2026-07-01T10:30:00Z&bucket=hour"},
		{"alice", "/api/jobperf?range=24h"},
		{"bob", "/api/jobperf?range=all"},
		{"carol", "/api/jobperf?range=all"}, // no history: both paths agree on the empty shape
		{"alice", "/api/usage/cluster?range=7d"},
		{"alice", "/api/usage/cluster?range=1y"},
		{"alice", "/api/usage/accounts?range=90d"},
		{"alice", "/api/usage/efficiency?range=30d"},
	}
	for _, p := range paths {
		e.server.SetRollupDisabled(false)
		status, rolled := e.get(p.user, p.path)
		if status != 200 {
			t.Errorf("%s: rollup status %d: %s", p.path, status, rolled)
			continue
		}
		e.server.SetRollupDisabled(true)
		status, raw := e.get(p.user, p.path)
		e.server.SetRollupDisabled(false)
		if status != 200 {
			t.Errorf("%s: raw status %d: %s", p.path, status, raw)
			continue
		}
		if !bytes.Equal(rolled, raw) {
			t.Errorf("%s: rollup and raw recompute differ\nrollup: %s\nraw:    %s",
				p.path, rolled, raw)
		}
	}
}

// TestRollupPartialBucketFlags pins the half-open alignment contract: a
// window edge inside a bucket widens the response to the whole bucket and
// sets the partial flag — the edge buckets are never silently scaled down
// to the requested sliver.
func TestRollupPartialBucketFlags(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)

	// bob's history: crashy FAILED ends 08:10, train COMPLETED ends 10:00.
	var resp TimeseriesResponse
	e.getJSON("bob", "/api/jobperf/timeseries?range=custom&from=2026-07-01T08:30:00Z&to=2026-07-01T10:30:00Z&bucket=hour", &resp)
	if !resp.PartialStart || !resp.PartialEnd {
		t.Fatalf("unaligned window not flagged: %+v", resp)
	}
	if len(resp.Buckets) != 2 {
		t.Fatalf("buckets = %+v", resp.Buckets)
	}
	// The first bucket is the whole 08:00 hour: it includes the 08:10
	// failure even though the request started at 08:30 — flagged, not
	// trimmed.
	if resp.Buckets[0].Start.Hour() != 8 || resp.Buckets[0].Failed != 1 {
		t.Fatalf("partial first bucket = %+v", resp.Buckets[0])
	}

	// Aligned edges: no flags (fresh struct — the flags are omitempty).
	var aligned TimeseriesResponse
	e.getJSON("bob", "/api/jobperf/timeseries?range=custom&from=2026-07-01T08:00:00Z&to=2026-07-01T11:00:00Z&bucket=hour", &aligned)
	if aligned.PartialStart || aligned.PartialEnd {
		t.Fatalf("aligned window flagged partial: %+v", aligned)
	}
	if len(aligned.Buckets) != 2 {
		t.Fatalf("aligned buckets = %+v", aligned.Buckets)
	}
}

// TestRollupRangeValidation pins the 400s: degenerate windows, explicit
// buckets too fine for the window, windows outside a resolution's
// retention, and unknown bucket names are client errors — never silently
// served with missing data.
func TestRollupRangeValidation(t *testing.T) {
	e := newEnv(t)
	// Degenerate custom windows: empty and inverted.
	e.wantStatus("alice", "/api/jobperf/timeseries?range=custom&from=2026-07-01T08:00:00Z&to=2026-07-01T08:00:00Z", 400)
	e.wantStatus("alice", "/api/jobperf/timeseries?range=custom&from=2026-07-01T09:00:00Z&to=2026-07-01T08:00:00Z", 400)
	// Sub-resolution requests: too many buckets at the explicit resolution.
	e.wantStatus("alice", "/api/jobperf/timeseries?range=90d&bucket=hour", 400)
	e.wantStatus("alice", "/api/jobperf/timeseries?range=7d&bucket=minute", 400)
	// Minute buckets exist for 48h; a 3-day-old window cannot be served
	// at minute resolution even though it is small.
	e.wantStatus("alice", "/api/jobperf/timeseries?range=custom&from=2026-06-28T08:00:00Z&to=2026-06-28T09:00:00Z&bucket=minute", 400)
	// Unknown bucket name, on the usage widgets too.
	e.wantStatus("alice", "/api/usage/cluster?bucket=fortnight", 400)
	// Bad top parameter on the accounts ranking.
	e.wantStatus("alice", "/api/usage/accounts?top=0", 400)
	e.wantStatus("alice", "/api/usage/accounts?top=abc", 400)
}

// TestRollupResolutionSelection pins auto selection: the finest resolution
// that fits the point budget and retention serves the window.
func TestRollupResolutionSelection(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)

	var ts TimeseriesResponse
	e.getJSON("alice", "/api/jobperf/timeseries?range=custom&from=2026-07-01T08:00:00Z&to=2026-07-01T11:00:00Z", &ts)
	if ts.Resolution != "minute" || ts.BucketSecs != 60 {
		t.Fatalf("3h window: resolution %q bucket %d, want minute", ts.Resolution, ts.BucketSecs)
	}
	e.getJSON("alice", "/api/jobperf/timeseries?range=24h", &ts)
	if ts.Resolution != "hour" {
		t.Fatalf("24h range: resolution %q, want hour", ts.Resolution)
	}

	var cu ClusterUsageResponse
	e.getJSON("alice", "/api/usage/cluster?range=7d", &cu)
	if cu.Resolution != "hour" {
		t.Fatalf("7d range: resolution %q, want hour", cu.Resolution)
	}
	e.getJSON("alice", "/api/usage/cluster?range=90d", &cu)
	if cu.Resolution != "day" {
		t.Fatalf("90d range: resolution %q, want day", cu.Resolution)
	}
	e.getJSON("alice", "/api/usage/cluster?range=1y", &cu)
	if cu.Resolution != "day" {
		t.Fatalf("1y range: resolution %q, want day", cu.Resolution)
	}
}

// TestRollupMetricsExposed asserts the store-health and query-path families
// land on /metrics.
func TestRollupMetricsExposed(t *testing.T) {
	e := newEnv(t)
	seedMixedHistory(e)
	e.wantStatus("alice", "/api/usage/cluster?range=7d", 200)
	e.wantStatus("alice", "/api/jobperf/timeseries?range=24h&bucket=hour", 200)
	status, body := e.get("staff", "/metrics")
	if status != 200 {
		t.Fatalf("/metrics status = %d", status)
	}
	text := string(body)
	for _, want := range []string{
		`ooddash_rollup_buckets{resolution="minute"}`,
		`ooddash_rollup_buckets{resolution="hour"}`,
		`ooddash_rollup_buckets{resolution="day"}`,
		`ooddash_rollup_compactions_total{level="hour"}`,
		`ooddash_rollup_compactions_total{level="day"}`,
		"ooddash_rollup_ingested_total",
		"ooddash_rollup_late_direct_total",
		"ooddash_rollup_evicted_buckets_total",
		`ooddash_rollup_queries_total{resolution="hour",selection="auto"}`,
		`ooddash_rollup_queries_total{resolution="hour",selection="explicit"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestRollupQueryTraceSpan asserts the rollup read shows up in the trace
// waterfall with its scope and resolution, attributed under the request.
func TestRollupQueryTraceSpan(t *testing.T) {
	e := tracedEnv(t)
	seedMixedHistory(e)
	e.wantStatus("alice", "/api/jobperf?range=24h", 200)

	var list TraceListResponse
	e.getJSON("staff", "/api/admin/traces", &list)
	var id string
	for _, sum := range list.Traces {
		if sum.Widget == "job_perf" {
			id = sum.ID
		}
	}
	if id == "" {
		t.Fatalf("no job_perf trace retained: %+v", list.Traces)
	}
	var tj trace.TraceJSON
	e.getJSON("staff", "/api/admin/traces/"+id, &tj)
	sp := findSpan(tj.Root, "rollup.query")
	if sp == nil {
		t.Fatalf("no rollup.query span in trace: %+v", tj)
	}
	if sp.Attrs["scope"] != "user" || sp.Attrs["resolution"] != "hour" {
		t.Errorf("rollup.query attrs = %v, want scope=user resolution=hour", sp.Attrs)
	}
}
