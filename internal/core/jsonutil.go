package core

import (
	"encoding/json"
	"errors"
	"log"
	"net/http"

	"ooddash/internal/auth"
)

// apiError is the JSON error envelope every API route uses, so the frontend
// can render a per-widget error state without breaking the page (§2.4
// Modularity: a failing widget must not take down the dashboard).
type apiError struct {
	Error string `json:"error"`
}

// writeJSON encodes v as the response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing to do but log.
		log.Printf("core: encoding response: %v", err)
	}
}

// writeError maps an error to the right status code and JSON envelope.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, auth.ErrUnauthenticated):
		status = http.StatusUnauthorized
	case errors.Is(err, auth.ErrUnknownUser):
		status = http.StatusForbidden
	case errors.Is(err, errForbidden):
		status = http.StatusForbidden
	case errors.Is(err, errNotFound):
		status = http.StatusNotFound
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// Sentinel errors the routes wrap for status mapping.
var (
	errForbidden  = errors.New("forbidden")
	errNotFound   = errors.New("not found")
	errBadRequest = errors.New("bad request")
)
