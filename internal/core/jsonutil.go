package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"log"
	"net/http"
	"sync"

	"ooddash/internal/auth"
)

// bufPool recycles encode scratch buffers across requests. Every JSON
// response used to allocate its encoder workspace per call; under a
// hit-heavy load the garbage is pure churn. Buffers that grew past the cap
// are dropped instead of pooled so one huge export cannot pin memory.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledBuf = 1 << 20

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// apiError is the JSON error envelope every API route uses, so the frontend
// can render a per-widget error state without breaking the page (§2.4
// Modularity: a failing widget must not take down the dashboard).
type apiError struct {
	Error string `json:"error"`
}

// writeJSON encodes v as the response body. Encoding goes through a pooled
// scratch buffer first, which both recycles the workspace and means an
// encode failure can still produce a clean 500 (nothing was written yet).
func writeJSON(w http.ResponseWriter, status int, v any) {
	buf := getBuf()
	defer putBuf(buf)
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		log.Printf("core: encoding response: %v", err)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`{"error":"encoding response"}` + "\n"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

// writeError maps an error to the right status code and JSON envelope.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, auth.ErrUnauthenticated):
		status = http.StatusUnauthorized
	case errors.Is(err, auth.ErrUnknownUser):
		status = http.StatusForbidden
	case errors.Is(err, errForbidden):
		status = http.StatusForbidden
	case errors.Is(err, errNotFound):
		status = http.StatusNotFound
	case errors.Is(err, errBadRequest):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// Sentinel errors the routes wrap for status mapping.
var (
	errForbidden  = errors.New("forbidden")
	errNotFound   = errors.New("not found")
	errBadRequest = errors.New("bad request")
)
