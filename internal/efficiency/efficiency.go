// Package efficiency computes the job efficiency metrics and user-facing
// guidance that distinguish the paper's dashboard from stock Open OnDemand:
// time/CPU/memory efficiency columns (§4.3), efficiency warnings for jobs
// that request far more than they use (§4.1), and plain-English explanations
// of Slurm's cryptic pending reasons (§4.1).
package efficiency

import (
	"fmt"
	"time"

	"ooddash/internal/efficiency/effmath"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// Metrics are the three efficiency percentages the My Jobs table can toggle
// on. Values are percentages in [0, 100+]; a negative value means the metric
// is not applicable (e.g. CPU efficiency of a job that never started).
type Metrics struct {
	TimePercent   float64 // elapsed / time limit
	CPUPercent    float64 // used CPU time / (elapsed x allocated CPUs)
	MemoryPercent float64 // peak RSS / requested memory
	// GPUPercent is mean GPU utilization — the §9 "GPU utilization metrics"
	// extension the paper lists as ongoing work, implemented here.
	GPUPercent float64
}

// NotApplicable marks a metric that cannot be computed.
const NotApplicable = effmath.NotApplicable

// Compute derives the metrics from one accounting row. Jobs that have not
// started report NotApplicable for every metric.
//
// The formulas live in effmath and take whole seconds, so the rollup
// pipeline — which aggregates the same metrics from integer-second wire
// fields — reproduces these values bit for bit. Every duration the CLI and
// REST backends carry is already second-granular, so the truncation here
// loses nothing.
func Compute(row *slurmcli.SacctRow) Metrics {
	m := Metrics{TimePercent: NotApplicable, CPUPercent: NotApplicable,
		MemoryPercent: NotApplicable, GPUPercent: NotApplicable}
	if row.StartTime.IsZero() || row.Elapsed <= 0 {
		return m
	}
	elapsedSec := int64(row.Elapsed / time.Second)
	if row.AllocTRES.GPUs > 0 && row.GPUUtilPercent >= 0 {
		m.GPUPercent = row.GPUUtilPercent
	}
	m.TimePercent = effmath.Time(elapsedSec, int64(row.TimeLimit/time.Second))
	m.CPUPercent = effmath.CPU(int64(row.TotalCPU/time.Second), elapsedSec, row.AllocCPUs)
	m.MemoryPercent = effmath.Mem(row.MaxRSSMB, row.ReqMemMB)
	return m
}

// Thresholds configure when Warnings fire. The zero value is not useful;
// use DefaultThresholds.
type Thresholds struct {
	// MinElapsed suppresses warnings for very short jobs, whose efficiency
	// numbers are noise.
	MinElapsed time.Duration
	// CPUPercent and MemoryPercent fire when usage is below the bound.
	CPUPercent    float64
	MemoryPercent float64
	// TimePercent fires when a finished job used less than this share of
	// its requested wall time.
	TimePercent float64
	// GPUPercent fires when mean GPU utilization is below the bound.
	GPUPercent float64
}

// DefaultThresholds matches the dashboard's production settings: warn on
// jobs longer than 5 minutes using under 25% of requested CPU or memory, or
// under 20% of their time limit.
func DefaultThresholds() Thresholds {
	return Thresholds{
		MinElapsed:    5 * time.Minute,
		CPUPercent:    25,
		MemoryPercent: 25,
		TimePercent:   20,
		GPUPercent:    30,
	}
}

// Warning is one efficiency alert shown next to a job.
type Warning struct {
	Kind    string // "cpu", "memory", or "time"
	Percent float64
	Message string
}

// Warnings returns the efficiency alerts for a job, if any. The messages
// follow the paper's framing: tell the user what fraction they used and
// that smaller requests shorten their own queue waits.
func Warnings(row *slurmcli.SacctRow, th Thresholds) []Warning {
	if row.StartTime.IsZero() || row.Elapsed < th.MinElapsed {
		return nil
	}
	m := Compute(row)
	var out []Warning
	if m.CPUPercent >= 0 && m.CPUPercent < th.CPUPercent {
		out = append(out, Warning{
			Kind:    "cpu",
			Percent: m.CPUPercent,
			Message: fmt.Sprintf(
				"This job used only %.0f%% of its %d requested CPUs. Requesting fewer CPUs will reduce your queue wait times and leave more resources for others.",
				m.CPUPercent, row.AllocCPUs),
		})
	}
	if m.MemoryPercent >= 0 && m.MemoryPercent < th.MemoryPercent {
		out = append(out, Warning{
			Kind:    "memory",
			Percent: m.MemoryPercent,
			Message: fmt.Sprintf(
				"This job used only %.0f%% of its %s requested memory. Requesting less memory will reduce your queue wait times and leave more resources for others.",
				m.MemoryPercent, slurmcli.FormatMem(row.ReqMemMB)),
		})
	}
	if m.GPUPercent >= 0 && th.GPUPercent > 0 && m.GPUPercent < th.GPUPercent {
		out = append(out, Warning{
			Kind:    "gpu",
			Percent: m.GPUPercent,
			Message: fmt.Sprintf(
				"This job kept its %d allocated GPU(s) only %.0f%% busy. Consider CPU-only resources or fewer GPUs.",
				row.AllocTRES.GPUs, m.GPUPercent),
		})
	}
	if row.State.Terminal() && row.State != slurm.StateTimeout &&
		m.TimePercent >= 0 && m.TimePercent < th.TimePercent {
		out = append(out, Warning{
			Kind:    "time",
			Percent: m.TimePercent,
			Message: fmt.Sprintf(
				"This job used only %.0f%% of its %s time limit. A shorter time limit helps the scheduler start your jobs sooner.",
				m.TimePercent, slurmcli.FormatDuration(row.TimeLimit)),
		})
	}
	return out
}

// reasonMessages maps Slurm pending reasons to the beginner-friendly
// explanations the My Jobs table shows (§4.1). The AssocGrpCpuLimit wording
// matches the paper's example verbatim.
var reasonMessages = map[slurm.PendingReason]string{
	slurm.ReasonNone:               "",
	slurm.ReasonPriority:           "It means other queued jobs currently have higher priority; your job will start as resources and priority allow.",
	slurm.ReasonResources:          "It means your job is next in line and is waiting for enough free resources to become available.",
	slurm.ReasonAssocGrpCpuLimit:   "It means this job's association has reached its aggregate group CPU limit.",
	slurm.ReasonAssocGrpGpuLimit:   "It means this job's association has reached its aggregate group GPU limit.",
	slurm.ReasonQOSMaxJobsPerUser:  "It means you already have the maximum number of running jobs this quality of service allows; the job will start when one of them finishes.",
	slurm.ReasonDependency:         "It means this job is waiting for another job it depends on to finish first.",
	slurm.ReasonBeginTime:          "It means this job requested a start time in the future and will not be considered until then.",
	slurm.ReasonPartitionDown:      "It means the partition this job was submitted to is currently unavailable, often during maintenance.",
	slurm.ReasonReqNodeNotAvail:    "It means one or more of the specific nodes this job requested are not currently available.",
	slurm.ReasonJobHeldUser:        "It means this job was placed on hold by you (or an administrator) and must be released before it can start.",
	slurm.ReasonPartitionTimeLimit: "It means this job's requested time limit exceeds what this partition allows.",
}

// ExplainReason returns the friendly explanation for a pending reason, or a
// generic fallback for reasons the table does not cover. The boolean
// reports whether a specific explanation existed.
func ExplainReason(r slurm.PendingReason) (string, bool) {
	if msg, ok := reasonMessages[r]; ok {
		return msg, true
	}
	return fmt.Sprintf("The scheduler reported reason %q; see the Slurm documentation for details.", r), false
}
