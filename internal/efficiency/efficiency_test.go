package efficiency

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// finishedRow builds a completed job row with the given utilization shape.
func finishedRow(elapsed, limit time.Duration, cpus int, cpuUtil float64, reqMemMB, rssMB int64) *slurmcli.SacctRow {
	start := time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)
	return &slurmcli.SacctRow{
		State:      slurm.StateCompleted,
		SubmitTime: start.Add(-time.Minute),
		StartTime:  start,
		EndTime:    start.Add(elapsed),
		Elapsed:    elapsed,
		TimeLimit:  limit,
		ReqCPUs:    cpus,
		AllocCPUs:  cpus,
		ReqMemMB:   reqMemMB,
		MaxRSSMB:   rssMB,
		TotalCPU:   time.Duration(float64(elapsed) * float64(cpus) * cpuUtil),
	}
}

func TestComputeBasic(t *testing.T) {
	// 1h of a 4h limit, 4 CPUs at 50%, 2 GiB of 8 GiB requested.
	row := finishedRow(time.Hour, 4*time.Hour, 4, 0.5, 8*1024, 2*1024)
	m := Compute(row)
	if m.TimePercent != 25 {
		t.Fatalf("time%% = %v, want 25", m.TimePercent)
	}
	if m.CPUPercent != 50 {
		t.Fatalf("cpu%% = %v, want 50", m.CPUPercent)
	}
	if m.MemoryPercent != 25 {
		t.Fatalf("mem%% = %v, want 25", m.MemoryPercent)
	}
}

func TestComputePendingJobNotApplicable(t *testing.T) {
	row := &slurmcli.SacctRow{State: slurm.StatePending, ReqCPUs: 4, ReqMemMB: 1024, TimeLimit: time.Hour}
	m := Compute(row)
	if m.TimePercent != NotApplicable || m.CPUPercent != NotApplicable || m.MemoryPercent != NotApplicable {
		t.Fatalf("pending metrics = %+v", m)
	}
}

func TestComputeBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		elapsed := time.Duration(1+r.Intn(86400)) * time.Second
		limit := elapsed + time.Duration(r.Intn(86400))*time.Second
		cpus := 1 + r.Intn(128)
		util := r.Float64()
		reqMem := int64(1 + r.Intn(1<<20))
		rss := int64(float64(reqMem) * r.Float64())
		m := Compute(finishedRow(elapsed, limit, cpus, util, reqMem, rss))
		// With utilization <= 1 and rss <= request, every metric is in [0, 100].
		return m.TimePercent >= 0 && m.TimePercent <= 100 &&
			m.CPUPercent >= 0 && m.CPUPercent <= 100.0001 &&
			m.MemoryPercent >= 0 && m.MemoryPercent <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWarningsFireOnWaste(t *testing.T) {
	// Jupyter-style job: 16 CPUs at 5%, 64 GiB requested with 2 GiB used,
	// 8h limit with 30 minutes used.
	row := finishedRow(30*time.Minute, 8*time.Hour, 16, 0.05, 64*1024, 2*1024)
	warns := Warnings(row, DefaultThresholds())
	kinds := make(map[string]Warning, len(warns))
	for _, w := range warns {
		kinds[w.Kind] = w
	}
	if len(kinds) != 3 {
		t.Fatalf("warnings = %+v, want cpu+memory+time", warns)
	}
	cpu := kinds["cpu"]
	if !strings.Contains(cpu.Message, "5% of its 16 requested CPUs") {
		t.Fatalf("cpu message = %q", cpu.Message)
	}
	if !strings.Contains(kinds["memory"].Message, "64G requested memory") {
		t.Fatalf("memory message = %q", kinds["memory"].Message)
	}
	if !strings.Contains(kinds["time"].Message, "time limit") {
		t.Fatalf("time message = %q", kinds["time"].Message)
	}
}

func TestWarningsQuietOnEfficientJob(t *testing.T) {
	row := finishedRow(3*time.Hour, 4*time.Hour, 8, 0.92, 16*1024, 14*1024)
	if warns := Warnings(row, DefaultThresholds()); len(warns) != 0 {
		t.Fatalf("efficient job warned: %+v", warns)
	}
}

func TestWarningsSuppressedForShortJobs(t *testing.T) {
	row := finishedRow(time.Minute, 8*time.Hour, 16, 0.01, 64*1024, 100)
	if warns := Warnings(row, DefaultThresholds()); len(warns) != 0 {
		t.Fatalf("short job warned: %+v", warns)
	}
}

func TestWarningsNoTimeWarningForTimeout(t *testing.T) {
	row := finishedRow(8*time.Hour, 8*time.Hour, 4, 0.1, 8*1024, 512)
	row.State = slurm.StateTimeout
	for _, w := range Warnings(row, DefaultThresholds()) {
		if w.Kind == "time" {
			t.Fatalf("timeout job got a time warning: %+v", w)
		}
	}
}

func TestWarningsRunningJobGetsNoTimeWarning(t *testing.T) {
	row := finishedRow(time.Hour, 96*time.Hour, 4, 0.9, 8*1024, 7*1024)
	row.State = slurm.StateRunning
	row.EndTime = time.Time{}
	for _, w := range Warnings(row, DefaultThresholds()) {
		if w.Kind == "time" {
			t.Fatalf("running job got a time warning: %+v", w)
		}
	}
}

func TestExplainReasonPaperExample(t *testing.T) {
	msg, ok := ExplainReason(slurm.ReasonAssocGrpCpuLimit)
	if !ok {
		t.Fatal("AssocGrpCpuLimit should have a specific message")
	}
	want := "It means this job's association has reached its aggregate group CPU limit."
	if msg != want {
		t.Fatalf("message = %q, want paper's wording %q", msg, want)
	}
}

func TestExplainReasonCoversAllSchedulerReasons(t *testing.T) {
	reasons := []slurm.PendingReason{
		slurm.ReasonPriority, slurm.ReasonResources, slurm.ReasonAssocGrpCpuLimit,
		slurm.ReasonQOSMaxJobsPerUser, slurm.ReasonDependency, slurm.ReasonBeginTime,
		slurm.ReasonPartitionDown, slurm.ReasonJobHeldUser,
	}
	for _, r := range reasons {
		if msg, ok := ExplainReason(r); !ok || msg == "" {
			t.Errorf("reason %s lacks a friendly message", r)
		}
	}
}

func TestExplainReasonFallback(t *testing.T) {
	msg, ok := ExplainReason(slurm.PendingReason("SomeNewReason"))
	if ok {
		t.Fatal("unknown reason claimed a specific message")
	}
	if !strings.Contains(msg, "SomeNewReason") {
		t.Fatalf("fallback = %q", msg)
	}
}
