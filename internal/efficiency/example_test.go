package efficiency_test

import (
	"fmt"
	"time"

	"ooddash/internal/efficiency"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// Compute derives the My Jobs efficiency columns from one accounting row:
// a job that used half of each requested resource.
func ExampleCompute() {
	start := time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)
	row := &slurmcli.SacctRow{
		State:     slurm.StateCompleted,
		StartTime: start, EndTime: start.Add(time.Hour),
		Elapsed: time.Hour, TimeLimit: 2 * time.Hour,
		AllocCPUs: 4, TotalCPU: 2 * time.Hour,
		ReqMemMB: 8192, MaxRSSMB: 4096,
		GPUUtilPercent: -1,
	}
	m := efficiency.Compute(row)
	fmt.Printf("time %.0f%% cpu %.0f%% memory %.0f%%\n",
		m.TimePercent, m.CPUPercent, m.MemoryPercent)
	// Output: time 50% cpu 50% memory 50%
}

// ExplainReason turns Slurm's cryptic pending reasons into the friendly
// messages the My Jobs table shows (§4.1 of the paper).
func ExampleExplainReason() {
	msg, _ := efficiency.ExplainReason(slurm.ReasonAssocGrpCpuLimit)
	fmt.Println(msg)
	// Output: It means this job's association has reached its aggregate group CPU limit.
}
