// Package effmath holds the scalar efficiency formulas shared by the
// per-row analyzer (internal/efficiency) and the rollup pipeline
// (internal/slurm). Both must produce bit-identical float64 results for the
// golden equivalence test — a rollup-backed response byte-equal to the
// raw-recompute one — so the formulas live here once and every caller feeds
// them the same integer inputs.
//
// All inputs are whole seconds (or MB / counts), never time.Duration: the
// nanosecond form float64(elapsed)*float64(cpus) can exceed 2^53 and round
// differently than the seconds form, which would break byte equivalence
// between a path that computed from Durations and one that computed from
// the wire's integer seconds.
package effmath

import "math"

// NotApplicable marks a metric that could not be measured for a job (no
// GPU, no limit, job never started). Every formula returns it instead of a
// garbage ratio.
const NotApplicable = -1

// Time is elapsed as a percentage of the requested time limit.
func Time(elapsedSec, limitSec int64) float64 {
	if limitSec <= 0 {
		return NotApplicable
	}
	return 100 * float64(elapsedSec) / float64(limitSec)
}

// CPU is consumed CPU time as a percentage of the allocated CPU-seconds.
func CPU(totalCPUSec, elapsedSec int64, cpus int) float64 {
	if cpus <= 0 || elapsedSec <= 0 {
		return NotApplicable
	}
	return 100 * float64(totalCPUSec) / (float64(elapsedSec) * float64(cpus))
}

// Mem is peak RSS as a percentage of requested memory. A negative maxRSSMB
// means RSS was never sampled (the job never started).
func Mem(maxRSSMB, reqMemMB int64) float64 {
	if reqMemMB <= 0 || maxRSSMB < 0 {
		return NotApplicable
	}
	return 100 * float64(maxRSSMB) / float64(reqMemMB)
}

// GPUPercent converts a 0..1 utilization fraction to the one-decimal
// percentage the CLI prints (gres/gpuutil=%.1f) and the REST wire carries,
// so every backend reports the identical rounded value.
func GPUPercent(util float64) float64 {
	return math.Round(util*1000) / 10
}

// Micro converts a percentage to the fixed-point micro-percent integer the
// rollup store sums (order-independent integer addition; the float average
// is recovered only at response-build time). Percentages here are exact
// ratios well under 2^43, so the round-trip is lossless at six decimals.
func Micro(pct float64) int64 {
	return int64(math.Round(pct * 1e6))
}

// FromMicro recovers the mean percentage from a micro-percent sum and its
// sample count. n == 0 yields NotApplicable.
func FromMicro(sumMicro, n int64) float64 {
	if n == 0 {
		return NotApplicable
	}
	return float64(sumMicro) / float64(n) / 1e6
}
