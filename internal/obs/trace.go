package obs

import (
	"context"
	"crypto/rand"
	"sync/atomic"
)

// Trace IDs give every dashboard request a correlation handle: the HTTP
// middleware mints one (or adopts a well-formed inbound one), returns it in
// the X-OODDash-Trace response header, stamps it on the access log line, and
// propagates it via context through the cache, resilience, and command
// layers so an upstream failure can be tied back to the exact request that
// observed it.

type traceKey struct{}

// traceFallback numbers trace IDs when the system's entropy source fails —
// still unique within the process, which is all correlation needs.
var traceFallback atomic.Uint64

// NewTraceID returns a 16-hex-character random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		n := traceFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	// Encode into a stack buffer: hex.EncodeToString would allocate the
	// intermediate byte slice and the string; this allocates the string only.
	const digits = "0123456789abcdef"
	var dst [16]byte
	for i, v := range b {
		dst[i*2] = digits[v>>4]
		dst[i*2+1] = digits[v&0xf]
	}
	return string(dst[:])
}

// WithTrace returns a context carrying the trace ID.
func WithTrace(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceID returns the trace ID carried by ctx, or "" when none is set.
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceKey{}).(string)
	return id
}

// ValidTraceID reports whether an inbound trace ID is safe to adopt: 1–64
// characters of [0-9a-zA-Z_-], so header values cannot smuggle log or
// exposition syntax.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}
