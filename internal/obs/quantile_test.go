package obs

import (
	"sync/atomic"
	"testing"
)

// TestQuantileZeroBoundsRegression is the regression test for the
// zero-bound panic: a histogram with no finite bounds (only the implicit
// +Inf bucket) used to index bounds[len(bounds)-1] with an empty slice.
// The public constructor substitutes DefLatencyBuckets for empty bounds,
// so the degenerate shape is built directly here.
func TestQuantileZeroBoundsRegression(t *testing.T) {
	h := &Histogram{counts: make([]atomic.Int64, 1)}
	h.Observe(5)
	h.Observe(0.25)
	for _, q := range []float64{-1, 0, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("zero-bound Quantile(%v) = %v, want 0", q, got)
		}
	}
	// And the constructor path stays safe: nil bounds means the defaults,
	// never an empty bucket layout.
	hd := NewHistogram(nil)
	hd.Observe(0.2)
	if got := hd.Quantile(0.5); got <= 0 {
		t.Errorf("NewHistogram(nil).Quantile(0.5) = %v, want > 0", got)
	}
}

// TestQuantileEdgeCases table-tests the interpolation corners: ranks
// landing exactly on a bucket boundary, all mass in the +Inf bucket, and
// out-of-range q clamping.
func TestQuantileEdgeCases(t *testing.T) {
	build := func(perBucket map[float64]int) *Histogram {
		h := NewHistogram([]float64{1, 2, 3})
		for v, n := range perBucket {
			for i := 0; i < n; i++ {
				h.Observe(v)
			}
		}
		return h
	}

	tests := []struct {
		name string
		obs  map[float64]int
		q    float64
		want float64
	}{
		// 5 in (0,1], 5 in (1,2]: rank(0.5) = 5 lands exactly on the
		// first bucket's cumulative edge -> interpolates to the bound.
		{"rank on bucket boundary", map[float64]int{0.5: 5, 1.5: 5}, 0.5, 1},
		// rank(1.0) = total also lands exactly on the last occupied
		// bucket's edge -> its upper bound.
		{"rank on top boundary", map[float64]int{0.5: 5, 1.5: 5}, 1, 2},
		// Everything beyond the last finite bound: the estimate floors at
		// that bound, as with PromQL's histogram_quantile.
		{"all mass in +Inf", map[float64]int{100: 10}, 0.5, 3},
		{"all mass in +Inf, q=1", map[float64]int{100: 10}, 1, 3},
		// q outside [0,1] clamps.
		{"q below zero clamps", map[float64]int{0.5: 4}, -0.5, 0},
		{"q above one clamps", map[float64]int{0.5: 4}, 1.5, 1},
		// Interpolation inside a bucket, for contrast.
		{"midpoint interpolation", map[float64]int{1.5: 4}, 0.5, 1.5},
	}
	for _, tc := range tests {
		h := build(tc.obs)
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}

	// No observations at all: always 0, any q.
	empty := NewHistogram([]float64{1, 2, 3})
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}
