// Package obstest holds the Prometheus text-exposition validator shared by
// every registry's full-document test (the obs package itself, core's
// /metrics, the fleet registry's /metrics/fleet). It imports nothing from
// the repo, so any package — including obs's own tests — can use it.
package obstest

import (
	"strconv"
	"strings"
	"testing"
)

// Validate checks the document against the Prometheus text format rules a
// scraper enforces: one HELP and one TYPE per family, no duplicate family
// declarations, every sample belonging to the family most recently
// declared, and histogram series that are internally consistent
// (cumulative buckets ending in +Inf, with _count matching the +Inf
// bucket). OpenMetrics exemplar suffixes (` # {trace_id="..."} v ts`) are
// tolerated on any sample line.
func Validate(t testing.TB, text string) {
	t.Helper()
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	current := ""
	// bucketLast tracks cumulative bucket counts per histogram series
	// (family + labels minus le); counts records the series' _count samples.
	bucketLast := map[string]float64{}
	bucketInf := map[string]float64{}
	counts := map[string]float64{}

	stripLe := func(labels string) string {
		parts := strings.Split(labels, ",")
		kept := parts[:0]
		for _, p := range parts {
			if !strings.HasPrefix(p, "le=") {
				kept = append(kept, p)
			}
		}
		return strings.Join(kept, ",")
	}

	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			if helpSeen[name] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			name, kind := f[2], f[3]
			if _, dup := typeSeen[name]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, name)
			}
			if !helpSeen[name] {
				t.Errorf("line %d: TYPE for %s without preceding HELP", ln+1, name)
			}
			typeSeen[name] = kind
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// Strip any OpenMetrics exemplar suffix so label and value parsing
		// see only the sample itself.
		if i := strings.Index(line, " # "); i >= 0 {
			line = line[:i]
		}
		// Sample line: name{labels} value  |  name value
		name := line
		labels := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
			j := strings.LastIndexByte(line, '}')
			if j < i {
				t.Errorf("line %d: unterminated label set: %s", ln+1, line)
				continue
			}
			labels = line[i+1 : j]
		} else if i := strings.IndexByte(line, ' '); i >= 0 {
			name = line[:i]
		}
		val, err := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
		if err != nil {
			t.Errorf("line %d: unparsable sample value: %s", ln+1, line)
			continue
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if typeSeen[current] == "histogram" && strings.HasSuffix(name, suf) &&
				strings.TrimSuffix(name, suf) == current {
				base = current
			}
		}
		if base != current {
			t.Errorf("line %d: sample %s outside its family block (current %s)", ln+1, name, current)
			continue
		}
		if typeSeen[current] == "histogram" {
			series := current + "|" + stripLe(labels)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if val+1e-9 < bucketLast[series] {
					t.Errorf("line %d: non-cumulative bucket for %s: %g < %g",
						ln+1, series, val, bucketLast[series])
				}
				bucketLast[series] = val
				if strings.Contains(labels, `le="+Inf"`) {
					bucketInf[series] = val
				}
			case strings.HasSuffix(name, "_count"):
				counts[series] = val
			}
		}
	}
	for name := range helpSeen {
		if _, ok := typeSeen[name]; !ok {
			t.Errorf("HELP without TYPE for %s", name)
		}
	}
	for series, c := range counts {
		inf, ok := bucketInf[series]
		if !ok {
			t.Errorf("histogram series %s has no +Inf bucket", series)
			continue
		}
		if c != inf {
			t.Errorf("histogram series %s: _count %g != +Inf bucket %g", series, c, inf)
		}
	}
}
