package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"ooddash/internal/obs/obstest"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Re-registering the same name returns the same metric.
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatalf("re-registration returned a new counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestCounterVec(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "requests", "widget", "status")
	v.With("storage", "200").Add(3)
	v.With("storage", "503").Inc()
	if got := v.Value("storage", "200"); got != 3 {
		t.Fatalf("value = %d, want 3", got)
	}
	if got := v.Value("never", "seen"); got != 0 {
		t.Fatalf("missing series value = %d, want 0", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`reqs_total{widget="storage",status="200"} 3`,
		`reqs_total{widget="storage",status="503"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 90 fast observations, 10 slow: p50 lands in the first bucket, p99 in
	// the last.
	for i := 0; i < 90; i++ {
		h.Observe(0.005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-(90*0.005+10*0.5)) > 1e-9 {
		t.Fatalf("sum = %v", got)
	}
	if p50 := h.Quantile(0.50); p50 <= 0 || p50 > 0.01 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.01]", p50)
	}
	if p99 := h.Quantile(0.99); p99 <= 0.1 || p99 > 1 {
		t.Fatalf("p99 = %v, want within last bucket (0.1, 1]", p99)
	}
	// An observation beyond every bound lands in +Inf and quantile estimates
	// floor at the last finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("q1 = %v, want 1 (last finite bound)", got)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat_seconds", "latency", []float64{0.1, 1}, "widget")
	v.With("jobs").Observe(0.05)
	v.With("jobs").Observe(0.5)
	v.With("jobs").Observe(5) // +Inf bucket
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP lat_seconds latency\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{widget="jobs",le="0.1"} 1`,
		`lat_seconds_bucket{widget="jobs",le="1"} 2`,
		`lat_seconds_bucket{widget="jobs",le="+Inf"} 3`,
		`lat_seconds_count{widget="jobs"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, `lat_seconds_sum{widget="jobs"} 5.55`) {
		t.Fatalf("exposition missing sum:\n%s", out)
	}
}

// TestLabelEscaping is the regression test for the %q bug: the old
// hand-rolled /metrics renderer used Go's %q, which escapes non-ASCII label
// values as \u sequences — invalid in the Prometheus text format. The
// exposition escaper must touch only backslash, double quote, and newline,
// and pass UTF-8 through raw.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("rpcs_total", "rpcs", "daemon")
	v.With("slurmctld-β").Inc()
	v.With("na\\me\"with\nall").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `rpcs_total{daemon="slurmctld-β"} 1`) {
		t.Fatalf("non-ASCII label was mangled:\n%s", out)
	}
	if strings.Contains(out, `\u`) {
		t.Fatalf("exposition contains invalid \\u escapes:\n%s", out)
	}
	if !strings.Contains(out, `rpcs_total{daemon="na\\me\"with\nall"} 1`) {
		t.Fatalf("exposition escapes wrong:\n%s", out)
	}
	if got, want := EscapeLabelValue("a\\b\"c\nd"), `a\\b\"c\nd`; got != want {
		t.Fatalf("EscapeLabelValue = %q, want %q", got, want)
	}
}

func TestCollectorAndGaugeFunc(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("entries", "live entries", func() float64 { return 7 })
	r.CollectorFunc("breaker_state", KindGauge, "breaker state", func() []Sample {
		return []Sample{
			{Labels: []Label{{Name: "source", Value: "slurmctld"}}, Value: 2},
			{Labels: []Label{{Name: "source", Value: "news"}}, Value: 0},
		}
	})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"entries 7\n",
		`breaker_state{source="slurmctld"} 2`,
		`breaker_state{source="news"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestExpositionValidity parses a full render and asserts the document
// invariants a Prometheus scraper depends on: every family has exactly one
// HELP and one TYPE line, no family appears twice, and sample names belong
// to their family.
func TestExpositionValidity(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Inc()
	r.Gauge("b", "b").Set(1)
	r.HistogramVec("c_seconds", "c", nil, "w").With("x").Observe(0.2)
	r.CounterVec("d_total", "d", "s").With("y").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	obstest.Validate(t, sb.String())
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "n")
	h := r.HistogramVec("h_seconds", "h", nil, "w")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.With("x").Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter = %d, want 8000", c.Value())
	}
	if got := h.With("x").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("trace IDs collide: %s", a)
	}
	if len(a) != 16 || !ValidTraceID(a) {
		t.Fatalf("bad trace ID %q", a)
	}
	ctx := WithTrace(context.Background(), a)
	if got := TraceID(ctx); got != a {
		t.Fatalf("TraceID = %q, want %q", got, a)
	}
	if TraceID(context.Background()) != "" {
		t.Fatalf("empty context should carry no trace")
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space", "quo\"te", "new\nline"} {
		if ValidTraceID(bad) {
			t.Fatalf("ValidTraceID(%q) = true, want false", bad)
		}
	}
	if !ValidTraceID("Abc-123_xyz") {
		t.Fatalf("ValidTraceID rejected a good ID")
	}
}
