// Package obs is the dashboard's observability substrate: atomic counters,
// gauges, fixed-bucket latency histograms with quantile estimation, and a
// registry that renders the whole set as valid Prometheus text exposition.
//
// The paper's caching argument (§2.4) is quantitative — cache layers exist
// to cut slurmctld RPC load and keep widget latency flat — so the dashboard
// needs first-class latency and attribution data before any of that can be
// measured. This package is dependency-free (stdlib only) and safe for
// concurrent use; a center's existing Prometheus can scrape the output of
// Registry.WritePrometheus unchanged.
//
// Metric families are registered once by name; re-registering the same name
// with the same kind returns the existing family, so package wiring is
// idempotent. Label values are escaped per the exposition format's three
// escapes (backslash, double quote, newline) — and only those three: UTF-8
// label values pass through as raw UTF-8, which is what the format requires
// (Go's %q-style \u escapes are invalid there).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a Prometheus metric family type.
type Kind int

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the exposition TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// Sample is one rendered series of a collector-backed family: its labels
// and current value, optionally annotated with an exemplar linking the
// series back to a trace (rendered OpenMetrics-style after the value).
type Sample struct {
	Labels   []Label
	Value    float64
	Exemplar *Exemplar
}

// Exemplar links a rendered sample to the trace that produced a
// representative observation.
type Exemplar struct {
	TraceID string
	Value   float64
	Ts      float64
}

// --- scalar metrics ---------------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay a valid counter).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// --- histogram --------------------------------------------------------------

// DefLatencyBuckets are the default request-latency bucket upper bounds in
// seconds, spanning 0.5 ms to 10 s; +Inf is implicit. They cover both the
// sub-millisecond cache-hit path and a slurmctld that is struggling.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with an atomic count per bucket.
// Quantiles are estimated by linear interpolation within the bucket that
// holds the target rank — the same estimate Prometheus's histogram_quantile
// computes from the exposition.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow bucket
	count  atomic.Int64
	sum    Gauge
	ex     atomic.Pointer[exemplar]
}

// exemplar links one observed value back to the trace that produced it, in
// the OpenMetrics sense: rendered as ` # {trace_id="..."} value ts` on the
// bucket line whose range contains the value.
type exemplar struct {
	traceID string
	value   float64
	ts      float64
}

// NewHistogram returns a histogram over the given ascending bucket upper
// bounds (nil means DefLatencyBuckets).
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	sort.Float64s(cp)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// SetExemplar links the histogram's most recent interesting observation to
// a trace ID. The exposition renders it on the matching bucket line; each
// call replaces the previous exemplar (last-write-wins, lock-free).
func (h *Histogram) SetExemplar(traceID string, value, ts float64) {
	h.ex.Store(&exemplar{traceID: traceID, value: value, ts: ts})
}

// Exemplar returns the current exemplar's trace ID, value, and timestamp
// (ok=false when none has been set).
func (h *Histogram) Exemplar() (traceID string, value, ts float64, ok bool) {
	e := h.ex.Load()
	if e == nil {
		return "", 0, 0, false
	}
	return e.traceID, e.value, e.ts, true
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the target bucket. With no observations it returns 0; ranks that
// land in the +Inf bucket return the highest finite bound (the estimate is
// a floor, as with PromQL's histogram_quantile).
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		// A zero-bound histogram has only the +Inf bucket: no finite bound
		// exists to floor the estimate at, so the estimate is 0.
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if cum+n < rank || n == 0 {
			cum += n
			continue
		}
		if i == len(h.bounds) {
			return h.bounds[len(h.bounds)-1] // +Inf bucket: floor at last bound
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		return lo + (h.bounds[i]-lo)*(rank-cum)/n
	}
	return h.bounds[len(h.bounds)-1]
}

// snapshot returns cumulative bucket counts aligned with bounds + the +Inf
// total, read without tearing the rendered invariants: buckets are summed
// low-to-high so the cumulative sequence is always non-decreasing and the
// +Inf bucket always equals the rendered _count.
func (h *Histogram) snapshot() (cum []int64, count int64, sum float64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, running, h.Sum()
}

// --- vectors ----------------------------------------------------------------

// vecKey joins label values unambiguously (values may contain commas).
func vecKey(values []string) string {
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(v)
	}
	return b.String()
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*Counter
	keys     map[string][]string
}

// With returns the counter for the given label values, creating it on first
// use. It panics on arity mismatch — that is a programming error.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: CounterVec.With: got %d label values, want %d (%v)", len(values), len(v.labels), v.labels))
	}
	key := vecKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
		cp := make([]string, len(values))
		copy(cp, values)
		v.keys[key] = cp
	}
	return c
}

// Value returns the current count for the given label values (0 when the
// series does not exist yet).
func (v *CounterVec) Value(values ...string) int64 {
	key := vecKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c.Value()
	}
	return 0
}

// sortedKeys returns child keys in deterministic render order.
func sortedChildKeys[T any](mu *sync.Mutex, children map[string]T) []string {
	mu.Lock()
	defer mu.Unlock()
	keys := make([]string, 0, len(children))
	for k := range children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct {
	labels   []string
	bounds   []float64
	mu       sync.Mutex
	children map[string]*Histogram
	keys     map[string][]string
}

// With returns the histogram for the given label values, creating it on
// first use. It panics on arity mismatch.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: HistogramVec.With: got %d label values, want %d (%v)", len(values), len(v.labels), v.labels))
	}
	key := vecKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.children[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.children[key] = h
		cp := make([]string, len(values))
		copy(cp, values)
		v.keys[key] = cp
	}
	return h
}

// --- registry ---------------------------------------------------------------

type family struct {
	name string
	kind Kind
	help string

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	cvec    *CounterVec
	hvec    *HistogramVec
	collect func() []Sample
}

// Registry holds metric families in registration order and renders them as
// one Prometheus exposition document.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]*family
	families []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns the existing family for name, enforcing kind agreement, or
// registers the one built by mk.
func (r *Registry) lookup(name string, kind Kind, mk func() *family) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("obs: %s already registered as %s, not %s", name, f.kind, kind))
		}
		return f
	}
	f := mk()
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or returns) the named counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, KindCounter, func() *family {
		return &family{name: name, kind: KindCounter, help: help, counter: &Counter{}}
	})
	if f.counter == nil {
		panic(fmt.Sprintf("obs: %s registered with labels; use CounterVec", name))
	}
	return f.counter
}

// CounterVec registers (or returns) the named counter family with labels.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.lookup(name, KindCounter, func() *family {
		return &family{name: name, kind: KindCounter, help: help, cvec: &CounterVec{
			labels:   labels,
			children: make(map[string]*Counter),
			keys:     make(map[string][]string),
		}}
	})
	if f.cvec == nil {
		panic(fmt.Sprintf("obs: %s registered without labels; use Counter", name))
	}
	return f.cvec
}

// Gauge registers (or returns) the named gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, KindGauge, func() *family {
		return &family{name: name, kind: KindGauge, help: help, gauge: &Gauge{}}
	})
	if f.gauge == nil {
		panic(fmt.Sprintf("obs: %s registered as a callback gauge", name))
	}
	return f.gauge
}

// GaugeFunc registers a gauge whose value is read at render time — for
// bridging quantities another subsystem already tracks (cache entry counts).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.lookup(name, KindGauge, func() *family {
		return &family{name: name, kind: KindGauge, help: help, gaugeFn: fn}
	})
}

// CollectorFunc registers a family whose labelled samples are produced at
// render time — for bridging per-source stats kept elsewhere (breaker
// snapshots, sdiag RPC counts). The callback must return a deterministic
// order if the exposition should be stable.
func (r *Registry) CollectorFunc(name string, kind Kind, help string, fn func() []Sample) {
	r.lookup(name, kind, func() *family {
		return &family{name: name, kind: kind, help: help, collect: fn}
	})
}

// HistogramVec registers (or returns) the named histogram family. nil
// bounds means DefLatencyBuckets.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	f := r.lookup(name, KindHistogram, func() *family {
		b := bounds
		if len(b) == 0 {
			b = DefLatencyBuckets
		}
		cp := make([]float64, len(b))
		copy(cp, b)
		sort.Float64s(cp)
		return &family{name: name, kind: KindHistogram, help: help, hvec: &HistogramVec{
			labels:   labels,
			bounds:   cp,
			children: make(map[string]*Histogram),
			keys:     make(map[string][]string),
		}}
	})
	return f.hvec
}

// --- exposition rendering ---------------------------------------------------

// labelEscaper applies the exposition format's label-value escapes — and
// only those. Non-ASCII runes must pass through as raw UTF-8; Go's %q would
// emit \u escapes that Prometheus rejects.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// helpEscaper applies the HELP text escapes (backslash and newline).
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// EscapeLabelValue escapes s for use inside label="..." in the exposition
// format.
func EscapeLabelValue(s string) string { return labelEscaper.Replace(s) }

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"}; extra is appended last (histograms'
// le label). Empty label sets render nothing.
func writeLabels(b *strings.Builder, labels []Label) {
	if len(labels) == 0 {
		return
	}
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

func sampleLine(name string, labels []Label, v float64) string {
	var b strings.Builder
	b.WriteString(name)
	writeLabels(&b, labels)
	b.WriteByte(' ')
	b.WriteString(formatValue(v))
	b.WriteByte('\n')
	return b.String()
}

func pairLabels(names, values []string) []Label {
	out := make([]Label, len(names))
	for i := range names {
		out[i] = Label{Name: names[i], Value: values[i]}
	}
	return out
}

// WritePrometheus renders every family, in registration order, as a valid
// Prometheus text exposition document: one HELP and one TYPE line per
// family, then its samples (histograms as _bucket/_sum/_count series).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, helpEscaper.Replace(f.help), f.name, f.kind); err != nil {
			return err
		}
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	switch {
	case f.counter != nil:
		_, err := io.WriteString(w, sampleLine(f.name, nil, float64(f.counter.Value())))
		return err
	case f.gauge != nil:
		_, err := io.WriteString(w, sampleLine(f.name, nil, f.gauge.Value()))
		return err
	case f.gaugeFn != nil:
		_, err := io.WriteString(w, sampleLine(f.name, nil, f.gaugeFn()))
		return err
	case f.collect != nil:
		for _, s := range f.collect() {
			line := sampleLine(f.name, s.Labels, s.Value)
			if s.Exemplar != nil {
				line = withExemplar(line, &exemplar{
					traceID: s.Exemplar.TraceID, value: s.Exemplar.Value, ts: s.Exemplar.Ts})
			}
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
		return nil
	case f.cvec != nil:
		v := f.cvec
		for _, key := range sortedChildKeys(&v.mu, v.children) {
			v.mu.Lock()
			c, values := v.children[key], v.keys[key]
			v.mu.Unlock()
			if _, err := io.WriteString(w,
				sampleLine(f.name, pairLabels(v.labels, values), float64(c.Value()))); err != nil {
				return err
			}
		}
		return nil
	case f.hvec != nil:
		return f.writeHistograms(w)
	}
	return nil
}

func (f *family) writeHistograms(w io.Writer) error {
	v := f.hvec
	for _, key := range sortedChildKeys(&v.mu, v.children) {
		v.mu.Lock()
		h, values := v.children[key], v.keys[key]
		v.mu.Unlock()
		base := pairLabels(v.labels, values)
		cum, count, sum := h.snapshot()
		// The exemplar attaches to the bucket line whose range contains its
		// value (the +Inf line when past every bound).
		ex := h.ex.Load()
		exIdx := -1
		if ex != nil {
			exIdx = sort.SearchFloat64s(h.bounds, ex.value)
		}
		for i, bound := range h.bounds {
			labels := append(append([]Label{}, base...), Label{Name: "le", Value: formatValue(bound)})
			line := sampleLine(f.name+"_bucket", labels, float64(cum[i]))
			if i == exIdx {
				line = withExemplar(line, ex)
			}
			if _, err := io.WriteString(w, line); err != nil {
				return err
			}
		}
		labels := append(append([]Label{}, base...), Label{Name: "le", Value: "+Inf"})
		line := sampleLine(f.name+"_bucket", labels, float64(count))
		if exIdx == len(h.bounds) {
			line = withExemplar(line, ex)
		}
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
		if _, err := io.WriteString(w, sampleLine(f.name+"_sum", base, sum)); err != nil {
			return err
		}
		if _, err := io.WriteString(w, sampleLine(f.name+"_count", base, float64(count))); err != nil {
			return err
		}
	}
	return nil
}

// withExemplar appends an OpenMetrics exemplar to a rendered sample line:
// `name_bucket{le="x"} 3 # {trace_id="..."} 0.042 1718000000.5`.
func withExemplar(line string, ex *exemplar) string {
	return line[:len(line)-1] + ` # {trace_id="` + labelEscaper.Replace(ex.traceID) + `"} ` +
		formatValue(ex.value) + " " + formatValue(ex.ts) + "\n"
}
