// Package auth models the user identity and privacy layer of the dashboard.
// Open OnDemand runs behind the institution's web authentication and hands
// the backend an authenticated username per request; this package supplies
// that: a user directory (users and their groups/accounts) plus request
// identity resolution and the visibility checks every dashboard route
// applies (§2.4 Privacy).
package auth

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// UserHeader is the header carrying the authenticated username, as set by
// the fronting auth proxy (mod_auth_openidc or similar in real OOD).
const UserHeader = "X-Remote-User"

// User is one cluster user and the accounts (groups/allocations) they
// belong to.
type User struct {
	Name     string
	FullName string
	Accounts []string
	// Admin marks center staff: they may view any job and the admin-only
	// accounting pages — the paper's §9 "permission-based job accounting"
	// feature, implemented here as an extension.
	Admin bool
}

// MemberOf reports whether the user belongs to the named account.
func (u *User) MemberOf(account string) bool {
	for _, a := range u.Accounts {
		if a == account {
			return true
		}
	}
	return false
}

// Directory is a thread-safe user registry.
type Directory struct {
	mu    sync.RWMutex
	users map[string]*User
}

// NewDirectory returns an empty user registry.
func NewDirectory() *Directory {
	return &Directory{users: make(map[string]*User)}
}

// AddUser registers (or replaces) a user.
func (d *Directory) AddUser(u User) {
	d.mu.Lock()
	defer d.mu.Unlock()
	cp := u
	cp.Accounts = append([]string(nil), u.Accounts...)
	sort.Strings(cp.Accounts)
	d.users[u.Name] = &cp
}

// Lookup returns the user record for name.
func (d *Directory) Lookup(name string) (*User, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	u, ok := d.users[name]
	if !ok {
		return nil, false
	}
	cp := *u
	cp.Accounts = append([]string(nil), u.Accounts...)
	return &cp, true
}

// Users returns all usernames, sorted.
func (d *Directory) Users() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.users))
	for n := range d.users {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ErrUnauthenticated is returned when a request carries no identity.
var ErrUnauthenticated = fmt.Errorf("auth: request is not authenticated")

// ErrUnknownUser is returned when the authenticated name has no record.
var ErrUnknownUser = fmt.Errorf("auth: unknown user")

// ErrMalformedUser is returned when the identity header contains control
// characters — never a legitimate username, and a smuggling vector if it
// were echoed into downstream headers or logs.
var ErrMalformedUser = fmt.Errorf("auth: malformed user header")

// FromRequest resolves the authenticated user from the request headers.
// Fronting proxies (mod_auth_openidc and friends) are sloppy about header
// values, so surrounding whitespace is trimmed before lookup; embedded
// control characters are rejected outright. Case is preserved — usernames
// are case-sensitive and folding "Alice" onto "alice" would conflate two
// distinct principals.
func (d *Directory) FromRequest(r *http.Request) (*User, error) {
	name := strings.TrimSpace(r.Header.Get(UserHeader))
	if name == "" {
		return nil, ErrUnauthenticated
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f {
			return nil, fmt.Errorf("%w: control character at byte %d", ErrMalformedUser, i)
		}
	}
	u, ok := d.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownUser, name)
	}
	return u, nil
}

// CanViewJob reports whether viewer may see a job owned by owner under the
// given account: their own jobs, or jobs billed to an account they belong
// to (the paper's My Jobs scope, §2.4).
func CanViewJob(viewer *User, owner, account string) bool {
	if viewer == nil {
		return false
	}
	if viewer.Admin || owner == viewer.Name {
		return true
	}
	return viewer.MemberOf(account)
}

// CanViewLogs reports whether viewer may read a job's output/error logs.
// Stricter than CanViewJob: logs inherit filesystem permissions, so only
// the submitting user can read them (§7).
func CanViewLogs(viewer *User, owner string) bool {
	return viewer != nil && viewer.Name == owner
}
