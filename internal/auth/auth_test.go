package auth

import (
	"errors"
	"net/http/httptest"
	"testing"
)

func testDirectory() *Directory {
	d := NewDirectory()
	d.AddUser(User{Name: "alice", FullName: "Alice Li", Accounts: []string{"lab-a"}})
	d.AddUser(User{Name: "bob", Accounts: []string{"lab-a", "lab-b"}})
	d.AddUser(User{Name: "carol", Accounts: []string{"lab-b"}})
	return d
}

func TestLookup(t *testing.T) {
	d := testDirectory()
	u, ok := d.Lookup("alice")
	if !ok || u.FullName != "Alice Li" {
		t.Fatalf("Lookup = %+v, %v", u, ok)
	}
	if _, ok := d.Lookup("mallory"); ok {
		t.Fatal("unknown user resolved")
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	d := testDirectory()
	u, _ := d.Lookup("bob")
	u.Accounts[0] = "evil"
	u2, _ := d.Lookup("bob")
	if u2.Accounts[0] == "evil" {
		t.Fatal("Lookup exposed internal state")
	}
}

func TestUsersSorted(t *testing.T) {
	d := testDirectory()
	users := d.Users()
	if len(users) != 3 || users[0] != "alice" || users[2] != "carol" {
		t.Fatalf("Users = %v", users)
	}
}

func TestFromRequest(t *testing.T) {
	d := testDirectory()
	r := httptest.NewRequest("GET", "/api/recent_jobs", nil)
	if _, err := d.FromRequest(r); !errors.Is(err, ErrUnauthenticated) {
		t.Fatalf("no header err = %v", err)
	}
	r.Header.Set(UserHeader, "mallory")
	if _, err := d.FromRequest(r); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user err = %v", err)
	}
	r.Header.Set(UserHeader, "alice")
	u, err := d.FromRequest(r)
	if err != nil || u.Name != "alice" {
		t.Fatalf("FromRequest = %+v, %v", u, err)
	}
}

// TestFromRequestHeaderHygiene covers proxy-mangled identity headers:
// surrounding whitespace is trimmed before lookup, control characters are
// rejected as malformed, and case is never folded.
func TestFromRequestHeaderHygiene(t *testing.T) {
	d := testDirectory()
	cases := []struct {
		name    string
		header  string
		wantErr error
		want    string // resolved username when wantErr == nil
	}{
		{"plain", "alice", nil, "alice"},
		{"trailing space", "alice ", nil, "alice"},
		{"leading space", "  alice", nil, "alice"},
		{"surrounding tabs", "\talice\t", nil, "alice"},
		{"whitespace only", "   ", ErrUnauthenticated, ""},
		{"tab only", "\t", ErrUnauthenticated, ""},
		{"embedded NUL", "ali\x00ce", ErrMalformedUser, ""},
		{"embedded newline", "alice\nX-Admin: 1", ErrMalformedUser, ""},
		{"embedded CR", "alice\rbob", ErrMalformedUser, ""},
		{"DEL byte", "alice\x7f", ErrMalformedUser, ""},
		{"interior space is part of the name", "ali ce", ErrUnknownUser, ""},
		{"case is not folded", "Alice", ErrUnknownUser, ""},
		{"unknown after trim", " mallory ", ErrUnknownUser, ""},
	}
	for _, c := range cases {
		r := httptest.NewRequest("GET", "/api/recent_jobs", nil)
		r.Header[UserHeader] = []string{c.header}
		u, err := d.FromRequest(r)
		if c.wantErr != nil {
			if !errors.Is(err, c.wantErr) {
				t.Errorf("%s: err = %v, want %v", c.name, err, c.wantErr)
			}
			continue
		}
		if err != nil || u == nil || u.Name != c.want {
			t.Errorf("%s: FromRequest = %+v, %v; want user %q", c.name, u, err, c.want)
		}
	}
}

func TestCanViewJob(t *testing.T) {
	d := testDirectory()
	alice, _ := d.Lookup("alice")
	bob, _ := d.Lookup("bob")

	if !CanViewJob(alice, "alice", "lab-a") {
		t.Error("owner denied")
	}
	if !CanViewJob(bob, "alice", "lab-a") {
		t.Error("group member denied")
	}
	if CanViewJob(alice, "carol", "lab-b") {
		t.Error("outsider allowed")
	}
	if CanViewJob(nil, "alice", "lab-a") {
		t.Error("nil viewer allowed")
	}
}

func TestCanViewLogs(t *testing.T) {
	d := testDirectory()
	alice, _ := d.Lookup("alice")
	bob, _ := d.Lookup("bob")
	if !CanViewLogs(alice, "alice") {
		t.Error("owner denied log access")
	}
	// Even same-group members cannot read logs: filesystem permissions.
	if CanViewLogs(bob, "alice") {
		t.Error("group member allowed log access")
	}
	if CanViewLogs(nil, "alice") {
		t.Error("nil viewer allowed log access")
	}
}

func TestMemberOf(t *testing.T) {
	u := User{Name: "x", Accounts: []string{"a", "b"}}
	if !u.MemberOf("a") || u.MemberOf("c") {
		t.Fatal("MemberOf wrong")
	}
}
