// Package clientcache models the browser-side IndexedDB cache the paper's
// frontend uses (§2.4): a structured store of API responses keyed by route,
// letting the dashboard render instantly from cached data while fresh data
// loads in the background.
//
// A DB holds named object stores (IndexedDB's unit of organization); each
// record carries the stored payload plus its write time, so callers can
// implement the paper's render-now-refresh-later policy. Fetch implements
// that policy directly: a fresh record is served without network, a stale or
// missing record triggers the fetch function, and the caller learns whether
// the first paint could have come from cache.
package clientcache

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ErrNotModified is the sentinel a tagged fetch function returns when the
// server answered 304 Not Modified: the cached copy is still current and
// only its freshness clock needs resetting.
var ErrNotModified = errors.New("clientcache: not modified")

// Clock supplies the current time (matches slurm.Clock / cache.Clock).
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Record is one stored API response.
type Record struct {
	Key      string
	Value    []byte
	StoredAt time.Time
	// ETag is the entity tag the server sent with the payload; sent back as
	// If-None-Match when the record needs revalidating.
	ETag string
}

// Age returns how old the record is at the given instant.
func (r Record) Age(now time.Time) time.Duration { return now.Sub(r.StoredAt) }

// Store is one IndexedDB object store. Safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	name    string
	records map[string]Record
	clock   Clock
}

// Put stores value under key, stamping it with the current time.
func (s *Store) Put(key string, value []byte) {
	s.PutTagged(key, value, "")
}

// PutTagged stores value with its server entity tag.
func (s *Store) PutTagged(key string, value []byte, etag string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := make([]byte, len(value))
	copy(cp, value)
	s.records[key] = Record{Key: key, Value: cp, StoredAt: s.clock.Now(), ETag: etag}
}

// Touch re-stamps an existing record as fresh without changing its value —
// the bookkeeping for a 304 revalidation. A missing key is a no-op.
func (s *Store) Touch(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.records[key]; ok {
		r.StoredAt = s.clock.Now()
		s.records[key] = r
	}
}

// Get returns the record for key, if present. The returned Value is a copy:
// Put copies on write and Get copies on read, so a caller mutating the
// bytes it received can never corrupt the stored record (the aliasing bug
// this guards against let one widget's in-place JSON patching poison every
// later cache read of the same route).
func (s *Store) Get(key string) (Record, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	r, ok := s.records[key]
	if !ok {
		return Record{}, false
	}
	cp := make([]byte, len(r.Value))
	copy(cp, r.Value)
	r.Value = cp
	return r, true
}

// Delete removes key.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.records, key)
}

// Keys returns all keys in sorted order (IndexedDB cursors iterate in key
// order).
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.records))
	for k := range s.records {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Clear removes every record.
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.records = make(map[string]Record)
}

// Len returns the number of stored records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.records)
}

// DB is a named collection of object stores, one per browser profile.
type DB struct {
	mu     sync.Mutex
	stores map[string]*Store
	clock  Clock
}

// New returns an empty client cache database. A nil clock uses wall time.
func New(clock Clock) *DB {
	if clock == nil {
		clock = realClock{}
	}
	return &DB{stores: make(map[string]*Store), clock: clock}
}

// ObjectStore returns the named store, creating it on first use (IndexedDB
// creates stores during the versionchange transaction; one lazy step here).
func (db *DB) ObjectStore(name string) *Store {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.stores[name]
	if !ok {
		s = &Store{name: name, records: make(map[string]Record), clock: db.clock}
		db.stores[name] = s
	}
	return s
}

// FetchSource says where a Fetch result came from.
type FetchSource string

// Fetch sources.
const (
	SourceFresh       FetchSource = "cache-fresh" // served from cache, no network
	SourceStale       FetchSource = "cache-stale" // cached copy was shown, then refreshed
	SourceNetwork     FetchSource = "network"     // no cached copy; network blocked first paint
	SourceRevalidated FetchSource = "revalidated" // cached copy confirmed current via 304
)

// FetchResult reports what Fetch did.
type FetchResult struct {
	Value []byte
	// FirstPaint is the payload the user saw immediately: the cached bytes
	// when any existed, otherwise the network response.
	FirstPaint []byte
	Source     FetchSource
	CachedAge  time.Duration // age of the cached copy at fetch time, if any
	// StaleFallback reports that the refresh failed and the stale cached
	// copy was served instead — degraded mode as the client observes it,
	// regardless of whether the server ever marked anything degraded.
	StaleFallback bool
}

// Fetch implements the dashboard frontend's cache policy for one API route:
//
//   - cached and younger than maxAge: return it, no network call;
//   - cached but stale: the cached copy is the instant first paint, the
//     fetch function refreshes the record, and the fresh bytes are returned;
//   - missing: the fetch function runs and its response is both first paint
//     and stored value.
//
// A fetch error with a stale copy available degrades gracefully to the stale
// copy (the dashboard keeps showing old data rather than breaking — the
// paper's modularity goal that one failing source must not take down the
// page).
func (s *Store) Fetch(key string, maxAge time.Duration, fetch func() ([]byte, error)) (FetchResult, error) {
	return s.FetchTagged(key, maxAge, func(string) ([]byte, string, error) {
		body, err := fetch()
		return body, "", err
	})
}

// FetchTagged is Fetch with conditional-request support: the fetch function
// receives the cached record's entity tag (empty when none) to send as
// If-None-Match, and returns the response body plus the new tag. Returning
// ErrNotModified means the server answered 304 — the cached copy is
// re-stamped fresh and served without a body transfer (SourceRevalidated).
func (s *Store) FetchTagged(key string, maxAge time.Duration, fetch func(etag string) ([]byte, string, error)) (FetchResult, error) {
	now := s.clock.Now()
	rec, ok := s.Get(key)
	if ok && rec.Age(now) <= maxAge {
		return FetchResult{Value: rec.Value, FirstPaint: rec.Value, Source: SourceFresh, CachedAge: rec.Age(now)}, nil
	}
	fresh, etag, err := fetch(rec.ETag)
	if errors.Is(err, ErrNotModified) && ok {
		s.Touch(key)
		return FetchResult{Value: rec.Value, FirstPaint: rec.Value, Source: SourceRevalidated, CachedAge: rec.Age(now)}, nil
	}
	if err != nil {
		if ok {
			return FetchResult{Value: rec.Value, FirstPaint: rec.Value, Source: SourceStale,
				CachedAge: rec.Age(now), StaleFallback: true}, nil
		}
		return FetchResult{}, fmt.Errorf("clientcache: fetch %s/%s: %w", s.name, key, err)
	}
	s.PutTagged(key, fresh, etag)
	res := FetchResult{Value: fresh, Source: SourceNetwork}
	if ok {
		res.FirstPaint = rec.Value
		res.Source = SourceStale
		res.CachedAge = rec.Age(now)
	} else {
		res.FirstPaint = fresh
	}
	return res, nil
}
