package clientcache

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestPutGet(t *testing.T) {
	db := New(newFakeClock())
	s := db.ObjectStore("api")
	s.Put("recent_jobs", []byte(`{"jobs":[]}`))
	rec, ok := s.Get("recent_jobs")
	if !ok || string(rec.Value) != `{"jobs":[]}` {
		t.Fatalf("Get = %+v, %v", rec, ok)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get of missing key returned ok")
	}
}

func TestPutCopiesValue(t *testing.T) {
	db := New(newFakeClock())
	s := db.ObjectStore("api")
	buf := []byte("original")
	s.Put("k", buf)
	buf[0] = 'X'
	rec, _ := s.Get("k")
	if string(rec.Value) != "original" {
		t.Fatal("Put aliased caller's slice")
	}
}

func TestObjectStoreReuse(t *testing.T) {
	db := New(newFakeClock())
	a := db.ObjectStore("api")
	b := db.ObjectStore("api")
	if a != b {
		t.Fatal("ObjectStore returned different instances for same name")
	}
	if db.ObjectStore("other") == a {
		t.Fatal("distinct names share a store")
	}
}

func TestKeysSorted(t *testing.T) {
	db := New(newFakeClock())
	s := db.ObjectStore("api")
	for _, k := range []string{"zeta", "alpha", "mid"} {
		s.Put(k, nil)
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := s.Keys(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys = %v, want %v", got, want)
	}
}

func TestDeleteAndClear(t *testing.T) {
	db := New(newFakeClock())
	s := db.ObjectStore("api")
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Delete("a")
	if _, ok := s.Get("a"); ok {
		t.Fatal("deleted key still present")
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("Clear left records")
	}
}

func TestFetchFreshServesCacheWithoutNetwork(t *testing.T) {
	clock := newFakeClock()
	db := New(clock)
	s := db.ObjectStore("api")
	s.Put("k", []byte("cached"))
	clock.Advance(10 * time.Second)

	res, err := s.Fetch("k", 30*time.Second, func() ([]byte, error) {
		t.Fatal("network fetch called for fresh entry")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceFresh || string(res.Value) != "cached" {
		t.Fatalf("res = %+v", res)
	}
	if res.CachedAge != 10*time.Second {
		t.Fatalf("age = %v", res.CachedAge)
	}
}

func TestFetchStaleShowsCachedThenRefreshes(t *testing.T) {
	clock := newFakeClock()
	db := New(clock)
	s := db.ObjectStore("api")
	s.Put("k", []byte("old"))
	clock.Advance(time.Minute)

	res, err := s.Fetch("k", 30*time.Second, func() ([]byte, error) {
		return []byte("new"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceStale {
		t.Fatalf("source = %s", res.Source)
	}
	if string(res.FirstPaint) != "old" || string(res.Value) != "new" {
		t.Fatalf("firstPaint=%q value=%q", res.FirstPaint, res.Value)
	}
	rec, _ := s.Get("k")
	if string(rec.Value) != "new" {
		t.Fatal("refresh not stored")
	}
}

func TestFetchMissGoesToNetwork(t *testing.T) {
	db := New(newFakeClock())
	s := db.ObjectStore("api")
	res, err := s.Fetch("k", time.Minute, func() ([]byte, error) {
		return []byte("net"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != SourceNetwork || string(res.FirstPaint) != "net" {
		t.Fatalf("res = %+v", res)
	}
	if _, ok := s.Get("k"); !ok {
		t.Fatal("network response not cached")
	}
}

func TestFetchErrorFallsBackToStale(t *testing.T) {
	clock := newFakeClock()
	db := New(clock)
	s := db.ObjectStore("api")
	s.Put("k", []byte("stale-but-usable"))
	clock.Advance(time.Hour)

	res, err := s.Fetch("k", time.Minute, func() ([]byte, error) {
		return nil, errors.New("backend down")
	})
	if err != nil {
		t.Fatalf("stale fallback should not error: %v", err)
	}
	if string(res.Value) != "stale-but-usable" || res.Source != SourceStale {
		t.Fatalf("res = %+v", res)
	}
}

func TestFetchErrorWithNoCacheFails(t *testing.T) {
	db := New(newFakeClock())
	s := db.ObjectStore("api")
	_, err := s.Fetch("k", time.Minute, func() ([]byte, error) {
		return nil, errors.New("backend down")
	})
	if err == nil {
		t.Fatal("expected error when no cached copy exists")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New(nil)
	s := db.ObjectStore("api")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i%4)
			for j := 0; j < 100; j++ {
				s.Put(key, bytes.Repeat([]byte{byte(i)}, 16))
				s.Get(key)
				s.Keys()
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4", s.Len())
	}
}

// Property: Fetch's source classification follows the age/maxAge relation
// exactly — fresh when age <= maxAge, stale paint + refresh otherwise,
// network only when the record is missing.
func TestFetchPolicyProperty(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		clock := newFakeClock()
		db := New(clock)
		s := db.ObjectStore("api")
		hasRecord := seed%3 != 0
		ageSecs := (seed * 7) % 120
		maxAge := 60 * time.Second
		if hasRecord {
			s.Put("k", []byte("old"))
			clock.Advance(time.Duration(ageSecs) * time.Second)
		}
		fetched := false
		res, err := s.Fetch("k", maxAge, func() ([]byte, error) {
			fetched = true
			return []byte("new"), nil
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		switch {
		case hasRecord && time.Duration(ageSecs)*time.Second <= maxAge:
			if res.Source != SourceFresh || fetched {
				t.Fatalf("seed %d: want fresh, got %s fetched=%v", seed, res.Source, fetched)
			}
		case hasRecord:
			if res.Source != SourceStale || !fetched || string(res.FirstPaint) != "old" {
				t.Fatalf("seed %d: want stale, got %s fetched=%v", seed, res.Source, fetched)
			}
		default:
			if res.Source != SourceNetwork || !fetched {
				t.Fatalf("seed %d: want network, got %s fetched=%v", seed, res.Source, fetched)
			}
		}
	}
}

// TestGetReturnsCopy is the regression test for the read-aliasing bug: Get
// (and therefore Fetch, which serves cached bytes through it) used to
// return the map's Record.Value slice directly, so a caller mutating the
// returned bytes corrupted the cached record for every later reader.
func TestGetReturnsCopy(t *testing.T) {
	db := New(newFakeClock())
	s := db.ObjectStore("api")
	s.Put("storage", []byte(`{"dirs":[1,2,3]}`))

	rec, ok := s.Get("storage")
	if !ok {
		t.Fatal("record missing")
	}
	for i := range rec.Value {
		rec.Value[i] = 'X' // simulate a widget patching its payload in place
	}
	again, _ := s.Get("storage")
	if string(again.Value) != `{"dirs":[1,2,3]}` {
		t.Fatalf("cached record corrupted by caller mutation: %q", again.Value)
	}
}

// TestFetchReturnsCopy covers the same aliasing through Fetch's cache-hit
// and degraded (stale-after-error) paths.
func TestFetchReturnsCopy(t *testing.T) {
	clock := newFakeClock()
	db := New(clock)
	s := db.ObjectStore("api")
	s.Put("jobs", []byte(`original`))

	// Fresh hit: no network, returned bytes must be a private copy.
	res, err := s.Fetch("jobs", time.Minute, func() ([]byte, error) {
		t.Fatal("fetch must not run on a fresh hit")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Value {
		res.Value[i] = 'Y'
	}

	// Stale + fetch error: the degraded fallback serves the cached copy,
	// which must also be private.
	clock.Advance(2 * time.Minute)
	res, err = s.Fetch("jobs", time.Minute, func() ([]byte, error) {
		return nil, errors.New("source down")
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Value) != "original" {
		t.Fatalf("degraded fetch served corrupted bytes: %q", res.Value)
	}
	for i := range res.FirstPaint {
		res.FirstPaint[i] = 'Z'
	}
	rec, _ := s.Get("jobs")
	if string(rec.Value) != "original" {
		t.Fatalf("cached record corrupted: %q", rec.Value)
	}
}

func TestFetchTaggedRevalidates(t *testing.T) {
	clock := newFakeClock()
	db := New(clock)
	s := db.ObjectStore("api")

	// Cold: fetch stores the body with its tag.
	calls := 0
	fetch := func(etag string) ([]byte, string, error) {
		calls++
		if etag == `"v1"` {
			return nil, etag, ErrNotModified
		}
		return []byte(`{"a":1}`), `"v1"`, nil
	}
	res, err := s.FetchTagged("w", 30*time.Second, fetch)
	if err != nil || res.Source != SourceNetwork {
		t.Fatalf("cold: %+v err=%v", res, err)
	}
	if rec, _ := s.Get("w"); rec.ETag != `"v1"` {
		t.Fatalf("stored ETag = %q", rec.ETag)
	}

	// Stale with matching tag: 304 path re-stamps the record fresh.
	clock.Advance(time.Minute)
	res, err = s.FetchTagged("w", 30*time.Second, fetch)
	if err != nil || res.Source != SourceRevalidated || string(res.Value) != `{"a":1}` {
		t.Fatalf("revalidate: %+v err=%v", res, err)
	}
	if res.StaleFallback {
		t.Fatal("revalidation marked StaleFallback")
	}

	// The Touch made it fresh again: no network call within the TTL.
	before := calls
	res, _ = s.FetchTagged("w", 30*time.Second, fetch)
	if res.Source != SourceFresh || calls != before {
		t.Fatalf("post-revalidation fetch went to network: %+v calls=%d", res, calls)
	}
}

func TestFetchTaggedErrorFallsBackStale(t *testing.T) {
	clock := newFakeClock()
	db := New(clock)
	s := db.ObjectStore("api")
	s.PutTagged("w", []byte(`{"a":1}`), `"v1"`)
	clock.Advance(time.Minute)
	res, err := s.FetchTagged("w", 30*time.Second, func(string) ([]byte, string, error) {
		return nil, "", errors.New("down")
	})
	if err != nil || res.Source != SourceStale || !res.StaleFallback {
		t.Fatalf("fallback: %+v err=%v", res, err)
	}
	// ErrNotModified with no cached copy is a real error, not a revalidation.
	if _, err := s.FetchTagged("missing", time.Second, func(string) ([]byte, string, error) {
		return nil, "", ErrNotModified
	}); err == nil {
		t.Fatal("ErrNotModified without a cached record succeeded")
	}
}
