package push

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// countingSource returns a Source whose fetches are counted and whose
// payload changes every call.
func countingSource(widget, key string, ttl time.Duration, calls *atomic.Int64) Source {
	return Source{
		Widget: widget, Key: key, TTL: ttl,
		Fetch: func(context.Context) ([]byte, bool, error) {
			n := calls.Add(1)
			return []byte(fmt.Sprintf(`{"n":%d}`, n)), false, nil
		},
	}
}

func TestSchedulerTTLCadence(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	var calls atomic.Int64
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub})
	defer sched.Close()
	if ok, err := sched.Register(countingSource("w", "w", 30*time.Second, &calls)); !ok || err != nil {
		t.Fatalf("Register: ok=%v err=%v", ok, err)
	}
	// Re-registering the same key is a no-op.
	if ok, _ := sched.Register(countingSource("w", "w", 30*time.Second, &calls)); ok {
		t.Fatal("duplicate Register reported added")
	}

	// Not yet due: first refresh lands one TTL after registration.
	if n := sched.Tick(); n != 0 {
		t.Fatalf("immediate Tick refreshed %d sources", n)
	}
	clock.Advance(30 * time.Second)
	if n := sched.Tick(); n != 1 {
		t.Fatalf("Tick at TTL refreshed %d sources, want 1", n)
	}
	// A second Tick at the same instant must not re-refresh.
	if n := sched.Tick(); n != 0 {
		t.Fatalf("repeat Tick refreshed %d sources", n)
	}
	// Five more TTL cycles: exactly five more fetches.
	for i := 0; i < 5; i++ {
		clock.Advance(30 * time.Second)
		sched.Tick()
	}
	if got := calls.Load(); got != 6 {
		t.Fatalf("fetches = %d, want 6 (one per TTL cycle)", got)
	}
	if hub.Version() != 6 {
		t.Fatalf("hub version = %d, want 6", hub.Version())
	}
}

// TestSchedulerRefreshDurationOnSimClock pins OnRefresh durations to the
// scheduler's clock: a fetch that advances the simulated clock by 2s (as
// fault-injected fills do in chaos drills) must report ~2s, not the ~0
// wall time the fetch actually took.
func TestSchedulerRefreshDurationOnSimClock(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	const simLatency = 2 * time.Second
	var reported atomic.Int64
	sched := NewScheduler(SchedulerOptions{
		Clock: clock, Hub: hub,
		OnRefresh: func(widget string, d time.Duration, published bool, err error) {
			reported.Store(int64(d))
		},
	})
	defer sched.Close()
	src := Source{
		Widget: "w", Key: "w", TTL: 30 * time.Second,
		Fetch: func(context.Context) ([]byte, bool, error) {
			clock.Advance(simLatency) // the modeled upstream latency
			return []byte(`{"n":1}`), false, nil
		},
	}
	if ok, err := sched.Register(src); !ok || err != nil {
		t.Fatalf("Register: ok=%v err=%v", ok, err)
	}
	if _, err := sched.Refresh(context.Background(), "w"); err != nil {
		t.Fatal(err)
	}
	if got := time.Duration(reported.Load()); got != simLatency {
		t.Fatalf("OnRefresh duration = %v, want %v (simulated clock)", got, simLatency)
	}
}

func TestSchedulerJitterStaggersSources(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	var calls atomic.Int64
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub, Jitter: 0.5})
	defer sched.Close()
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("w%d", i)
		if _, err := sched.Register(countingSource(k, k, time.Minute, &calls)); err != nil {
			t.Fatal(err)
		}
	}
	// Halfway into the jitter window (TTL + TTL/4): only sources whose
	// deterministic offset has elapsed are due — not none, not all.
	clock.Advance(time.Minute + 15*time.Second)
	first := sched.Tick()
	if first == 0 || first == 8 {
		t.Fatalf("jitter did not stagger: %d/8 due at one instant", first)
	}
	// By the end of the jitter window everything has refreshed once.
	clock.Advance(15 * time.Second)
	sched.Tick()
	if got := calls.Load(); got != 8 {
		t.Fatalf("fetches after TTL+jitter window = %d, want 8", got)
	}
}

func TestSchedulerRefreshNow(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	var calls atomic.Int64
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub})
	defer sched.Close()
	sched.Register(countingSource("w", "w", time.Minute, &calls))
	snap, err := sched.Refresh(context.Background(), "w")
	if err != nil || snap.Version != 1 {
		t.Fatalf("Refresh: snap=%+v err=%v", snap, err)
	}
	if _, err := sched.Refresh(context.Background(), "nope"); err == nil {
		t.Fatal("Refresh of unknown key succeeded")
	}
}

func TestSchedulerPauseWhenIdle(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	var calls atomic.Int64
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub, PauseWhenIdle: true})
	defer sched.Close()
	sched.Register(countingSource("w", "w", 30*time.Second, &calls))

	// No subscribers: TTL cycles pass without a single fetch.
	for i := 0; i < 3; i++ {
		clock.Advance(30 * time.Second)
		sched.Tick()
	}
	if calls.Load() != 0 {
		t.Fatalf("idle source fetched %d times", calls.Load())
	}
	if st := sched.Stats(); st.Paused != 3 {
		t.Fatalf("paused = %d, want 3", st.Paused)
	}

	// A subscriber appears: refreshing resumes on the next due cycle.
	sub := hub.Subscribe([]string{"w"})
	defer sub.Close()
	clock.Advance(30 * time.Second)
	sched.Tick()
	if calls.Load() != 1 {
		t.Fatalf("subscribed source fetched %d times, want 1", calls.Load())
	}
}

func TestSchedulerSkipWhenDegraded(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	var calls atomic.Int64
	degraded := atomic.Bool{}
	degraded.Store(true)
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub, SkipWhenDegraded: true})
	defer sched.Close()
	sched.Register(Source{
		Widget: "w", Key: "w", TTL: 30 * time.Second,
		Fetch: func(context.Context) ([]byte, bool, error) {
			n := calls.Add(1)
			return []byte(fmt.Sprintf(`{"n":%d}`, n)), degraded.Load(), nil
		},
	})
	// First refresh comes back degraded...
	clock.Advance(30 * time.Second)
	sched.Tick()
	if calls.Load() != 1 {
		t.Fatalf("fetches = %d, want 1", calls.Load())
	}
	// ...so the next cycle is stretched to 2×TTL: nothing at +30s.
	clock.Advance(30 * time.Second)
	sched.Tick()
	if calls.Load() != 1 {
		t.Fatalf("degraded source refreshed at 1×TTL: fetches = %d", calls.Load())
	}
	clock.Advance(30 * time.Second)
	sched.Tick()
	if calls.Load() != 2 {
		t.Fatalf("degraded source not refreshed at 2×TTL: fetches = %d", calls.Load())
	}
	// Recovery: fresh results restore the 1×TTL cadence.
	degraded.Store(false)
	clock.Advance(60 * time.Second) // still on the stretched cadence for this cycle
	sched.Tick()
	clock.Advance(30 * time.Second)
	sched.Tick()
	if calls.Load() != 4 {
		t.Fatalf("recovered source fetches = %d, want 4", calls.Load())
	}
}

func TestSchedulerFetchErrorPublishesNothing(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub})
	defer sched.Close()
	sched.Register(Source{
		Widget: "w", Key: "w", TTL: 30 * time.Second,
		Fetch: func(context.Context) ([]byte, bool, error) {
			return nil, false, errors.New("cold outage")
		},
	})
	clock.Advance(30 * time.Second)
	sched.Tick()
	if _, ok := hub.Latest("w"); ok {
		t.Fatal("failed fetch published a snapshot")
	}
	if st := sched.Stats(); st.Errors != 1 || st.Refreshes != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerCloseStopsRunLoop(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub})
	sched.Run(time.Millisecond)
	sched.Close() // must stop the loop and wait for it
	if _, err := sched.Register(Source{Widget: "w", Key: "w", TTL: time.Second,
		Fetch: func(context.Context) ([]byte, bool, error) { return nil, false, nil }}); err == nil {
		t.Fatal("Register after Close succeeded")
	}
	sched.Close() // idempotent
}
