package push

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// FetchFunc refreshes one source: it returns the widget's JSON payload,
// whether it was built from stale last-known-good data (degraded), and an
// error when nothing at all could be produced (cold source during an
// outage). Implementations are expected to route through the server's
// cache + resilience path, so a refresh is exactly as expensive as one
// client's cache-missing poll.
type FetchFunc func(ctx context.Context) (payload []byte, degraded bool, err error)

// Source registers one refreshable widget instance with the scheduler.
type Source struct {
	// Widget is the event name clients subscribe to.
	Widget string
	// Key uniquely identifies this instance (equal to Widget for
	// cluster-wide sources, "widget:user" for per-user ones).
	Key string
	// TTL is the refresh cadence — the same value as the widget's server
	// cache TTL, so the scheduler re-fetches right as the entry expires.
	TTL time.Duration
	// Fetch produces the payload.
	Fetch FetchFunc
}

// SchedulerOptions configure a Scheduler.
type SchedulerOptions struct {
	// Clock drives due-time decisions; nil means wall clock.
	Clock Clock
	// Hub receives every refresh result; required.
	Hub *Hub
	// Jitter staggers each source's first refresh by a deterministic
	// fraction of its TTL in [0, Jitter), so sources registered together do
	// not refresh in lockstep forever (thundering refresh). 0 disables.
	Jitter float64
	// PauseWhenIdle skips refreshing a source that currently has zero hub
	// subscribers; its schedule resumes when a client subscribes again.
	PauseWhenIdle bool
	// SkipWhenDegraded doubles a source's next refresh interval after a
	// degraded result, shedding scheduled load from an ailing upstream (the
	// resilience breaker handles rapid-fire failures; this handles the
	// steady state of a long outage).
	SkipWhenDegraded bool
	// OnRefresh observes every attempted refresh with its duration measured
	// on Clock — the same (possibly simulated) clock that drives due times,
	// so chaos drills on a warped clock record the latencies the fetch path
	// actually modeled, not near-zero wall time. nil disables. published
	// reports whether the hub minted a new version.
	OnRefresh func(widget string, d time.Duration, published bool, err error)
}

// SchedulerStats is a snapshot of the scheduler's counters.
type SchedulerStats struct {
	Sources   int
	Refreshes int64 // fetches attempted
	Errors    int64 // fetches that produced no payload
	Paused    int64 // refreshes skipped because no subscriber wanted the source
	Skipped   int64 // cycles stretched because the source was degraded
}

type schedSource struct {
	Source
	nextDue      time.Time
	lastDegraded bool
	refreshes    int64 // fetches attempted for this source
}

// Scheduler proactively re-fetches registered sources on their TTL cadence
// and publishes the results to the hub. It is driven by explicit Tick calls:
// tests and the loadgen smoke mode call Tick after advancing the simulated
// clock; production calls Run, which wraps Tick in a wall-clock loop.
type Scheduler struct {
	opts SchedulerOptions

	mu      sync.Mutex
	sources map[string]*schedSource
	stats   SchedulerStats
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
}

// NewScheduler returns an empty scheduler.
func NewScheduler(opts SchedulerOptions) *Scheduler {
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	if opts.Hub == nil {
		panic("push: NewScheduler: nil Hub")
	}
	return &Scheduler{
		opts:    opts,
		sources: make(map[string]*schedSource),
		stop:    make(chan struct{}),
	}
}

// jitterFor derives a deterministic stagger offset for key in [0, frac*ttl).
func jitterFor(key string, ttl time.Duration, frac float64) time.Duration {
	if frac <= 0 || ttl <= 0 {
		return 0
	}
	h := fnv.New64a()
	h.Write([]byte(key))
	r := float64(h.Sum64()%1000) / 1000 // deterministic in [0,1)
	return time.Duration(frac * r * float64(ttl))
}

// Register adds src if its key is not yet known and returns whether it was
// added. The first refresh is due after one TTL plus the deterministic
// jitter offset (callers wanting an immediate snapshot use Refresh).
func (s *Scheduler) Register(src Source) (bool, error) {
	if src.Key == "" || src.Widget == "" || src.Fetch == nil || src.TTL <= 0 {
		return false, fmt.Errorf("push: Register: incomplete source %q", src.Key)
	}
	now := s.opts.Clock.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, fmt.Errorf("push: Register: scheduler closed")
	}
	if _, ok := s.sources[src.Key]; ok {
		return false, nil
	}
	s.sources[src.Key] = &schedSource{
		Source:  src,
		nextDue: now.Add(src.TTL + jitterFor(src.Key, src.TTL, s.opts.Jitter)),
	}
	s.stats.Sources = len(s.sources)
	return true, nil
}

// Unregister removes the source for key and reports whether it existed.
// The fleet layer uses it when refresh ownership of a key moves to another
// replica, and when an idle source is reaped.
func (s *Scheduler) Unregister(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sources[key]; !ok {
		return false
	}
	delete(s.sources, key)
	s.stats.Sources = len(s.sources)
	return true
}

// Keys returns the registered source keys in sorted order — the fleet
// drill's evidence that each key is scheduled on exactly one replica.
func (s *Scheduler) Keys() []string {
	s.mu.Lock()
	out := make([]string, 0, len(s.sources))
	for k := range s.sources {
		out = append(out, k)
	}
	s.mu.Unlock()
	sort.Strings(out)
	return out
}

// SourceRefreshes returns the per-key fetch-attempt counts. Counts survive
// only as long as the source is registered (Unregister drops them with the
// source).
func (s *Scheduler) SourceRefreshes() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.sources))
	for k, src := range s.sources {
		out[k] = src.refreshes
	}
	return out
}

// Refresh fetches key immediately (regardless of due time) and publishes
// the result, returning the stored snapshot. Used at subscribe time to give
// a new client a current snapshot.
func (s *Scheduler) Refresh(ctx context.Context, key string) (Snapshot, error) {
	s.mu.Lock()
	src, ok := s.sources[key]
	if !ok || s.closed {
		s.mu.Unlock()
		return Snapshot{}, fmt.Errorf("push: Refresh: unknown source %q", key)
	}
	cp := src.Source
	s.mu.Unlock()
	return s.refreshOne(ctx, cp)
}

// Tick runs every due refresh synchronously and returns how many sources
// were fetched. Deterministic: sources are refreshed in sorted key order.
func (s *Scheduler) Tick() int {
	now := s.opts.Clock.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return 0
	}
	due := make([]*schedSource, 0)
	for _, src := range s.sources {
		if !now.Before(src.nextDue) {
			due = append(due, src)
		}
	}
	// Sorted order keeps the refresh sequence (and therefore version
	// assignment) reproducible run over run.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && due[j-1].Key > due[j].Key; j-- {
			due[j-1], due[j] = due[j], due[j-1]
		}
	}
	type job struct {
		src  Source
		skip bool
	}
	jobs := make([]job, 0, len(due))
	for _, src := range due {
		src.nextDue = now.Add(src.TTL)
		j := job{src: src.Source}
		if s.opts.PauseWhenIdle && s.opts.Hub.SubscribersFor(src.Key) == 0 {
			s.stats.Paused++
			j.skip = true
		}
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	ran := 0
	for _, j := range jobs {
		if j.skip {
			continue
		}
		s.refreshOne(context.Background(), j.src)
		ran++
	}
	return ran
}

// refreshOne fetches one source and publishes the result. Duration is
// measured on opts.Clock: the fetch path (cache fills, fault injection,
// upstream latency) models time on that clock, and time.Since would read
// ~0 whenever it is simulated.
func (s *Scheduler) refreshOne(ctx context.Context, src Source) (Snapshot, error) {
	start := s.opts.Clock.Now()
	payload, degraded, err := src.Fetch(ctx)
	published := false
	var snap Snapshot
	if err == nil {
		snap, published = s.opts.Hub.Publish(src.Widget, src.Key, payload, degraded)
	}
	s.mu.Lock()
	s.stats.Refreshes++
	if err != nil {
		s.stats.Errors++
	}
	if st, ok := s.sources[src.Key]; ok {
		st.refreshes++
		st.lastDegraded = err == nil && degraded
		if st.lastDegraded && s.opts.SkipWhenDegraded {
			// Degraded means the upstream is failing and the cache served
			// last-known-good data: stretch this source's next refresh to
			// 2×TTL (skip one cycle) until a fresh result returns.
			s.stats.Skipped++
			st.nextDue = s.opts.Clock.Now().Add(2 * st.TTL)
		}
	}
	s.mu.Unlock()
	if s.opts.OnRefresh != nil {
		s.opts.OnRefresh(src.Widget, s.opts.Clock.Now().Sub(start), published, err)
	}
	return snap, err
}

// Run starts a wall-clock loop calling Tick every interval until Close.
// The shared clock may be simulated and advancing at any warp factor; the
// loop only controls how often due times are checked.
func (s *Scheduler) Run(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				s.Tick()
			}
		}
	}()
}

// Stats returns the scheduler's counters.
func (s *Scheduler) Stats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Sources = len(s.sources)
	return st
}

// Close stops the Run loop and rejects further registrations. It waits for
// the loop goroutine to exit, so no refresh is in flight after Close
// returns. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	s.wg.Wait()
}
