// Package push is the dashboard's live-update subsystem: a background
// refresh scheduler that re-fetches each subscribed data source once per TTL,
// a versioned snapshot hub that fans every refresh out to connected clients,
// and the SSE wire format the core server streams the snapshots with.
//
// The paper's dual-layer cache (§2.4) bounds slurmctld load only while
// clients poll: every polling client still costs a dashboard request, so
// demand grows with user count. The push subsystem inverts the flow — the
// server refreshes each source once per TTL and broadcasts the versioned
// result, making upstream RPC cost O(sources) instead of O(clients).
//
// Everything reads time from an injected Clock and is driven by explicit
// Tick calls, so the whole layer runs deterministically on the simulated
// clock in tests; production wraps Tick in a wall-clock loop.
package push

import (
	"hash/fnv"
	"sort"
	"sync"
	"time"
)

// Clock supplies the current time; it matches slurm.Clock so the push layer
// shares the simulation clock with the rest of the stack.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Snapshot is one immutable versioned refresh result. Versions are hub-wide
// and strictly increasing, so a client's last-seen version orders every
// snapshot it has and has not received regardless of widget.
type Snapshot struct {
	// Widget is the event name clients subscribe to ("system_status", ...).
	Widget string
	// Key identifies the concrete source instance: equal to Widget for
	// cluster-wide sources, "widget:user" for per-user ones.
	Key string
	// Version is the hub-wide sequence number assigned at publish.
	Version int64
	// Payload is the widget's JSON body, exactly as the polling route
	// would serve it.
	Payload []byte
	// Degraded marks a payload built from stale last-known-good data while
	// the backing source is down.
	Degraded bool
	// Timestamp is the (simulated) time the refresh completed.
	Timestamp time.Time
	// Hash is the content hash used to suppress no-change republishes.
	Hash uint64
}

// HashPayload is the content hash the hub deduplicates with: FNV-1a over the
// payload plus the degraded flag, so a payload flipping between fresh and
// degraded states still produces a new version.
func HashPayload(payload []byte, degraded bool) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	if degraded {
		h.Write([]byte{1})
	}
	return h.Sum64()
}

// HubStats is a snapshot of the hub's fan-out counters.
type HubStats struct {
	Subscribers int   // currently connected subscriptions
	Published   int64 // snapshots that got a new version
	Suppressed  int64 // refreshes dropped because the content hash was unchanged
	Delivered   int64 // snapshots handed to subscriber buffers
	Dropped     int64 // snapshots coalesced away because a subscriber lagged
}

// Hub stores the latest snapshot per source key and fans new versions out to
// subscribers. Publishing never blocks: a slow subscriber coalesces to the
// newest snapshot per key (drop-oldest) rather than back-pressuring the
// refresh loop. All methods are safe for concurrent use.
type Hub struct {
	clock Clock

	mu      sync.Mutex
	version int64
	latest  map[string]Snapshot
	subs    map[*Subscription]struct{}
	passive int // subscriptions created by SubscribeAll (taps, not clients)
	closed  bool

	published  int64
	suppressed int64
	// deliveredTotal/droppedTotal fold in counters from closed
	// subscriptions so Stats stays monotonic after clients disconnect.
	deliveredTotal int64
	droppedTotal   int64
}

// NewHub returns an empty hub; a nil clock means wall clock.
func NewHub(clock Clock) *Hub {
	if clock == nil {
		clock = realClock{}
	}
	return &Hub{
		clock:  clock,
		latest: make(map[string]Snapshot),
		subs:   make(map[*Subscription]struct{}),
	}
}

// Publish stores a refresh result under key and fans it out. When the
// content hash matches the stored snapshot the refresh is suppressed: no new
// version is minted and subscribers see nothing. The returned snapshot is
// the stored one either way; fresh reports whether a new version was minted.
func (h *Hub) Publish(widget, key string, payload []byte, degraded bool) (Snapshot, bool) {
	hash := HashPayload(payload, degraded)
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return Snapshot{}, false
	}
	if prev, ok := h.latest[key]; ok && prev.Hash == hash {
		h.suppressed++
		h.mu.Unlock()
		return prev, false
	}
	h.version++
	snap := Snapshot{
		Widget:    widget,
		Key:       key,
		Version:   h.version,
		Payload:   payload,
		Degraded:  degraded,
		Timestamp: h.clock.Now(),
		Hash:      hash,
	}
	h.latest[key] = snap
	h.published++
	targets := make([]*Subscription, 0, len(h.subs))
	for sub := range h.subs {
		if sub.wants(key) {
			targets = append(targets, sub)
		}
	}
	h.mu.Unlock()
	// Delivery happens outside the hub lock: each subscription has its own
	// coalescing buffer and never blocks the publisher.
	for _, sub := range targets {
		sub.offer(snap)
	}
	return snap, true
}

// Latest returns the stored snapshot for key, if any.
func (h *Hub) Latest(key string) (Snapshot, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.latest[key]
	return s, ok
}

// Since returns the stored snapshots for the given keys whose version is
// greater than after, ordered by version — the resume replay for a client
// reconnecting with a Last-Event-ID.
func (h *Hub) Since(after int64, keys []string) []Snapshot {
	h.mu.Lock()
	out := make([]Snapshot, 0, len(keys))
	for _, k := range keys {
		if s, ok := h.latest[k]; ok && s.Version > after {
			out = append(out, s)
		}
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

// Snapshots returns every stored latest snapshot, ordered by key — the
// per-widget version exposition for metrics.
func (h *Hub) Snapshots() []Snapshot {
	h.mu.Lock()
	out := make([]Snapshot, 0, len(h.latest))
	for _, s := range h.latest {
		out = append(out, s)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Version returns the highest version the hub has minted.
func (h *Hub) Version() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.version
}

// Subscribe registers a subscriber for the given source keys. The caller
// must Close the subscription when done.
func (h *Hub) Subscribe(keys []string) *Subscription {
	sub := &Subscription{
		hub:     h,
		keys:    make(map[string]bool, len(keys)),
		pending: make(map[string]Snapshot, len(keys)),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	for _, k := range keys {
		sub.keys[k] = true
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(sub.done)
		return sub
	}
	h.subs[sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

// SubscribeAll registers a passive subscription that receives every key's
// new versions — the fleet layer's propagation tap. Passive subscriptions
// are invisible to SubscriberCount and SubscribersFor, so a tap never makes
// an idle source look watched (pause-when-idle keeps seeing real clients
// only). The caller must Close the subscription when done.
func (h *Hub) SubscribeAll() *Subscription {
	sub := &Subscription{
		hub:     h,
		all:     true,
		pending: make(map[string]Snapshot, 8),
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		close(sub.done)
		return sub
	}
	h.subs[sub] = struct{}{}
	h.passive++
	h.mu.Unlock()
	return sub
}

// SubscriberCount returns the number of open client subscriptions
// (passive SubscribeAll taps excluded).
func (h *Hub) SubscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) - h.passive
}

// SubscribersFor returns how many open client subscriptions include key —
// the scheduler's pause-when-idle signal. Passive taps do not count.
func (h *Hub) SubscribersFor(key string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for sub := range h.subs {
		if !sub.all && sub.keys[key] {
			n++
		}
	}
	return n
}

// Stats returns the hub's counters, aggregating per-subscription delivery
// and drop counts from both live and closed subscriptions.
func (h *Hub) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HubStats{
		Subscribers: len(h.subs) - h.passive,
		Published:   h.published,
		Suppressed:  h.suppressed,
		Delivered:   h.deliveredTotal,
		Dropped:     h.droppedTotal,
	}
	for sub := range h.subs {
		d, dr, _ := sub.counts()
		st.Delivered += d
		st.Dropped += dr
	}
	return st
}

// Close shuts the hub down: every subscription is closed and further
// publishes are ignored.
func (h *Hub) Close() {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return
	}
	h.closed = true
	subs := make([]*Subscription, 0, len(h.subs))
	for sub := range h.subs {
		subs = append(subs, sub)
	}
	h.mu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// unsubscribe removes sub, folding its counters into the hub totals.
func (h *Hub) unsubscribe(sub *Subscription) {
	d, dr, _ := sub.counts()
	h.mu.Lock()
	if _, ok := h.subs[sub]; ok {
		delete(h.subs, sub)
		if sub.all {
			h.passive--
		}
		h.deliveredTotal += d
		h.droppedTotal += dr
	}
	h.mu.Unlock()
}

// SubStats reports one subscription's delivery counters.
type SubStats struct {
	Delivered int64 // snapshots buffered for this subscriber
	Dropped   int64 // snapshots coalesced away because the subscriber lagged
	Slow      int64 // publishes that found this subscriber already lagging
}

// Subscription is one client's coalescing snapshot buffer. The hub offers
// snapshots into it without ever blocking; the client drains via Ready/Pop.
// A lagging client keeps only the newest snapshot per key — intermediate
// versions are dropped (drop-oldest) and counted.
type Subscription struct {
	hub  *Hub
	keys map[string]bool
	all  bool // SubscribeAll tap: wants every key, excluded from client counts

	mu        sync.Mutex
	pending   map[string]Snapshot
	delivered int64
	dropped   int64
	slow      int64
	closed    bool

	notify chan struct{}
	done   chan struct{}
}

func (s *Subscription) wants(key string) bool { return s.all || s.keys[key] }

// offer buffers snap for the subscriber, coalescing onto any undelivered
// snapshot for the same key. Never blocks.
func (s *Subscription) offer(snap Snapshot) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.pending) > 0 {
		s.slow++
	}
	if _, lagging := s.pending[snap.Key]; lagging {
		// The previous snapshot for this key was never drained: the newest
		// one replaces it (drop-oldest) so a slow client converges on the
		// current state instead of an ever-growing backlog.
		s.dropped++
	}
	s.pending[snap.Key] = snap
	s.delivered++
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Ready signals that at least one snapshot may be pending. After receiving,
// drain with Pop until it returns false.
func (s *Subscription) Ready() <-chan struct{} { return s.notify }

// Done is closed when the subscription is closed (client went away or the
// hub shut down).
func (s *Subscription) Done() <-chan struct{} { return s.done }

// Pop removes and returns the lowest-version pending snapshot.
func (s *Subscription) Pop() (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return Snapshot{}, false
	}
	var best Snapshot
	first := true
	for _, snap := range s.pending {
		if first || snap.Version < best.Version {
			best, first = snap, false
		}
	}
	delete(s.pending, best.Key)
	return best, true
}

// Stats returns the subscription's counters.
func (s *Subscription) Stats() SubStats {
	d, dr, sl := s.counts()
	return SubStats{Delivered: d, Dropped: dr, Slow: sl}
}

func (s *Subscription) counts() (delivered, dropped, slow int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered, s.dropped, s.slow
}

// Close detaches the subscription from the hub. Idempotent.
func (s *Subscription) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.hub.unsubscribe(s)
	close(s.done)
}
