package push

import (
	"context"
	"reflect"
	"testing"
	"time"
)

// The fleet tier taps every publish with SubscribeAll; the tap must be
// invisible to the idle accounting (SubscriberCount, SubscribersFor, Stats)
// or pause-when-idle would never pause and per-key fan-out counts would lie.
func TestHubSubscribeAllIsPassive(t *testing.T) {
	h := NewHub(testClock())
	tap := h.SubscribeAll()
	defer tap.Close()

	if n := h.SubscriberCount(); n != 0 {
		t.Fatalf("SubscriberCount with only a tap = %d, want 0", n)
	}
	h.Publish("a", "a", []byte("1"), false)
	if n := h.SubscribersFor("a"); n != 0 {
		t.Fatalf("SubscribersFor with only a tap = %d, want 0", n)
	}
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("Stats.Subscribers with only a tap = %d, want 0", st.Subscribers)
	}

	// The tap still receives every key without subscribing to any.
	h.Publish("b", "b:u1", []byte("2"), false)
	got := map[string]bool{}
	for {
		snap, ok := tap.Pop()
		if !ok {
			break
		}
		got[snap.Key] = true
	}
	if !got["a"] || !got["b:u1"] {
		t.Fatalf("tap missed publishes, got %v", got)
	}

	// Real subscribers count as before, and closing the tap doesn't
	// disturb them.
	sub := h.Subscribe([]string{"a"})
	defer sub.Close()
	if n := h.SubscriberCount(); n != 1 {
		t.Fatalf("SubscriberCount with tap+sub = %d, want 1", n)
	}
	tap.Close()
	if n := h.SubscriberCount(); n != 1 {
		t.Fatalf("SubscriberCount after tap close = %d, want 1", n)
	}
	if n := h.SubscribersFor("a"); n != 1 {
		t.Fatalf("SubscribersFor after tap close = %d, want 1", n)
	}
}

// Unregister/Keys/SourceRefreshes are the scheduler surface the fleet's
// ownership handover and duplicate-poll drill are built on.
func TestSchedulerUnregisterKeysRefreshCounts(t *testing.T) {
	clock := testClock()
	hub := NewHub(clock)
	defer hub.Close()
	sched := NewScheduler(SchedulerOptions{Clock: clock, Hub: hub, Jitter: -1})
	defer sched.Close()

	fetch := func(payload string) FetchFunc {
		return func(ctx context.Context) ([]byte, bool, error) {
			return []byte(payload), false, nil
		}
	}
	for _, key := range []string{"b", "a"} {
		if _, err := sched.Register(Source{Widget: key, Key: key, TTL: time.Minute, Fetch: fetch(key)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := sched.Keys(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("Keys = %v, want [a b]", got)
	}

	// Duplicate registration is a no-op (handover re-registration safety).
	added, err := sched.Register(Source{Widget: "a", Key: "a", TTL: time.Minute, Fetch: fetch("a")})
	if err != nil || added {
		t.Fatalf("duplicate Register = (%v, %v), want (false, nil)", added, err)
	}

	if _, err := sched.Refresh(context.Background(), "a"); err != nil {
		t.Fatal(err)
	}
	clock.Advance(61 * time.Second)
	sched.Tick() // both due
	counts := sched.SourceRefreshes()
	if counts["a"] != 2 || counts["b"] != 1 {
		t.Fatalf("SourceRefreshes = %v, want a:2 b:1", counts)
	}

	if !sched.Unregister("a") {
		t.Fatal("Unregister(a) = false, want true")
	}
	if sched.Unregister("a") {
		t.Fatal("second Unregister(a) = true, want false")
	}
	if got := sched.Keys(); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Keys after Unregister = %v, want [b]", got)
	}
	if _, err := sched.Refresh(context.Background(), "a"); err == nil {
		t.Fatal("Refresh of unregistered source succeeded")
	}
	if _, ok := sched.SourceRefreshes()["a"]; ok {
		t.Fatal("SourceRefreshes still reports unregistered key")
	}
}
