package push

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

func testClock() *slurm.SimClock {
	return slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
}

func TestHubVersionsAndHashSuppression(t *testing.T) {
	h := NewHub(testClock())
	s1, fresh := h.Publish("w", "w", []byte(`{"a":1}`), false)
	if !fresh || s1.Version != 1 {
		t.Fatalf("first publish: fresh=%v version=%d", fresh, s1.Version)
	}
	// Identical payload: suppressed, no new version.
	s2, fresh := h.Publish("w", "w", []byte(`{"a":1}`), false)
	if fresh || s2.Version != 1 {
		t.Fatalf("unchanged publish minted a version: fresh=%v version=%d", fresh, s2.Version)
	}
	// Same payload flipping to degraded must mint a new version.
	s3, fresh := h.Publish("w", "w", []byte(`{"a":1}`), true)
	if !fresh || s3.Version != 2 {
		t.Fatalf("degraded flip suppressed: fresh=%v version=%d", fresh, s3.Version)
	}
	if st := h.Stats(); st.Published != 2 || st.Suppressed != 1 {
		t.Fatalf("stats = %+v, want published=2 suppressed=1", st)
	}
}

func TestHubSubscribeFilterAndReplay(t *testing.T) {
	h := NewHub(testClock())
	h.Publish("a", "a", []byte("1"), false) // v1
	h.Publish("b", "b", []byte("2"), false) // v2

	sub := h.Subscribe([]string{"a"})
	defer sub.Close()
	h.Publish("a", "a", []byte("3"), false) // v3
	h.Publish("b", "b", []byte("4"), false) // v4 — not subscribed

	snap, ok := sub.Pop()
	if !ok || snap.Key != "a" || snap.Version != 3 {
		t.Fatalf("Pop = %+v ok=%v, want a v3", snap, ok)
	}
	if _, ok := sub.Pop(); ok {
		t.Fatal("unexpected second pending snapshot")
	}

	// Resume replay: a client that saw v1 gets only newer snapshots of its
	// widgets, ordered by version.
	replay := h.Since(1, []string{"a", "b"})
	if len(replay) != 2 || replay[0].Version != 3 || replay[1].Version != 4 {
		t.Fatalf("Since(1) = %+v", replay)
	}
	if replay := h.Since(4, []string{"a", "b"}); len(replay) != 0 {
		t.Fatalf("Since(head) = %+v, want empty", replay)
	}
}

// TestHubSlowSubscriberCoalesces is the backpressure contract: a subscriber
// that never drains must coalesce to the newest snapshot per widget,
// increment its dropped counter, and never block the publisher or other
// subscribers. Run under -race.
func TestHubSlowSubscriberCoalesces(t *testing.T) {
	h := NewHub(testClock())
	slow := h.Subscribe([]string{"w"})
	fast := h.Subscribe([]string{"w"})
	defer slow.Close()
	defer fast.Close()

	const rounds = 100
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < rounds; i++ {
			h.Publish("w", "w", []byte(fmt.Sprintf(`{"i":%d}`, i)), false)
			// The fast subscriber drains every round.
			if snap, ok := fast.Pop(); !ok || !bytes.Contains(snap.Payload, []byte(fmt.Sprint(i))) {
				t.Errorf("round %d: fast subscriber missed its snapshot", i)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}

	// The slow subscriber holds exactly the newest snapshot.
	snap, ok := slow.Pop()
	if !ok {
		t.Fatal("slow subscriber has nothing pending")
	}
	if want := fmt.Sprintf(`{"i":%d}`, rounds-1); string(snap.Payload) != want {
		t.Fatalf("slow subscriber got %s, want newest %s", snap.Payload, want)
	}
	if _, ok := slow.Pop(); ok {
		t.Fatal("slow subscriber buffered more than the newest snapshot")
	}
	st := slow.Stats()
	if st.Dropped != rounds-1 {
		t.Fatalf("slow dropped = %d, want %d", st.Dropped, rounds-1)
	}
	if st.Slow == 0 {
		t.Fatal("slow counter not incremented")
	}
	if fst := fast.Stats(); fst.Dropped != 0 {
		t.Fatalf("fast subscriber dropped %d snapshots", fst.Dropped)
	}
}

func TestHubConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub(testClock())
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("w%d", g)
			for i := 0; i < 50; i++ {
				h.Publish(key, key, []byte(fmt.Sprintf("%d-%d", g, i)), false)
			}
		}(g)
	}
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sub := h.Subscribe([]string{fmt.Sprintf("w%d", c%4)})
			for i := 0; i < 20; i++ {
				sub.Pop()
			}
			sub.Close()
		}(c)
	}
	wg.Wait()
	if h.SubscriberCount() != 0 {
		t.Fatalf("subscribers leaked: %d", h.SubscriberCount())
	}
}

func TestHubClose(t *testing.T) {
	h := NewHub(testClock())
	sub := h.Subscribe([]string{"w"})
	h.Close()
	select {
	case <-sub.Done():
	default:
		t.Fatal("subscription not closed by hub Close")
	}
	if _, fresh := h.Publish("w", "w", []byte("x"), false); fresh {
		t.Fatal("publish after Close minted a version")
	}
	// Subscribing after close yields an already-done subscription.
	s2 := h.Subscribe([]string{"w"})
	select {
	case <-s2.Done():
	default:
		t.Fatal("post-close subscription not done")
	}
}

func TestSSERoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	if err := enc.WriteComment("hb 1"); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEvent("system_status", 7, []byte(`{"a":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEvent("multi", 8, []byte("line1\nline2")); err != nil {
		t.Fatal(err)
	}
	if err := enc.WriteEvent("shutdown", 0, []byte(`{}`)); err != nil {
		t.Fatal(err)
	}

	dec := NewDecoder(strings.NewReader(buf.String()))
	ev, err := dec.Next()
	if err != nil || ev.Name != "system_status" || ev.ID != 7 || string(ev.Data) != `{"a":1}` {
		t.Fatalf("event 1 = %+v err=%v", ev, err)
	}
	ev, err = dec.Next()
	if err != nil || ev.Name != "multi" || ev.ID != 8 || string(ev.Data) != "line1\nline2" {
		t.Fatalf("event 2 = %+v err=%v", ev, err)
	}
	ev, err = dec.Next()
	if err != nil || ev.Name != "shutdown" {
		t.Fatalf("event 3 = %+v err=%v", ev, err)
	}
	// ID is sticky across frames that omit it, per the SSE spec.
	if ev.ID != 8 || dec.LastID() != 8 {
		t.Fatalf("sticky ID = %d / %d, want 8", ev.ID, dec.LastID())
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("trailing Next err = %v, want EOF", err)
	}
}
