package push

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the Server-Sent Events wire format (the WHATWG
// EventSource framing) for both ends of the stream: the core server encodes
// snapshots with Encoder, and the simulated browser decodes them with
// Decoder. Keeping both here means one definition of the framing and a
// round-trip test in one place.

// Event is one decoded SSE event.
type Event struct {
	// ID is the last "id:" field seen (the snapshot version).
	ID int64
	// Name is the "event:" field — the widget name, or a control event
	// ("heartbeat" comments are skipped by the decoder, "shutdown" is
	// delivered so clients can distinguish clean closes from errors).
	Name string
	// Data is the event payload with the trailing newline removed.
	Data []byte
}

// Encoder writes SSE frames. It is not safe for concurrent use; the SSE
// handler owns one per stream.
type Encoder struct {
	w io.Writer
}

// NewEncoder returns an encoder writing frames to w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// WriteEvent writes one event frame. Multi-line data is split into multiple
// data: fields per the SSE framing rules. id <= 0 omits the id field.
func (e *Encoder) WriteEvent(name string, id int64, data []byte) error {
	var b bytes.Buffer
	if id > 0 {
		fmt.Fprintf(&b, "id: %d\n", id)
	}
	if name != "" {
		fmt.Fprintf(&b, "event: %s\n", name)
	}
	for _, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		b.WriteString("data: ")
		b.Write(line)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := e.w.Write(b.Bytes())
	return err
}

// WriteComment writes a comment frame (": text"), the SSE keep-alive
// heartbeat. Comments are invisible to EventSource clients.
func (e *Encoder) WriteComment(text string) error {
	_, err := fmt.Fprintf(e.w, ": %s\n\n", text)
	return err
}

// Decoder reads SSE frames from a stream.
type Decoder struct {
	r      *bufio.Scanner
	lastID int64
}

// NewDecoder returns a decoder reading from r.
func NewDecoder(r io.Reader) *Decoder {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 4*1024*1024)
	return &Decoder{r: sc}
}

// LastID returns the most recent event ID seen, for Last-Event-ID resume.
func (d *Decoder) LastID() int64 { return d.lastID }

// Next reads the next complete event, skipping comment-only frames
// (heartbeats). It returns io.EOF when the stream ends cleanly.
func (d *Decoder) Next() (Event, error) {
	var (
		ev      Event
		sawData bool
		data    bytes.Buffer
	)
	ev.ID = d.lastID
	for d.r.Scan() {
		line := d.r.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch if the frame carried anything
			// beyond comments.
			if sawData || ev.Name != "" {
				ev.Data = bytes.TrimSuffix(data.Bytes(), []byte("\n"))
				return ev, nil
			}
			ev = Event{ID: d.lastID}
		case strings.HasPrefix(line, ":"):
			// Comment (heartbeat): ignored.
		case strings.HasPrefix(line, "id:"):
			if id, err := strconv.ParseInt(strings.TrimSpace(line[3:]), 10, 64); err == nil {
				d.lastID = id
				ev.ID = id
			}
		case strings.HasPrefix(line, "event:"):
			ev.Name = strings.TrimSpace(line[6:])
		case strings.HasPrefix(line, "data:"):
			sawData = true
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
			data.WriteByte('\n')
		}
	}
	if err := d.r.Err(); err != nil {
		return Event{}, err
	}
	return Event{}, io.EOF
}
