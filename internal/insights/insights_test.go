package insights

import (
	"strings"
	"testing"
	"time"

	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

var t0 = time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)

// row builds an accounting row with sensible defaults.
func row(mutate func(*slurmcli.SacctRow)) slurmcli.SacctRow {
	r := slurmcli.SacctRow{
		JobID: "1000", Name: "batch-0001", User: "u", Account: "a",
		State:      slurm.StateCompleted,
		SubmitTime: t0, StartTime: t0.Add(time.Minute),
		EndTime: t0.Add(time.Hour), Elapsed: 59 * time.Minute,
		TimeLimit: 2 * time.Hour,
		ReqCPUs:   4, AllocCPUs: 4, ReqMemMB: 8192, MaxRSSMB: 6144,
		TotalCPU:       3 * time.Hour, // ~76% cpu eff
		GPUUtilPercent: -1,
	}
	if mutate != nil {
		mutate(&r)
	}
	return r
}

func kinds(fs []Finding) map[string]Finding {
	out := make(map[string]Finding, len(fs))
	for _, f := range fs {
		out[f.Kind] = f
	}
	return out
}

func TestNoFindingsOnHealthyHistory(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 10; i++ {
		rows = append(rows, row(nil))
	}
	if fs := Analyze(rows, DefaultConfig()); len(fs) != 0 {
		t.Fatalf("healthy history produced findings: %+v", fs)
	}
}

func TestRepeatedFailures(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 4; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.Name = "train-run"
			r.State = slurm.StateFailed
			r.ExitCode = 137
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	f, ok := fs["repeated-failures"]
	if !ok {
		t.Fatalf("missing repeated-failures: %+v", fs)
	}
	if f.Severity != "high" || !strings.Contains(f.Title, "137") {
		t.Fatalf("finding = %+v", f)
	}
	if len(f.JobIDs) == 0 {
		t.Fatal("no evidence job IDs")
	}
}

func TestDistinctFailuresDoNotTrigger(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 4; i++ {
		i := i
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.Name = "job" + string(rune('a'+i))
			r.State = slurm.StateFailed
			r.ExitCode = i + 1 // all different
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	if _, ok := fs["repeated-failures"]; ok {
		t.Fatal("distinct failures flagged as repeated")
	}
}

func TestTimeoutChurn(t *testing.T) {
	rows := []slurmcli.SacctRow{
		row(func(r *slurmcli.SacctRow) { r.State = slurm.StateTimeout }),
		row(func(r *slurmcli.SacctRow) { r.State = slurm.StateTimeout }),
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	f, ok := fs["timeout-churn"]
	if !ok || f.Severity != "high" {
		t.Fatalf("findings = %+v", fs)
	}
	if !strings.Contains(f.Recommendation, "checkpoint") {
		t.Fatalf("recommendation = %q", f.Recommendation)
	}
}

func TestChronicCPUOverRequest(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 6; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.TotalCPU = 10 * time.Minute // ~4% of 4 cpus x 59min
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	f, ok := fs["over-request-cpu"]
	if !ok {
		t.Fatalf("findings = %+v", fs)
	}
	if !strings.Contains(f.Recommendation, "fewer cores") {
		t.Fatalf("recommendation = %q", f.Recommendation)
	}
}

func TestChronicMemoryOverRequest(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 6; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.MaxRSSMB = 512 // ~6% of 8 GiB
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	if _, ok := fs["over-request-memory"]; !ok {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestGPUWaste(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 3; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.AllocTRES = slurm.TRES{CPUs: 8, GPUs: 2}
			r.GPUUtilPercent = 8
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	f, ok := fs["gpu-underutilization"]
	if !ok {
		t.Fatalf("findings = %+v", fs)
	}
	if !strings.Contains(f.Title, "idle") {
		t.Fatalf("title = %q", f.Title)
	}
}

func TestGPUHealthyNotFlagged(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 3; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.AllocTRES = slurm.TRES{CPUs: 8, GPUs: 2}
			r.GPUUtilPercent = 85
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	if _, ok := fs["gpu-underutilization"]; ok {
		t.Fatal("healthy GPU usage flagged")
	}
}

func TestLongQueueWaits(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 6; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.StartTime = r.SubmitTime.Add(3 * time.Hour)
			r.EndTime = r.StartTime.Add(time.Hour)
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	if _, ok := fs["long-queue-waits"]; !ok {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestInteractiveIdle(t *testing.T) {
	var rows []slurmcli.SacctRow
	for i := 0; i < 4; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.Comment = "ood:app=jupyter;session=abc"
			r.TotalCPU = 5 * time.Minute // idle
		}))
	}
	fs := kinds(Analyze(rows, DefaultConfig()))
	if _, ok := fs["idle-interactive-sessions"]; !ok {
		t.Fatalf("findings = %+v", fs)
	}
}

func TestFindingsSortedBySeverity(t *testing.T) {
	var rows []slurmcli.SacctRow
	// Trigger a high (timeouts) and an info (idle interactive) finding.
	for i := 0; i < 2; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) { r.State = slurm.StateTimeout }))
	}
	for i := 0; i < 4; i++ {
		rows = append(rows, row(func(r *slurmcli.SacctRow) {
			r.Comment = "ood:app=jupyter;session=x"
			r.TotalCPU = 2 * time.Minute
		}))
	}
	fs := Analyze(rows, DefaultConfig())
	if len(fs) < 2 {
		t.Fatalf("findings = %+v", fs)
	}
	if fs[0].Severity != "high" {
		t.Fatalf("first finding severity = %s", fs[0].Severity)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 2, 3}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Fatalf("empty median = %v", m)
	}
}
