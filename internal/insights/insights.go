// Package insights analyzes a user's job history and produces human-
// readable findings with recommendations — the reproduction's stand-in for
// the "AI-powered analysis of users' jobs" the paper lists as future work
// (§9). The analyzer is deliberately rule-based and deterministic: each
// rule detects one actionable pattern (repeated identical failures, chronic
// over-requesting, long queue waits, GPU waste, timeout churn) and explains
// it in the voice the dashboard's efficiency warnings use.
package insights

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"ooddash/internal/efficiency"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
)

// Severity orders findings for display.
type Severity int

// Severities, most urgent first.
const (
	SeverityHigh Severity = iota
	SeverityMedium
	SeverityInfo
)

// String implements fmt.Stringer.
func (s Severity) String() string {
	switch s {
	case SeverityHigh:
		return "high"
	case SeverityMedium:
		return "medium"
	default:
		return "info"
	}
}

// Finding is one detected pattern with a recommendation.
type Finding struct {
	Kind           string   `json:"kind"`
	Severity       string   `json:"severity"`
	Title          string   `json:"title"`
	Detail         string   `json:"detail"`
	Recommendation string   `json:"recommendation"`
	JobIDs         []string `json:"job_ids,omitempty"`

	severity Severity
}

// Config tunes the rules. The zero value is unusable; use DefaultConfig.
type Config struct {
	// MinJobs gates the statistical rules: patterns need enough samples.
	MinJobs int
	// RepeatedFailureCount triggers the identical-failure rule.
	RepeatedFailureCount int
	// LowEfficiencyPercent is the chronic over-request bound.
	LowEfficiencyPercent float64
	// LongWait flags average queue waits above this.
	LongWait time.Duration
	// GPUWastePercent flags mean GPU utilization below this.
	GPUWastePercent float64
	// TimeoutCount triggers the timeout-churn rule.
	TimeoutCount int
}

// DefaultConfig returns the production rule thresholds.
func DefaultConfig() Config {
	return Config{
		MinJobs:              5,
		RepeatedFailureCount: 3,
		LowEfficiencyPercent: 25,
		LongWait:             time.Hour,
		GPUWastePercent:      30,
		TimeoutCount:         2,
	}
}

// Analyze inspects one user's accounting rows and returns findings sorted
// by severity (most urgent first), then by kind.
func Analyze(rows []slurmcli.SacctRow, cfg Config) []Finding {
	var findings []Finding
	add := func(f Finding) {
		f.Severity = f.severity.String()
		findings = append(findings, f)
	}

	if f, ok := repeatedFailures(rows, cfg); ok {
		add(f)
	}
	if f, ok := timeoutChurn(rows, cfg); ok {
		add(f)
	}
	if f, ok := chronicOverRequest(rows, cfg, "cpu"); ok {
		add(f)
	}
	if f, ok := chronicOverRequest(rows, cfg, "memory"); ok {
		add(f)
	}
	if f, ok := gpuWaste(rows, cfg); ok {
		add(f)
	}
	if f, ok := longQueueWaits(rows, cfg); ok {
		add(f)
	}
	if f, ok := interactiveIdle(rows, cfg); ok {
		add(f)
	}

	sort.SliceStable(findings, func(i, j int) bool {
		if findings[i].severity != findings[j].severity {
			return findings[i].severity < findings[j].severity
		}
		return findings[i].Kind < findings[j].Kind
	})
	return findings
}

// sampleIDs collects up to five display IDs as evidence.
func sampleIDs(rows []*slurmcli.SacctRow) []string {
	out := make([]string, 0, 5)
	for _, r := range rows {
		if len(out) == 5 {
			break
		}
		out = append(out, r.JobID)
	}
	return out
}

// repeatedFailures detects N+ failures sharing a job-name prefix and exit
// code — usually the same broken script resubmitted.
func repeatedFailures(rows []slurmcli.SacctRow, cfg Config) (Finding, bool) {
	type key struct {
		name string
		code int
	}
	groups := make(map[key][]*slurmcli.SacctRow)
	for i := range rows {
		r := &rows[i]
		if r.State != slurm.StateFailed {
			continue
		}
		name := r.Name
		if idx := strings.IndexAny(name, "-_"); idx > 0 {
			name = name[:idx]
		}
		k := key{name: name, code: r.ExitCode}
		groups[k] = append(groups[k], r)
	}
	var worstKey key
	var worst []*slurmcli.SacctRow
	for k, g := range groups {
		if len(g) > len(worst) {
			worst, worstKey = g, k
		}
	}
	if len(worst) < cfg.RepeatedFailureCount {
		return Finding{}, false
	}
	return Finding{
		Kind:     "repeated-failures",
		severity: SeverityHigh,
		Title:    fmt.Sprintf("%d \"%s\" jobs failed with exit code %d", len(worst), worstKey.name, worstKey.code),
		Detail: fmt.Sprintf(
			"Jobs named %q failed %d times with the same exit code (%d), which usually means the same error is recurring rather than a transient problem.",
			worstKey.name, len(worst), worstKey.code),
		Recommendation: "Check the error log of one failed job (Job Overview → Error tab) before resubmitting; repeated identical failures waste your queue priority.",
		JobIDs:         sampleIDs(worst),
	}, true
}

// timeoutChurn detects jobs repeatedly hitting their wall-time limit.
func timeoutChurn(rows []slurmcli.SacctRow, cfg Config) (Finding, bool) {
	var hits []*slurmcli.SacctRow
	for i := range rows {
		if rows[i].State == slurm.StateTimeout {
			hits = append(hits, &rows[i])
		}
	}
	if len(hits) < cfg.TimeoutCount {
		return Finding{}, false
	}
	return Finding{
		Kind:           "timeout-churn",
		severity:       SeverityHigh,
		Title:          fmt.Sprintf("%d jobs were killed at their time limit", len(hits)),
		Detail:         "These jobs ran until the scheduler cancelled them, so any un-checkpointed work was lost.",
		Recommendation: "Either request a longer time limit up front or add periodic checkpointing so timed-out work can resume.",
		JobIDs:         sampleIDs(hits),
	}, true
}

// chronicOverRequest detects consistently low CPU or memory efficiency.
func chronicOverRequest(rows []slurmcli.SacctRow, cfg Config, kind string) (Finding, bool) {
	var (
		vals    []float64
		samples []*slurmcli.SacctRow
	)
	for i := range rows {
		r := &rows[i]
		m := efficiency.Compute(r)
		v := m.CPUPercent
		if kind == "memory" {
			v = m.MemoryPercent
		}
		if v < 0 {
			continue
		}
		vals = append(vals, v)
		if v < cfg.LowEfficiencyPercent {
			samples = append(samples, r)
		}
	}
	if len(vals) < cfg.MinJobs {
		return Finding{}, false
	}
	med := median(vals)
	if med >= cfg.LowEfficiencyPercent {
		return Finding{}, false
	}
	resource, fix := "CPUs", "ask for fewer cores"
	if kind == "memory" {
		resource, fix = "memory", "request less memory"
	}
	return Finding{
		Kind:     "over-request-" + kind,
		severity: SeverityMedium,
		Title:    fmt.Sprintf("Median %s efficiency is %.0f%%", resource, med),
		Detail: fmt.Sprintf(
			"Across %d measured jobs, the median share of requested %s actually used was %.0f%%.",
			len(vals), resource, med),
		Recommendation: fmt.Sprintf(
			"Right-size your requests: %s and your jobs will schedule sooner while freeing resources for others.", fix),
		JobIDs: sampleIDs(samples),
	}, true
}

// gpuWaste detects GPU jobs whose mean utilization stays low — the §9 GPU
// metric feeding an actionable recommendation.
func gpuWaste(rows []slurmcli.SacctRow, cfg Config) (Finding, bool) {
	var (
		vals    []float64
		samples []*slurmcli.SacctRow
	)
	for i := range rows {
		r := &rows[i]
		if r.AllocTRES.GPUs == 0 || r.GPUUtilPercent < 0 {
			continue
		}
		vals = append(vals, r.GPUUtilPercent)
		if r.GPUUtilPercent < cfg.GPUWastePercent {
			samples = append(samples, r)
		}
	}
	if len(vals) < 2 || len(samples) == 0 {
		return Finding{}, false
	}
	med := median(vals)
	if med >= cfg.GPUWastePercent {
		return Finding{}, false
	}
	return Finding{
		Kind:     "gpu-underutilization",
		severity: SeverityMedium,
		Title:    fmt.Sprintf("GPUs sit idle: median utilization %.0f%%", med),
		Detail: fmt.Sprintf(
			"%d of your %d GPU jobs kept their GPUs under %.0f%% busy on average.",
			len(samples), len(vals), cfg.GPUWastePercent),
		Recommendation: "Profile the data pipeline (GPU jobs often starve on input), or move light workloads to CPU partitions where queues are shorter.",
		JobIDs:         sampleIDs(samples),
	}, true
}

// longQueueWaits reports when jobs spend long periods queued.
func longQueueWaits(rows []slurmcli.SacctRow, cfg Config) (Finding, bool) {
	var (
		waits   []float64
		samples []*slurmcli.SacctRow
	)
	for i := range rows {
		r := &rows[i]
		if r.StartTime.IsZero() {
			continue
		}
		w := r.StartTime.Sub(r.SubmitTime)
		waits = append(waits, w.Seconds())
		if w > cfg.LongWait {
			samples = append(samples, r)
		}
	}
	if len(waits) < cfg.MinJobs {
		return Finding{}, false
	}
	medWait := time.Duration(median(waits)) * time.Second
	if medWait <= cfg.LongWait {
		return Finding{}, false
	}
	return Finding{
		Kind:           "long-queue-waits",
		severity:       SeverityInfo,
		Title:          fmt.Sprintf("Jobs queue for a median of %v before starting", medWait.Round(time.Minute)),
		Detail:         fmt.Sprintf("%d jobs waited longer than %v in the queue.", len(samples), cfg.LongWait),
		Recommendation: "Smaller CPU/time requests schedule sooner; the standby partition can also backfill idle nodes if your work tolerates preemption.",
		JobIDs:         sampleIDs(samples),
	}, true
}

// interactiveIdle flags interactive app sessions that barely used their
// allocation — the paper's canonical Jupyter example (§4.3).
func interactiveIdle(rows []slurmcli.SacctRow, cfg Config) (Finding, bool) {
	var samples []*slurmcli.SacctRow
	total := 0
	for i := range rows {
		r := &rows[i]
		if _, _, ok := r.SessionInfo(); !ok {
			continue
		}
		total++
		m := efficiency.Compute(r)
		if m.CPUPercent >= 0 && m.CPUPercent < cfg.LowEfficiencyPercent {
			samples = append(samples, r)
		}
	}
	if total < 3 || len(samples)*2 < total {
		return Finding{}, false
	}
	return Finding{
		Kind:           "idle-interactive-sessions",
		severity:       SeverityInfo,
		Title:          fmt.Sprintf("%d of %d interactive sessions were mostly idle", len(samples), total),
		Detail:         "Interactive apps (Jupyter, RStudio, ...) hold their full allocation even while you read or type.",
		Recommendation: "Request fewer cores and shorter limits for interactive work; you can always start a bigger session when you need it.",
		JobIDs:         sampleIDs(samples),
	}, true
}

// median returns the middle value; vals is modified (sorted).
func median(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sort.Float64s(vals)
	mid := len(vals) / 2
	if len(vals)%2 == 1 {
		return vals[mid]
	}
	return (vals[mid-1] + vals[mid]) / 2
}
