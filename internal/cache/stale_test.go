package cache

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

var errDown = errors.New("slurmctld down")

func TestFetchStaleServesLastKnownGoodOnError(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)

	res, err := c.FetchStale("k", time.Minute, 10*time.Minute, func() (any, error) { return "good", nil })
	if err != nil || res.Value != "good" || res.Degraded {
		t.Fatalf("warm fetch: %+v %v", res, err)
	}

	// Past TTL but inside the grace window: failed recompute serves stale.
	clock.Advance(2 * time.Minute)
	res, err = c.FetchStale("k", time.Minute, 10*time.Minute, func() (any, error) { return nil, errDown })
	if err != nil {
		t.Fatalf("stale fetch surfaced error: %v", err)
	}
	if res.Value != "good" || !res.Degraded {
		t.Fatalf("stale fetch = %+v, want degraded last-known-good", res)
	}
	if res.Age != 2*time.Minute {
		t.Fatalf("age = %v, want 2m", res.Age)
	}
	st := c.Stats()
	if st.StaleServed != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Past the grace window the error surfaces.
	clock.Advance(10 * time.Minute)
	_, err = c.FetchStale("k", time.Minute, 10*time.Minute, func() (any, error) { return nil, errDown })
	if !errors.Is(err, errDown) {
		t.Fatalf("post-grace fetch err = %v, want errDown", err)
	}
}

func TestFetchStaleColdCacheSurfacesError(t *testing.T) {
	c := New(newFakeClock())
	_, err := c.FetchStale("cold", time.Minute, time.Hour, func() (any, error) { return nil, errDown })
	if !errors.Is(err, errDown) {
		t.Fatalf("cold fetch err = %v, want errDown", err)
	}
	if st := c.Stats(); st.StaleServed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFetchStaleRecoveryServesFresh(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	must := func(v any, want string, degraded bool) {
		t.Helper()
		res, err := c.FetchStale("k", time.Minute, time.Hour, func() (any, error) { return v, nil })
		if err != nil || res.Value != want || res.Degraded != degraded {
			t.Fatalf("fetch = %+v %v, want %q degraded=%v", res, err, want, degraded)
		}
	}
	must("v1", "v1", false)
	clock.Advance(2 * time.Minute)
	res, err := c.FetchStale("k", time.Minute, time.Hour, func() (any, error) { return nil, errDown })
	if err != nil || !res.Degraded {
		t.Fatalf("outage fetch = %+v %v", res, err)
	}
	// Upstream recovers: the next fetch recomputes and is no longer degraded.
	must("v2", "v2", false)
	if res, _ := c.FetchStale("k", time.Minute, time.Hour, func() (any, error) { return nil, errors.New("unused") }); res.Value != "v2" || res.Degraded {
		t.Fatalf("fresh entry not cached: %+v", res)
	}
}

type openErr struct{ error }

func (openErr) BreakerOpen() bool { return true }

func TestBreakerOpenErrorsAreCounted(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	if _, err := c.FetchStale("k", time.Minute, time.Hour, func() (any, error) { return "v", nil }); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	res, err := c.FetchStale("k", time.Minute, time.Hour, func() (any, error) {
		return nil, openErr{errors.New("circuit open")}
	})
	if err != nil || !res.Degraded {
		t.Fatalf("fetch = %+v %v", res, err)
	}
	if st := c.Stats(); st.BreakerOpen != 1 || st.StaleServed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFetchZeroTTLBypassesStorage(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	var calls int
	for i := 0; i < 3; i++ {
		v, err := c.Fetch("uncached", 0, func() (any, error) { calls++; return calls, nil })
		if err != nil || v != i+1 {
			t.Fatalf("fetch %d = %v %v", i, v, err)
		}
	}
	if calls != 3 {
		t.Fatalf("compute ran %d times, want 3 (ttl<=0 must not cache)", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("ttl<=0 stored %d entries", c.Len())
	}
	if _, err := c.Fetch("uncached", -time.Second, func() (any, error) { return nil, errDown }); !errors.Is(err, errDown) {
		t.Fatalf("negative ttl err = %v", err)
	}
	st := c.Stats()
	if st.Misses != 4 || st.Errors != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPurgeKeepsGracedEntries(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	if _, err := c.FetchStale("graced", time.Minute, time.Hour, func() (any, error) { return "v", nil }); err != nil {
		t.Fatal(err)
	}
	c.Set("plain", "v", time.Minute)

	clock.Advance(2 * time.Minute)
	if removed := c.Purge(); removed != 1 {
		t.Fatalf("purge removed %d, want only the plain entry", removed)
	}
	// The graced entry still serves as a degraded fallback.
	res, err := c.FetchStale("graced", time.Minute, time.Hour, func() (any, error) { return nil, errDown })
	if err != nil || !res.Degraded {
		t.Fatalf("post-purge fetch = %+v %v", res, err)
	}

	clock.Advance(2 * time.Hour)
	if removed := c.Purge(); removed != 1 {
		t.Fatalf("purge after grace removed %d, want 1", removed)
	}
}

// TestSingleflightUnderError: N goroutines racing one failing compute observe
// exactly one compute call, every goroutine gets the error, and — because
// errors are not cached — a subsequent Fetch retries the compute.
func TestSingleflightUnderError(t *testing.T) {
	c := New(newFakeClock())
	const n = 24
	var calls int32
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, errs[i] = c.Fetch("failing", time.Minute, func() (any, error) {
				calls++
				close(started)
				<-release // hold the flight open until all waiters queue
				return nil, errDown
			})
		}()
	}
	<-started
	// Wait until every other goroutine is parked on the in-flight call.
	for c.Stats().Collapsed != n-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1 (singleflight must collapse under error)", calls)
	}
	for i, err := range errs {
		if !errors.Is(err, errDown) {
			t.Fatalf("goroutine %d err = %v, want errDown", i, err)
		}
	}
	// The error was not cached: the next Fetch retries the compute.
	v, err := c.Fetch("failing", time.Minute, func() (any, error) { return "recovered", nil })
	if err != nil || v != "recovered" {
		t.Fatalf("retry fetch = %v %v", v, err)
	}
	if st := c.Stats(); st.Errors != 1 || st.Collapsed != n-1 || st.Misses != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFetchClearPurgeRace exercises Fetch, FetchStale, Clear, Purge, Set and
// Delete concurrently; run under -race it guards the locking discipline.
func TestFetchClearPurgeRace(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				key := fmt.Sprintf("k%d", (g+i)%4)
				if i%5 == 0 {
					_, _ = c.FetchStale(key, time.Second, time.Minute, func() (any, error) { return nil, errDown })
				} else {
					_, _ = c.Fetch(key, time.Second, func() (any, error) { return i, nil })
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 4 {
			case 0:
				c.Purge()
			case 1:
				c.Clear()
			case 2:
				c.Set("k0", "set", time.Second)
			case 3:
				c.Delete("k1")
			}
			clock.Advance(200 * time.Millisecond)
		}
	}()

	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}
