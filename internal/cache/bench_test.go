package cache

import (
	"fmt"
	"testing"
	"time"
)

func BenchmarkFetchHit(b *testing.B) {
	c := New(nil)
	if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 42, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 0, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchMiss(b *testing.B) {
	c := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := c.Fetch(key, time.Hour, func() (any, error) { return i, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchHitParallel(b *testing.B) {
	c := New(nil)
	if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 42, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 0, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPurge(b *testing.B) {
	clock := newFakeClock()
	c := New(clock)
	for i := 0; i < 10_000; i++ {
		c.Set(fmt.Sprintf("k%d", i), i, time.Hour)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Purge() // nothing expired: worst-case full scan
	}
}
