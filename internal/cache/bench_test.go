package cache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func BenchmarkFetchHit(b *testing.B) {
	c := New(nil)
	if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 42, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 0, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchMiss(b *testing.B) {
	c := New(nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := c.Fetch(key, time.Hour, func() (any, error) { return i, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFetchHitParallel(b *testing.B) {
	c := New(nil)
	if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 42, nil }); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := c.Fetch("k", time.Hour, func() (any, error) { return 0, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkPurge(b *testing.B) {
	clock := newFakeClock()
	c := New(clock)
	for i := 0; i < 10_000; i++ {
		c.Set(fmt.Sprintf("k%d", i), i, time.Hour)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Purge() // nothing expired: worst-case full scan
	}
}

// --- Sharded vs single-lock contention ---------------------------------------

// singleLockCache is a reference of the pre-sharding design — one mutex in
// front of one map, with expiry check and stats bumped under that same lock
// — kept here so the contention benchmarks measure the sharding win against
// the real alternative, not a strawman bare map.
type singleLockCache struct {
	mu      sync.Mutex
	entries map[string]singleEntry
	hits    int64
	misses  int64
}

type singleEntry struct {
	value     any
	expiresAt time.Time
}

func (c *singleLockCache) fetch(key string, ttl time.Duration, compute func() any) any {
	now := time.Now()
	c.mu.Lock()
	if e, ok := c.entries[key]; ok && now.Before(e.expiresAt) {
		c.hits++
		c.mu.Unlock()
		return e.value
	}
	c.misses++
	c.mu.Unlock()
	v := compute()
	c.mu.Lock()
	c.entries[key] = singleEntry{value: v, expiresAt: now.Add(ttl)}
	c.mu.Unlock()
	return v
}

// benchKeys is a realistic mixed key population (several widgets x users).
var benchKeys = func() []string {
	keys := make([]string, 64)
	for i := range keys {
		keys[i] = fmt.Sprintf("widget%d:user%d", i%8, i)
	}
	return keys
}()

func BenchmarkShardedHitParallelMultiKey(b *testing.B) {
	c := New(nil)
	for _, k := range benchKeys {
		c.Set(k, k, time.Hour)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := benchKeys[i&(len(benchKeys)-1)]
			i++
			if _, err := c.Fetch(key, time.Hour, func() (any, error) { return nil, nil }); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkSingleLockHitParallelMultiKey(b *testing.B) {
	c := &singleLockCache{entries: make(map[string]singleEntry)}
	for _, k := range benchKeys {
		c.entries[k] = singleEntry{value: k, expiresAt: time.Now().Add(time.Hour)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := benchKeys[i&(len(benchKeys)-1)]
			i++
			if v := c.fetch(key, time.Hour, func() any { return nil }); v == nil {
				b.Fatal("miss")
			}
		}
	})
}
