package cache_test

import (
	"fmt"
	"time"

	"ooddash/internal/cache"
)

// Fetch computes a value once and serves it from cache until the TTL
// expires — the Rails.cache.fetch pattern the dashboard backend uses in
// front of every Slurm command.
func ExampleCache_Fetch() {
	c := cache.New(nil)
	computes := 0
	expensiveSlurmQuery := func() (any, error) {
		computes++
		return "squeue output", nil
	}

	for i := 0; i < 3; i++ {
		v, _ := c.Fetch("recent_jobs:ada", 30*time.Second, expensiveSlurmQuery)
		fmt.Println(v)
	}
	fmt.Println("computed", computes, "time(s)")
	// Output:
	// squeue output
	// squeue output
	// squeue output
	// computed 1 time(s)
}
