package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// fakeClock is a minimal manual clock for cache tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestFetchCachesWithinTTL(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	calls := 0
	get := func() (any, error) { calls++; return calls, nil }

	v1, err := c.Fetch("k", 30*time.Second, get)
	if err != nil || v1.(int) != 1 {
		t.Fatalf("first fetch = %v, %v", v1, err)
	}
	clock.Advance(29 * time.Second)
	v2, _ := c.Fetch("k", 30*time.Second, get)
	if v2.(int) != 1 || calls != 1 {
		t.Fatalf("second fetch recomputed: v=%v calls=%d", v2, calls)
	}
	clock.Advance(2 * time.Second)
	v3, _ := c.Fetch("k", 30*time.Second, get)
	if v3.(int) != 2 || calls != 2 {
		t.Fatalf("expired fetch did not recompute: v=%v calls=%d", v3, calls)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Stale != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFetchDistinctKeys(t *testing.T) {
	c := New(newFakeClock())
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		want := i
		v, err := c.Fetch(key, time.Minute, func() (any, error) { return want, nil })
		if err != nil || v.(int) != want {
			t.Fatalf("fetch %s = %v, %v", key, v, err)
		}
	}
	if c.Len() != 10 {
		t.Fatalf("len = %d, want 10", c.Len())
	}
}

func TestFetchErrorNotCached(t *testing.T) {
	c := New(newFakeClock())
	boom := errors.New("slurm timeout")
	calls := 0
	_, err := c.Fetch("k", time.Minute, func() (any, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.Fetch("k", time.Minute, func() (any, error) { calls++; return "ok", nil })
	if err != nil || v != "ok" || calls != 2 {
		t.Fatalf("retry: v=%v err=%v calls=%d", v, err, calls)
	}
	if st := c.Stats(); st.Errors != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFetchSingleflightCollapsesConcurrentMisses(t *testing.T) {
	c := New(nil) // real clock: we need real goroutine interleaving
	var computes int32
	started := make(chan struct{})
	release := make(chan struct{})
	compute := func() (any, error) {
		atomic.AddInt32(&computes, 1)
		close(started)
		<-release
		return "value", nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]any, waiters)
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], _ = c.Fetch("k", time.Minute, compute)
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _ = c.Fetch("k", time.Minute, func() (any, error) {
				atomic.AddInt32(&computes, 1)
				return "wrong", nil
			})
		}(i)
	}
	// Give the waiters a moment to attach to the in-flight call; they either
	// collapse onto it or (rarely, if scheduled after completion) hit cache.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := atomic.LoadInt32(&computes); got != 1 {
		t.Fatalf("computes = %d, want 1 (singleflight)", got)
	}
	for i, r := range results {
		if r != "value" {
			t.Fatalf("result[%d] = %v", i, r)
		}
	}
}

func TestDisabledCacheAlwaysComputes(t *testing.T) {
	c := New(newFakeClock())
	c.Disabled = true
	calls := 0
	for i := 0; i < 3; i++ {
		if _, err := c.Fetch("k", time.Hour, func() (any, error) { calls++; return calls, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
}

func TestGetSetDelete(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get on empty cache returned ok")
	}
	c.Set("k", 42, time.Minute)
	if v, ok := c.Get("k"); !ok || v.(int) != 42 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	clock.Advance(2 * time.Minute)
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get returned expired entry")
	}
	c.Set("k", 43, time.Minute)
	c.Delete("k")
	if _, ok := c.Get("k"); ok {
		t.Fatal("Get returned deleted entry")
	}
}

func TestPurge(t *testing.T) {
	clock := newFakeClock()
	c := New(clock)
	c.Set("short", 1, time.Second)
	c.Set("long", 2, time.Hour)
	clock.Advance(time.Minute)
	if removed := c.Purge(); removed != 1 {
		t.Fatalf("purged = %d, want 1", removed)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestClear(t *testing.T) {
	c := New(newFakeClock())
	c.Set("a", 1, time.Hour)
	if _, err := c.Fetch("a", time.Hour, func() (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatal("entries survive Clear")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats survive Clear: %+v", st)
	}
}

func TestHitRate(t *testing.T) {
	if got := (Stats{}).HitRate(); got != 0 {
		t.Fatalf("empty hit rate = %v", got)
	}
	if got := (Stats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}

// Property: a value fetched at time T is returned unchanged by any fetch
// before T+TTL and recomputed at or after T+TTL.
func TestTTLBoundaryProperty(t *testing.T) {
	f := func(ttlSec uint8, stepSec uint8) bool {
		ttl := time.Duration(int(ttlSec)%300+1) * time.Second
		step := time.Duration(int(stepSec)%600) * time.Second
		clock := newFakeClock()
		c := New(clock)
		calls := 0
		get := func() (any, error) { calls++; return calls, nil }
		if _, err := c.Fetch("k", ttl, get); err != nil {
			return false
		}
		clock.Advance(step)
		v, err := c.Fetch("k", ttl, get)
		if err != nil {
			return false
		}
		if step < ttl {
			return v.(int) == 1 && calls == 1
		}
		return v.(int) == 2 && calls == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
