// Package cache provides the server-side TTL cache the dashboard backend
// uses in front of Slurm commands and external APIs, mirroring the Ruby on
// Rails in-memory cache (`Rails.cache.fetch(key, expires_in:)`) the paper's
// backend relies on (§2.4 Performance).
//
// Beyond plain expiry, Fetch collapses concurrent misses for the same key
// into a single computation (singleflight), so a burst of users refreshing
// the dashboard costs one Slurm query, not N — the stampede protection the
// paper's caching design implies.
//
// FetchStale adds stale-while-error: an expired entry is retained for a
// configurable grace window past its TTL, and when the recompute fails the
// last-known-good value is served flagged as degraded instead of surfacing
// the upstream error. This is what keeps dashboard widgets populated through
// a slurmctld outage.
package cache

import (
	"errors"
	"sync"
	"time"
)

// Clock supplies the current time; it matches slurm.Clock so tests can share
// one simulated clock across the whole stack.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits        int64 // Fetch served from a live entry
	Misses      int64 // Fetch computed a new value
	Stale       int64 // misses caused by an expired entry (subset of Misses)
	Collapsed   int64 // concurrent Fetch calls that waited on another's compute
	Errors      int64 // compute functions that returned an error
	StaleServed int64 // degraded responses served from an expired entry after a compute error
	BreakerOpen int64 // compute errors that were circuit-breaker short-circuits
}

// breakerOpenError is how the cache recognizes a short-circuit from the
// resilience layer without importing it: any error in the chain exposing
// this marker method counts toward Stats.BreakerOpen.
type breakerOpenError interface {
	error
	BreakerOpen() bool
}

type entry struct {
	value      any
	storedAt   time.Time
	expiresAt  time.Time // fresh until here
	staleUntil time.Time // then servable as degraded until here
}

type call struct {
	wg    sync.WaitGroup
	value any
	err   error
}

// Result is the outcome of a FetchStale: the value plus whether it was
// served stale after a compute error, and how old it is.
type Result struct {
	Value any
	// Degraded is true when the value is a retained last-known-good served
	// because recomputing failed.
	Degraded bool
	// Age is how long ago the value was computed.
	Age time.Duration
}

// Cache is a TTL key-value cache with singleflight miss collapsing. The zero
// value is not usable; use New. All methods are safe for concurrent use.
//
// When Disabled is set every Fetch recomputes — used by the ablation
// benchmarks that reproduce the paper's cache-off comparison.
type Cache struct {
	Disabled bool

	mu      sync.Mutex
	entries map[string]entry
	calls   map[string]*call
	clock   Clock
	stats   Stats
}

// New returns an empty cache reading time from clock (nil means wall clock).
func New(clock Clock) *Cache {
	if clock == nil {
		clock = realClock{}
	}
	return &Cache{
		entries: make(map[string]entry),
		calls:   make(map[string]*call),
		clock:   clock,
	}
}

// Fetch returns the cached value for key, computing and storing it with the
// given TTL on a miss. Concurrent misses for the same key share a single
// computation. Compute errors are returned to every waiter and nothing is
// cached, so the next Fetch retries. A ttl <= 0 bypasses storage entirely:
// the compute runs on every call and its result is never cached.
func (c *Cache) Fetch(key string, ttl time.Duration, compute func() (any, error)) (any, error) {
	res, err := c.FetchStale(key, ttl, 0, compute)
	return res.Value, err
}

// FetchStale is Fetch with a stale-while-error grace window: after an entry
// expires it is retained for a further staleFor, and if recomputing fails
// while a retained value exists, that value is returned with
// Result.Degraded set and the error suppressed. Only a cold cache (or an
// entry past its grace window) surfaces the compute error.
func (c *Cache) FetchStale(key string, ttl, staleFor time.Duration, compute func() (any, error)) (Result, error) {
	if c.Disabled {
		v, err := compute()
		return Result{Value: v}, err
	}
	now := c.clock.Now()

	c.mu.Lock()
	if ttl <= 0 {
		// Caching disabled for this key: never store, never serve stale.
		c.stats.Misses++
		c.mu.Unlock()
		v, err := compute()
		if err != nil {
			c.mu.Lock()
			c.stats.Errors++
			c.mu.Unlock()
			return Result{}, err
		}
		return Result{Value: v}, nil
	}
	if e, ok := c.entries[key]; ok {
		if now.Before(e.expiresAt) {
			c.stats.Hits++
			c.mu.Unlock()
			return Result{Value: e.value, Age: now.Sub(e.storedAt)}, nil
		}
		// Expired: count the stale miss but keep the entry — it is the
		// last-known-good fallback if the recompute fails.
		c.stats.Stale++
	}
	if inflight, ok := c.calls[key]; ok {
		c.stats.Collapsed++
		c.mu.Unlock()
		inflight.wg.Wait()
		if inflight.err != nil {
			return c.serveStale(key, inflight.err)
		}
		return Result{Value: inflight.value}, nil
	}
	c.stats.Misses++
	cl := &call{}
	cl.wg.Add(1)
	c.calls[key] = cl
	c.mu.Unlock()

	cl.value, cl.err = compute()
	cl.wg.Done()

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil {
		done := c.clock.Now()
		c.entries[key] = entry{
			value:      cl.value,
			storedAt:   done,
			expiresAt:  done.Add(ttl),
			staleUntil: done.Add(ttl + staleFor),
		}
		c.mu.Unlock()
		return Result{Value: cl.value}, nil
	}
	c.stats.Errors++
	c.mu.Unlock()
	return c.serveStale(key, cl.err)
}

// serveStale falls back to a retained expired entry after a compute error,
// returning it flagged degraded; when no servable entry exists the error
// surfaces unchanged.
func (c *Cache) serveStale(key string, err error) (Result, error) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	var boe breakerOpenError
	if errors.As(err, &boe) && boe.BreakerOpen() {
		c.stats.BreakerOpen++
	}
	e, ok := c.entries[key]
	if !ok || !now.Before(e.staleUntil) {
		return Result{}, err
	}
	c.stats.StaleServed++
	return Result{Value: e.value, Degraded: true, Age: now.Sub(e.storedAt)}, nil
}

// Get returns the live (unexpired) value for key, if any.
func (c *Cache) Get(key string) (any, bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !now.Before(e.expiresAt) {
		return nil, false
	}
	return e.value, true
}

// Set stores value under key with the given TTL, replacing any entry. Values
// stored with Set have no stale grace window.
func (c *Cache) Set(key string, value any, ttl time.Duration) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = entry{value: value, storedAt: now, expiresAt: now.Add(ttl), staleUntil: now.Add(ttl)}
}

// Delete removes key.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

// Clear removes every entry and resets statistics.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]entry)
	c.stats = Stats{}
}

// Purge drops entries past their stale grace window and reports how many
// were removed. Expired-but-graced entries survive: they are still servable
// as degraded fallbacks. Long-lived servers call this periodically (the
// Rails cache does the same lazily).
func (c *Cache) Purge() int {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for k, e := range c.entries {
		if !now.Before(e.staleUntil) {
			delete(c.entries, k)
			removed++
		}
	}
	return removed
}

// Len returns the number of stored entries, including expired ones not yet
// purged.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a copy of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// HitRate returns hits / (hits + misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
