// Package cache provides the server-side TTL cache the dashboard backend
// uses in front of Slurm commands and external APIs, mirroring the Ruby on
// Rails in-memory cache (`Rails.cache.fetch(key, expires_in:)`) the paper's
// backend relies on (§2.4 Performance).
//
// Beyond plain expiry, Fetch collapses concurrent misses for the same key
// into a single computation (singleflight), so a burst of users refreshing
// the dashboard costs one Slurm query, not N — the stampede protection the
// paper's caching design implies.
//
// FetchStale adds stale-while-error: an expired entry is retained for a
// configurable grace window past its TTL, and when the recompute fails the
// last-known-good value is served flagged as degraded instead of surfacing
// the upstream error. This is what keeps dashboard widgets populated through
// a slurmctld outage.
//
// The cache is sharded: keys hash (FNV-1a) onto one of 16 shards, each with
// its own lock, and the statistics counters are atomics, so concurrent
// widget traffic on a hot cache no longer serializes on a single mutex the
// way the original implementation did. Every stored value also carries a
// cache-wide revision number (Result.Rev) that changes exactly when the
// value is recomputed — the handle the rendered-response layer uses to know
// its materialized JSON bytes are still current without comparing values.
package cache

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ooddash/internal/trace"
)

// Clock supplies the current time; it matches slurm.Clock so tests can share
// one simulated clock across the whole stack.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits        int64 // Fetch served from a live entry
	Misses      int64 // Fetch computed a new value
	Stale       int64 // misses caused by an expired entry (subset of Misses)
	Collapsed   int64 // concurrent Fetch calls that waited on another's compute
	Errors      int64 // compute functions that returned an error
	StaleServed int64 // degraded responses served from an expired entry after a compute error
	BreakerOpen int64 // compute errors that were circuit-breaker short-circuits
}

// counters is the live, atomically updated form of Stats.
type counters struct {
	hits        atomic.Int64
	misses      atomic.Int64
	stale       atomic.Int64
	collapsed   atomic.Int64
	errors      atomic.Int64
	staleServed atomic.Int64
	breakerOpen atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Stale:       c.stale.Load(),
		Collapsed:   c.collapsed.Load(),
		Errors:      c.errors.Load(),
		StaleServed: c.staleServed.Load(),
		BreakerOpen: c.breakerOpen.Load(),
	}
}

func (c *counters) reset() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.stale.Store(0)
	c.collapsed.Store(0)
	c.errors.Store(0)
	c.staleServed.Store(0)
	c.breakerOpen.Store(0)
}

// breakerOpenError is how the cache recognizes a short-circuit from the
// resilience layer without importing it: any error in the chain exposing
// this marker method counts toward Stats.BreakerOpen.
type breakerOpenError interface {
	error
	BreakerOpen() bool
}

type entry struct {
	value      any
	rev        uint64    // cache-wide revision, new on every store
	storedAt   time.Time
	expiresAt  time.Time // fresh until here
	staleUntil time.Time // then servable as degraded until here
}

type call struct {
	wg    sync.WaitGroup
	value any
	rev   uint64
	err   error
}

// Result is the outcome of a FetchStale: the value plus whether it was
// served stale after a compute error, and how old it is.
type Result struct {
	Value any
	// Degraded is true when the value is a retained last-known-good served
	// because recomputing failed.
	Degraded bool
	// Age is how long ago the value was computed.
	Age time.Duration
	// Rev is the stored entry's revision: a nonzero cache-wide sequence
	// number minted when the value was (re)computed. Two Results with equal
	// Rev carry the same stored value, so anything derived from it (e.g. a
	// materialized JSON encoding) can be reused without comparison. Zero
	// means the value was not served from a stored entry (Disabled, ttl<=0).
	Rev uint64
}

// numShards is the shard count; a power of two so the hash maps to a shard
// with a mask. 16 shards keeps the worst-case collision odds low for the
// dashboard's few-hundred-key working set while staying cheap to iterate.
const numShards = 16

// shard is one lock domain: a fraction of the key space with its own entry
// and in-flight call tables.
type shard struct {
	mu      sync.Mutex
	entries map[string]entry
	calls   map[string]*call
}

// Cache is a TTL key-value cache with singleflight miss collapsing. The zero
// value is not usable; use New. All methods are safe for concurrent use.
//
// When Disabled is set every Fetch recomputes — used by the ablation
// benchmarks that reproduce the paper's cache-off comparison.
type Cache struct {
	Disabled bool

	clock  Clock
	rev    atomic.Uint64
	stats  counters
	shards [numShards]shard
}

// New returns an empty cache reading time from clock (nil means wall clock).
func New(clock Clock) *Cache {
	if clock == nil {
		clock = realClock{}
	}
	c := &Cache{clock: clock}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]entry)
		c.shards[i].calls = make(map[string]*call)
	}
	return c
}

// shardFor hashes key (inline FNV-1a, no allocation) onto its shard.
func (c *Cache) shardFor(key string) *shard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h&(numShards-1)]
}

// Fetch returns the cached value for key, computing and storing it with the
// given TTL on a miss. Concurrent misses for the same key share a single
// computation. Compute errors are returned to every waiter and nothing is
// cached, so the next Fetch retries. A ttl <= 0 bypasses storage entirely:
// the compute runs on every call and its result is never cached.
func (c *Cache) Fetch(key string, ttl time.Duration, compute func() (any, error)) (any, error) {
	res, err := c.FetchStale(key, ttl, 0, compute)
	return res.Value, err
}

// FetchStale is Fetch with a stale-while-error grace window: after an entry
// expires it is retained for a further staleFor, and if recomputing fails
// while a retained value exists, that value is returned with
// Result.Degraded set and the error suppressed. Only a cold cache (or an
// entry past its grace window) surfaces the compute error.
func (c *Cache) FetchStale(key string, ttl, staleFor time.Duration, compute func() (any, error)) (Result, error) {
	return c.FetchStaleCtx(context.Background(), key, ttl, staleFor,
		func(context.Context) (any, error) { return compute() })
}

// FetchStaleCtx is FetchStale with a context threaded into the compute
// function. When the context carries an active trace span the cache records
// child spans — "cache.hit" for a live entry, "cache.wait" for a collapsed
// concurrent miss, "cache.fill" around the compute — each annotated with the
// wall-clock shard lock wait, so a trace shows whether a slow request spent
// its time computing or contending. An untraced context adds no work beyond
// one context lookup.
func (c *Cache) FetchStaleCtx(ctx context.Context, key string, ttl, staleFor time.Duration, compute func(context.Context) (any, error)) (Result, error) {
	if c.Disabled {
		fctx, sp := trace.StartSpan(ctx, "cache.fill")
		sp.SetAttr("store", "disabled")
		v, err := compute(fctx)
		endFill(sp, err, false)
		return Result{Value: v}, err
	}
	now := c.clock.Now()

	if ttl <= 0 {
		// Caching disabled for this key: never store, never serve stale.
		c.stats.misses.Add(1)
		fctx, sp := trace.StartSpan(ctx, "cache.fill")
		sp.SetAttr("store", "bypass")
		v, err := compute(fctx)
		endFill(sp, err, false)
		if err != nil {
			c.stats.errors.Add(1)
			return Result{}, err
		}
		return Result{Value: v}, nil
	}

	// Lock waits are measured on the wall clock (the simulated clock cannot
	// see contention), and only for traced requests.
	traced := trace.SpanFromContext(ctx) != nil
	var lockWait time.Duration
	sh := c.shardFor(key)
	if traced {
		t0 := time.Now()
		sh.mu.Lock()
		lockWait = time.Since(t0)
	} else {
		sh.mu.Lock()
	}
	wasStale := false
	if e, ok := sh.entries[key]; ok {
		if now.Before(e.expiresAt) {
			sh.mu.Unlock()
			c.stats.hits.Add(1)
			if traced {
				_, sp := trace.StartSpan(ctx, "cache.hit")
				setLockWait(sp, lockWait)
				sp.End()
			}
			return Result{Value: e.value, Age: now.Sub(e.storedAt), Rev: e.rev}, nil
		}
		// Expired: count the stale miss but keep the entry — it is the
		// last-known-good fallback if the recompute fails.
		c.stats.stale.Add(1)
		wasStale = true
	}
	if inflight, ok := sh.calls[key]; ok {
		sh.mu.Unlock()
		c.stats.collapsed.Add(1)
		_, wsp := trace.StartSpan(ctx, "cache.wait")
		setLockWait(wsp, lockWait)
		inflight.wg.Wait()
		wsp.End()
		if inflight.err != nil {
			return c.serveStale(key, inflight.err)
		}
		return Result{Value: inflight.value, Rev: inflight.rev}, nil
	}
	cl := &call{}
	cl.wg.Add(1)
	sh.calls[key] = cl
	sh.mu.Unlock()
	c.stats.misses.Add(1)

	fctx, fsp := trace.StartSpan(ctx, "cache.fill")
	setLockWait(fsp, lockWait)
	if wasStale {
		fsp.SetAttr("stale", "true")
	}
	cl.value, cl.err = compute(fctx)

	sh.mu.Lock()
	delete(sh.calls, key)
	if cl.err == nil {
		rev := c.rev.Add(1)
		cl.rev = rev
		done := c.clock.Now()
		sh.entries[key] = entry{
			value:      cl.value,
			rev:        rev,
			storedAt:   done,
			expiresAt:  done.Add(ttl),
			staleUntil: done.Add(ttl + staleFor),
		}
		sh.mu.Unlock()
		cl.wg.Done()
		fsp.End()
		return Result{Value: cl.value, Rev: rev}, nil
	}
	sh.mu.Unlock()
	cl.wg.Done()
	c.stats.errors.Add(1)
	res, err := c.serveStale(key, cl.err)
	endFill(fsp, cl.err, err == nil && res.Degraded)
	return res, err
}

// setLockWait annotates a span with the wall-clock shard lock wait. No-op on
// a nil span.
func setLockWait(sp *trace.Span, d time.Duration) {
	if sp == nil {
		return
	}
	sp.SetAttr("lock_wait_us", strconv.FormatInt(d.Microseconds(), 10))
}

// endFill closes a cache.fill span with its outcome attributes. No-op on a
// nil span.
func endFill(sp *trace.Span, err error, staleServed bool) {
	if sp == nil {
		return
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	if staleServed {
		sp.SetAttr("stale_served", "true")
	}
	sp.End()
}

// serveStale falls back to a retained expired entry after a compute error,
// returning it flagged degraded; when no servable entry exists the error
// surfaces unchanged.
func (c *Cache) serveStale(key string, err error) (Result, error) {
	now := c.clock.Now()
	var boe breakerOpenError
	if errors.As(err, &boe) && boe.BreakerOpen() {
		c.stats.breakerOpen.Add(1)
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	sh.mu.Unlock()
	if !ok || !now.Before(e.staleUntil) {
		return Result{}, err
	}
	c.stats.staleServed.Add(1)
	return Result{Value: e.value, Degraded: true, Age: now.Sub(e.storedAt), Rev: e.rev}, nil
}

// Get returns the live (unexpired) value for key, if any.
func (c *Cache) Get(key string) (any, bool) {
	now := c.clock.Now()
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok || !now.Before(e.expiresAt) {
		return nil, false
	}
	return e.value, true
}

// Set stores value under key with the given TTL, replacing any entry. Values
// stored with Set have no stale grace window.
func (c *Cache) Set(key string, value any, ttl time.Duration) {
	now := c.clock.Now()
	rev := c.rev.Add(1)
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.entries[key] = entry{value: value, rev: rev, storedAt: now,
		expiresAt: now.Add(ttl), staleUntil: now.Add(ttl)}
}

// Delete removes key.
func (c *Cache) Delete(key string) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	delete(sh.entries, key)
}

// Clear removes every entry and resets statistics.
func (c *Cache) Clear() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = make(map[string]entry)
		sh.mu.Unlock()
	}
	c.stats.reset()
}

// Purge drops entries past their stale grace window and reports how many
// were removed. Expired-but-graced entries survive: they are still servable
// as degraded fallbacks. Long-lived servers call this periodically (the
// Rails cache does the same lazily).
func (c *Cache) Purge() int {
	now := c.clock.Now()
	removed := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, e := range sh.entries {
			if !now.Before(e.staleUntil) {
				delete(sh.entries, k)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// Len returns the number of stored entries, including expired ones not yet
// purged.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Stats returns a copy of the effectiveness counters.
func (c *Cache) Stats() Stats {
	return c.stats.snapshot()
}

// HitRate returns hits / (hits + misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
