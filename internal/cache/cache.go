// Package cache provides the server-side TTL cache the dashboard backend
// uses in front of Slurm commands and external APIs, mirroring the Ruby on
// Rails in-memory cache (`Rails.cache.fetch(key, expires_in:)`) the paper's
// backend relies on (§2.4 Performance).
//
// Beyond plain expiry, Fetch collapses concurrent misses for the same key
// into a single computation (singleflight), so a burst of users refreshing
// the dashboard costs one Slurm query, not N — the stampede protection the
// paper's caching design implies.
package cache

import (
	"sync"
	"time"
)

// Clock supplies the current time; it matches slurm.Clock so tests can share
// one simulated clock across the whole stack.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Stats reports cache effectiveness counters.
type Stats struct {
	Hits      int64 // Fetch served from a live entry
	Misses    int64 // Fetch computed a new value
	Stale     int64 // misses caused by an expired entry (subset of Misses)
	Collapsed int64 // concurrent Fetch calls that waited on another's compute
	Errors    int64 // compute functions that returned an error
}

type entry struct {
	value     any
	expiresAt time.Time
}

type call struct {
	wg    sync.WaitGroup
	value any
	err   error
}

// Cache is a TTL key-value cache with singleflight miss collapsing. The zero
// value is not usable; use New. All methods are safe for concurrent use.
//
// When Disabled is set every Fetch recomputes — used by the ablation
// benchmarks that reproduce the paper's cache-off comparison.
type Cache struct {
	Disabled bool

	mu      sync.Mutex
	entries map[string]entry
	calls   map[string]*call
	clock   Clock
	stats   Stats
}

// New returns an empty cache reading time from clock (nil means wall clock).
func New(clock Clock) *Cache {
	if clock == nil {
		clock = realClock{}
	}
	return &Cache{
		entries: make(map[string]entry),
		calls:   make(map[string]*call),
		clock:   clock,
	}
}

// Fetch returns the cached value for key, computing and storing it with the
// given TTL on a miss. Concurrent misses for the same key share a single
// computation. Compute errors are returned to every waiter and nothing is
// cached, so the next Fetch retries.
func (c *Cache) Fetch(key string, ttl time.Duration, compute func() (any, error)) (any, error) {
	if c.Disabled {
		return compute()
	}
	now := c.clock.Now()

	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if now.Before(e.expiresAt) {
			c.stats.Hits++
			c.mu.Unlock()
			return e.value, nil
		}
		c.stats.Stale++
		delete(c.entries, key)
	}
	if inflight, ok := c.calls[key]; ok {
		c.stats.Collapsed++
		c.mu.Unlock()
		inflight.wg.Wait()
		return inflight.value, inflight.err
	}
	c.stats.Misses++
	cl := &call{}
	cl.wg.Add(1)
	c.calls[key] = cl
	c.mu.Unlock()

	cl.value, cl.err = compute()
	cl.wg.Done()

	c.mu.Lock()
	delete(c.calls, key)
	if cl.err == nil {
		c.entries[key] = entry{value: cl.value, expiresAt: c.clock.Now().Add(ttl)}
	} else {
		c.stats.Errors++
	}
	c.mu.Unlock()
	return cl.value, cl.err
}

// Get returns the live value for key, if any.
func (c *Cache) Get(key string) (any, bool) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !now.Before(e.expiresAt) {
		return nil, false
	}
	return e.value, true
}

// Set stores value under key with the given TTL, replacing any entry.
func (c *Cache) Set(key string, value any, ttl time.Duration) {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = entry{value: value, expiresAt: now.Add(ttl)}
}

// Delete removes key.
func (c *Cache) Delete(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.entries, key)
}

// Clear removes every entry and resets statistics.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]entry)
	c.stats = Stats{}
}

// Purge drops expired entries and reports how many were removed. Long-lived
// servers call this periodically (the Rails cache does the same lazily).
func (c *Cache) Purge() int {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := 0
	for k, e := range c.entries {
		if !now.Before(e.expiresAt) {
			delete(c.entries, k)
			removed++
		}
	}
	return removed
}

// Len returns the number of stored entries, including expired ones not yet
// purged.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns a copy of the effectiveness counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// HitRate returns hits / (hits + misses), or 0 before any traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
