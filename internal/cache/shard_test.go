package cache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShardedStatsExactness runs a deterministic concurrent workload and
// checks the atomic counters account for every single call: sharding the
// entry maps must not lose or double-count stats.
func TestShardedStatsExactness(t *testing.T) {
	const (
		goroutines = 8
		perG       = 2000
		keys       = 32
	)
	c := New(newFakeClock())
	var computes atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				key := fmt.Sprintf("k%d", (g*perG+i)%keys)
				res, err := c.FetchStale(key, time.Hour, time.Hour, func() (any, error) {
					computes.Add(1)
					return key, nil
				})
				if err != nil {
					t.Errorf("FetchStale(%s): %v", key, err)
					return
				}
				if res.Value != key {
					t.Errorf("FetchStale(%s) = %v", key, res.Value)
					return
				}
				if res.Rev == 0 {
					t.Errorf("FetchStale(%s): rev 0 on cacheable fetch", key)
					return
				}
			}
		}()
	}
	wg.Wait()

	st := c.Stats()
	total := st.Hits + st.Misses + st.Collapsed
	if total != goroutines*perG {
		t.Fatalf("hits(%d)+misses(%d)+collapsed(%d) = %d, want %d",
			st.Hits, st.Misses, st.Collapsed, total, goroutines*perG)
	}
	if st.Misses != computes.Load() {
		t.Fatalf("misses = %d, computes = %d; must match exactly", st.Misses, computes.Load())
	}
	if st.Misses < keys {
		t.Fatalf("misses = %d, want >= %d (every key computes at least once)", st.Misses, keys)
	}
	if st.Errors != 0 || st.StaleServed != 0 || st.Stale != 0 {
		t.Fatalf("unexpected error-path stats: %+v", st)
	}
	if c.Len() != keys {
		t.Fatalf("Len() = %d, want %d", c.Len(), keys)
	}

	c.Clear()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("stats after Clear = %+v, want zero", st)
	}
	if c.Len() != 0 {
		t.Fatalf("Len() after Clear = %d, want 0", c.Len())
	}
}

// TestShardDistribution sanity-checks the FNV shard routing: a realistic
// key population must land on every shard, or per-shard locking degrades
// back to global contention.
func TestShardDistribution(t *testing.T) {
	c := New(nil)
	hit := make(map[*shard]bool, numShards)
	for i := 0; i < 512; i++ {
		hit[c.shardFor(fmt.Sprintf("widget:user%d:arg%d", i%7, i))] = true
	}
	if len(hit) != numShards {
		t.Fatalf("512 realistic keys hit %d of %d shards", len(hit), numShards)
	}
}
