package experiments

// Experiments for the §9 extension features built beyond the paper's
// shipped system: real-time job monitoring (delta event feed vs squeue
// polling), preemptible standby capacity, and the insights analyzer.

import (
	"fmt"
	"time"

	"ooddash/internal/slurm"
)

// MonitoringRow compares one mechanism for watching job state in near
// real time over a fixed session.
type MonitoringRow struct {
	Mechanism string
	Polls     int
	CtlRPCs   int64
	Bytes     int64 // payload bytes moved over the session
	Updates   int   // job state changes actually delivered
}

// ExtensionEventsVsPolling has users watch their jobs for a simulated
// window, polling every 5 seconds, via (a) full squeue polling, the only
// option in the paper's shipped system, and (b) the delta event feed
// (§9 "real-time job monitoring"). Expected shape: both deliver the same
// updates, but polling moves O(queue) bytes per poll while the event feed
// moves ~zero bytes on quiet polls.
func ExtensionEventsVsPolling(s *Stack, users int, window time.Duration) ([]MonitoringRow, error) {
	const step = 5 * time.Second
	stats := s.Env.Cluster.Ctl.Stats()

	run := func(mechanism string) (MonitoringRow, error) {
		row := MonitoringRow{Mechanism: mechanism}
		before := stats.Total()
		since := make(map[string]int64, users)
		lastState := make(map[string]map[string]string, users)
		for u := 0; u < users; u++ {
			name := s.User(u)
			since[name] = s.Env.Cluster.Ctl.LastEventSeq()
			lastState[name] = make(map[string]string)
			if mechanism == "squeue-poll" {
				// Prime the diff baseline so the first measured poll only
				// counts real transitions, matching the event feed's start.
				out, err := s.Env.Runner.Run("squeue", "-h", "-u", name, "-t", "all", "-o", "%i|%T")
				if err != nil {
					return row, err
				}
				for _, line := range splitLines(out) {
					if id, state, ok := cutPipe(line); ok {
						lastState[name][id] = state
					}
				}
			}
		}
		for elapsed := time.Duration(0); elapsed < window; elapsed += step {
			for u := 0; u < users; u++ {
				name := s.User(u)
				row.Polls++
				switch mechanism {
				case "squeue-poll":
					out, err := s.Env.Runner.Run("squeue", "-h", "-u", name, "-t", "all", "-o", "%i|%T")
					if err != nil {
						return row, err
					}
					row.Bytes += int64(len(out))
					// Diff against the previous snapshot to count updates.
					cur := make(map[string]string)
					for _, line := range splitLines(out) {
						id, state, ok := cutPipe(line)
						if !ok {
							continue
						}
						cur[id] = state
						if lastState[name][id] != state {
							row.Updates++
						}
					}
					lastState[name] = cur
				case "event-feed":
					events := s.Env.Cluster.Ctl.EventsSince(since[name], 0)
					for _, e := range events {
						since[name] = e.Seq
						if e.User != name {
							continue
						}
						row.Updates++
						row.Bytes += int64(len(e.JobName) + len(e.User) + len(e.State) + 24)
					}
				}
			}
			s.Env.Clock.Advance(step)
			s.Env.Cluster.Ctl.Tick()
		}
		row.CtlRPCs = stats.Total() - before
		return row, nil
	}

	poll, err := run("squeue-poll")
	if err != nil {
		return nil, err
	}
	feed, err := run("event-feed")
	if err != nil {
		return nil, err
	}
	return []MonitoringRow{poll, feed}, nil
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func cutPipe(line string) (a, b string, ok bool) {
	for i := 0; i < len(line); i++ {
		if line[i] == '|' {
			return trimSpaces(line[:i]), trimSpaces(line[i+1:]), true
		}
	}
	return "", "", false
}

func trimSpaces(s string) string {
	for len(s) > 0 && s[0] == ' ' {
		s = s[1:]
	}
	for len(s) > 0 && s[len(s)-1] == ' ' {
		s = s[:len(s)-1]
	}
	return s
}

// PreemptionResult compares urgent-job turnaround on a saturated cluster
// with and without a preemptible standby tier.
type PreemptionResult struct {
	WithPreemption    time.Duration // wait until the urgent job started
	WithoutPreemption time.Duration
	RequeuedJobs      int
}

// ExtensionPreemption builds two fully saturated two-node clusters — one
// filled with preemptible standby work, one with normal work — submits an
// urgent job to each, and measures how long it waits. Expected shape: with
// preemption the urgent job starts on the next scheduling pass; without it
// the job waits for the running work to drain.
func ExtensionPreemption() (PreemptionResult, error) {
	build := func(preemptable bool) (*slurm.Cluster, *slurm.SimClock, error) {
		clock := slurm.NewSimClock(time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC))
		qosName := "normal"
		if preemptable {
			qosName = "standby"
		}
		cfg := slurm.ClusterConfig{
			Name: "preempt-exp",
			Nodes: []slurm.NodeSpec{
				{NamePrefix: "c", Count: 2, CPUs: 16, MemMB: 32 * 1024, Partitions: []string{"cpu", "standby"}},
			},
			Partitions: []slurm.PartitionSpec{
				{Name: "cpu", MaxTime: 24 * time.Hour, Default: true, Priority: 100},
				{Name: "standby", MaxTime: 4 * time.Hour},
			},
			QOS: []slurm.QOS{
				{Name: "normal"},
				{Name: "standby", Priority: -500, Preemptable: true},
			},
			Associations: []slurm.Association{
				{Account: "lab"}, {Account: "lab", User: "filler"}, {Account: "lab", User: "urgent"},
			},
		}
		cl, err := slurm.NewCluster(cfg, clock)
		if err != nil {
			return nil, nil, err
		}
		part := "cpu"
		if preemptable {
			part = "standby"
		}
		for i := 0; i < 2; i++ {
			if _, err := cl.Ctl.Submit(slurm.SubmitRequest{
				Name: "filler", User: "filler", Account: "lab", Partition: part, QOS: qosName,
				ReqTRES: slurm.TRES{CPUs: 16, MemMB: 1024}, TimeLimit: 4 * time.Hour,
				Profile: slurm.UsageProfile{ActualDuration: 3 * time.Hour,
					CPUUtilization: 1, MemUtilization: 0.5},
			}); err != nil {
				return nil, nil, err
			}
		}
		cl.Ctl.Tick()
		return cl, clock, nil
	}

	measure := func(preemptable bool) (time.Duration, int, error) {
		cl, clock, err := build(preemptable)
		if err != nil {
			return 0, 0, err
		}
		id, err := cl.Ctl.Submit(slurm.SubmitRequest{
			Name: "urgent", User: "urgent", Account: "lab", Partition: "cpu", QOS: "normal",
			ReqTRES: slurm.TRES{CPUs: 16, MemMB: 1024}, TimeLimit: time.Hour,
			Profile: slurm.UsageProfile{ActualDuration: 30 * time.Minute,
				CPUUtilization: 1, MemUtilization: 0.5},
		})
		if err != nil {
			return 0, 0, err
		}
		submitAt := clock.Now()
		// Advance in one-minute steps until the urgent job starts.
		for i := 0; i < 5*60; i++ {
			cl.Ctl.Tick()
			j := cl.Ctl.Job(id)
			if j != nil && j.State == slurm.StateRunning {
				requeued := 0
				for _, e := range cl.Ctl.EventsSince(0, 0) {
					if e.Kind == slurm.EventPreempted {
						requeued++
					}
				}
				return j.StartTime.Sub(submitAt), requeued, nil
			}
			clock.Advance(time.Minute)
		}
		return 0, 0, fmt.Errorf("preemption experiment: urgent job never started")
	}

	withWait, requeued, err := measure(true)
	if err != nil {
		return PreemptionResult{}, err
	}
	withoutWait, _, err := measure(false)
	if err != nil {
		return PreemptionResult{}, err
	}
	return PreemptionResult{
		WithPreemption:    withWait,
		WithoutPreemption: withoutWait,
		RequeuedJobs:      requeued,
	}, nil
}

// InsightsCoverage summarizes what the analyzer found across the whole
// generated population — the extension's population-level validation.
type InsightsCoverage struct {
	UsersAnalyzed    int
	UsersWithFinding int
	FindingsByKind   map[string]int
}

// ExtensionInsightsCoverage runs the insights route for every generated
// user and tallies finding kinds. The synthetic trace deliberately contains
// wasteful interactive sessions and failures, so several kinds must appear.
func ExtensionInsightsCoverage(s *Stack) (InsightsCoverage, error) {
	cov := InsightsCoverage{FindingsByKind: make(map[string]int)}
	for i := range s.Env.UserNames {
		user := s.User(i)
		var resp struct {
			Findings []struct {
				Kind string `json:"kind"`
			} `json:"findings"`
			JobCount int `json:"job_count"`
		}
		if err := getJSON(s, user, "/api/insights?range=all", &resp); err != nil {
			return cov, err
		}
		if resp.JobCount == 0 {
			continue
		}
		cov.UsersAnalyzed++
		if len(resp.Findings) > 0 {
			cov.UsersWithFinding++
		}
		for _, f := range resp.Findings {
			cov.FindingsByKind[f.Kind]++
		}
	}
	return cov, nil
}
