package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"ooddash/internal/browser"
	"ooddash/internal/clientcache"
	"ooddash/internal/slurm"
	"ooddash/internal/workload"
)

// --- E2: Figure 1 (architecture / data flow) ---------------------------------

// FlowResult quantifies Figure 1's data flow over a replayed browsing
// session: how often each layer (client cache, server cache, Slurm daemons)
// absorbed a request. The expected shape: request volume shrinks sharply at
// every layer going right.
type FlowResult struct {
	Users        int
	PageLoads    int
	WidgetViews  int // widget renders requested by browsers
	ClientFresh  int // served instantly from client cache, no network
	ClientStale  int // instant stale paint + background refresh
	NetworkCalls int // HTTP requests that reached the backend
	ServerHits   int64
	ServerMisses int64
	CtlRPCs      int64 // queries that reached slurmctld
	DBDRPCs      int64 // queries that reached slurmdbd
	NewsRequests int64
}

// Figure1DataFlow replays a browsing session: users load the homepage
// repeatedly over simulated minutes (reload interval ~45s, so the 30-second
// recent-jobs TTL expires between some loads and the longer TTLs do not).
func Figure1DataFlow(s *Stack, users, loadsPerUser int) (FlowResult, error) {
	s.ClearServerCache()
	ctl := s.Env.Cluster.Ctl.Stats()
	dbd := s.Env.Cluster.DBD.Stats()
	ctl.Reset()
	dbd.Reset()
	newsBefore := s.Env.Feed.Requests()
	cacheBefore := s.Server.Cache().Stats()

	res := FlowResult{Users: users}
	bs := make([]*browser.Browser, users)
	for i := range bs {
		bs[i] = s.Browser(s.User(i))
	}
	for round := 0; round < loadsPerUser; round++ {
		for _, b := range bs {
			load := b.LoadHomepage()
			res.PageLoads++
			for _, w := range load.Widgets {
				res.WidgetViews++
				if w.Err != nil {
					return res, fmt.Errorf("figure1: widget %s: %v", w.Name, w.Err)
				}
				switch w.Source {
				case clientcache.SourceFresh:
					res.ClientFresh++
				case clientcache.SourceStale:
					res.ClientStale++
				}
			}
			res.NetworkCalls += load.NetworkFetches
		}
		// Users reload roughly every 45 simulated seconds.
		s.Env.Clock.Advance(45 * time.Second)
		s.Env.Cluster.Ctl.Tick()
	}
	cacheAfter := s.Server.Cache().Stats()
	res.ServerHits = cacheAfter.Hits - cacheBefore.Hits
	res.ServerMisses = cacheAfter.Misses - cacheBefore.Misses
	res.CtlRPCs = ctl.Total()
	res.DBDRPCs = dbd.Total()
	res.NewsRequests = s.Env.Feed.Requests() - newsBefore
	return res, nil
}

// --- E3: Figure 2 (homepage) --------------------------------------------------

// HomepageResult compares a first visit (cold: empty client cache, empty
// server cache) against a warm revisit. Expected shape: the warm visit
// paints every widget instantly with zero network time.
type HomepageResult struct {
	ColdLatency   time.Duration // network time to full render, first visit
	ColdFetches   int
	WarmLatency   time.Duration // network time on revisit within TTLs
	WarmFetches   int
	WarmInstant   int // widgets painted straight from the client cache
	WidgetCount   int
	ServerWarmLat time.Duration // revisit from a different browser: server cache only
}

// Figure2Homepage measures homepage loads in the three cache regimes.
func Figure2Homepage(s *Stack) (HomepageResult, error) {
	user := s.User(0)
	s.ClearServerCache()

	first := s.Browser(user)
	cold := first.LoadHomepage()
	if !cold.FullyPainted() {
		return HomepageResult{}, fmt.Errorf("figure2: cold load failed")
	}
	warm := first.LoadHomepage()

	// A second browser (no client cache) hits the warmed server cache.
	second := s.Browser(user)
	serverWarm := second.LoadHomepage()

	return HomepageResult{
		ColdLatency:   cold.NetworkTime,
		ColdFetches:   cold.NetworkFetches,
		WarmLatency:   warm.NetworkTime,
		WarmFetches:   warm.NetworkFetches,
		WarmInstant:   warm.InstantPaints,
		WidgetCount:   len(cold.Widgets),
		ServerWarmLat: serverWarm.NetworkTime,
	}, nil
}

// --- E4: Figure 3 (My Jobs) ----------------------------------------------------

// MyJobsResult summarizes the My Jobs page over the trace: table size,
// chart shapes, efficiency coverage, and latency.
type MyJobsResult struct {
	User          string
	Rows          int
	States        map[string]int
	UsersInTable  int
	WithWarnings  int
	WithEffData   int
	GPUHourUsers  int
	TableLatency  time.Duration
	ChartsLatency time.Duration
}

// Figure3MyJobs loads the My Jobs table and charts for a group member and
// checks the table carries every state and the charts group by user.
func Figure3MyJobs(s *Stack) (MyJobsResult, error) {
	sub, err := s.PickSubjects()
	if err != nil {
		return MyJobsResult{}, err
	}
	s.ClearServerCache()
	res := MyJobsResult{User: sub.User, States: make(map[string]int)}

	status, body, lat, err := s.Get(sub.User, "/api/myjobs?range=7d")
	if err != nil || status != 200 {
		return res, fmt.Errorf("figure3: myjobs status %d err %v", status, err)
	}
	res.TableLatency = lat
	var table struct {
		Jobs []struct {
			User     string   `json:"user"`
			State    string   `json:"state"`
			Warnings []string `json:"warnings"`
			Eff      struct {
				CPU *float64 `json:"cpu_percent"`
			} `json:"efficiency"`
		} `json:"jobs"`
	}
	_ = body
	if err := getJSON(s, sub.User, "/api/myjobs?range=7d", &table); err != nil {
		return res, err
	}
	res.Rows = len(table.Jobs)
	seen := map[string]bool{}
	for _, j := range table.Jobs {
		res.States[j.State]++
		seen[j.User] = true
		if len(j.Warnings) > 0 {
			res.WithWarnings++
		}
		if j.Eff.CPU != nil {
			res.WithEffData++
		}
	}
	res.UsersInTable = len(seen)

	var charts struct {
		GPUHours []struct {
			User  string  `json:"user"`
			Hours float64 `json:"gpu_hours"`
		} `json:"gpu_hours"`
	}
	start := time.Now()
	if err := getJSON(s, sub.User, "/api/myjobs/charts?range=7d", &charts); err != nil {
		return res, err
	}
	res.ChartsLatency = time.Since(start)
	res.GPUHourUsers = len(charts.GPUHours)
	return res, nil
}

// --- E5: Figure 4a (Job Performance Metrics) -----------------------------------

// JobPerfRangeRow is the metrics summary for one selectable time range.
type JobPerfRangeRow struct {
	Range        string
	TotalJobs    int
	AvgWaitSecs  float64
	MeanDurSecs  float64
	TotalWallSec int64
	AvgCPUEff    float64
	AvgMemEff    float64
	Latency      time.Duration
}

// Figure4aJobPerf evaluates every time-range option of the Job Performance
// Metrics app for one user. Expected shape: job counts grow monotonically
// with the range.
func Figure4aJobPerf(s *Stack) ([]JobPerfRangeRow, error) {
	sub, err := s.PickSubjects()
	if err != nil {
		return nil, err
	}
	now := s.Env.Clock.Now()
	custom := fmt.Sprintf("custom&from=%s&to=%s",
		now.Add(-48*time.Hour).UTC().Format(time.RFC3339),
		now.UTC().Format(time.RFC3339))
	ranges := []string{"24h", "7d", "30d", "90d", "all", custom}
	labels := []string{"24h", "7d", "30d", "90d", "all", "custom-48h"}

	s.ClearServerCache()
	out := make([]JobPerfRangeRow, 0, len(ranges))
	for i, rng := range ranges {
		var resp struct {
			TotalJobs int     `json:"total_jobs"`
			AvgWait   float64 `json:"avg_wait_seconds"`
			MeanDur   float64 `json:"mean_duration_seconds"`
			TotalWall int64   `json:"total_wall_seconds"`
			AvgCPUEff float64 `json:"avg_cpu_efficiency"`
			AvgMemEff float64 `json:"avg_memory_efficiency"`
		}
		start := time.Now()
		if err := getJSON(s, sub.User, "/api/jobperf?range="+rng, &resp); err != nil {
			return nil, err
		}
		out = append(out, JobPerfRangeRow{
			Range: labels[i], TotalJobs: resp.TotalJobs,
			AvgWaitSecs: resp.AvgWait, MeanDurSecs: resp.MeanDur,
			TotalWallSec: resp.TotalWall,
			AvgCPUEff:    resp.AvgCPUEff, AvgMemEff: resp.AvgMemEff,
			Latency: time.Since(start),
		})
	}
	return out, nil
}

// --- E6: Figure 4b (Cluster Status) ---------------------------------------------

// ClusterStatusRow is one point of the node-count sweep.
type ClusterStatusRow struct {
	Nodes       int
	ColdLatency time.Duration
	WarmLatency time.Duration
	Bytes       int
	StateColors map[string]int
}

// Figure4bClusterStatus sweeps cluster sizes and measures the Cluster
// Status route. Expected shape: cold latency grows roughly linearly with
// node count; warm (cached) latency stays low and flat-ish.
func Figure4bClusterStatus(nodeCounts []int, seed int64) ([]ClusterStatusRow, error) {
	out := make([]ClusterStatusRow, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		spec := workload.SmallSpec()
		spec.Seed = seed
		spec.CPUNodes = n - n/8 - n/32
		spec.HighmemNodes = n / 8
		spec.GPUNodes = n / 32
		st, err := NewStack(spec)
		if err != nil {
			return nil, err
		}
		user := st.User(0)
		st.ClearServerCache()
		var resp struct {
			Total  int            `json:"total"`
			Counts map[string]int `json:"state_counts"`
		}
		_, bytes, cold, err := st.Get(user, "/api/cluster_status")
		if err != nil {
			st.Close()
			return nil, err
		}
		if err := getJSON(st, user, "/api/cluster_status", &resp); err != nil {
			st.Close()
			return nil, err
		}
		warm := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			_, lat, err := st.MustGet(user, "/api/cluster_status")
			if err != nil {
				st.Close()
				return nil, err
			}
			if lat < warm {
				warm = lat
			}
		}
		out = append(out, ClusterStatusRow{
			Nodes: resp.Total, ColdLatency: cold, WarmLatency: warm,
			Bytes: bytes, StateColors: resp.Counts,
		})
		st.Close()
	}
	return out, nil
}

// --- E7: Figure 4c (Node Overview) ------------------------------------------------

// NodeOverviewResult captures the Node Overview page of the busiest node.
type NodeOverviewResult struct {
	Node        string
	State       string
	CPUPercent  float64
	MemPercent  float64
	RunningJobs int
	DetailLat   time.Duration
	JobsLat     time.Duration
}

// Figure4cNodeOverview finds the busiest node and loads both tabs.
func Figure4cNodeOverview(s *Stack) (NodeOverviewResult, error) {
	user := s.User(0)
	// Find the node with the most running jobs via the live queue.
	counts := make(map[string]int)
	for _, j := range s.Env.Cluster.Ctl.Jobs(slurm.LiveJobFilter{States: []slurm.JobState{slurm.StateRunning}}) {
		for _, n := range j.Nodes {
			counts[n]++
		}
	}
	busiest, best := "", -1
	for n, c := range counts {
		if c > best || (c == best && n < busiest) {
			busiest, best = n, c
		}
	}
	if busiest == "" {
		busiest = s.Env.Cluster.Ctl.Nodes()[0].Name
	}
	s.ClearServerCache()

	var detail struct {
		State string  `json:"state"`
		CPU   float64 `json:"cpu_percent"`
		Mem   float64 `json:"mem_percent"`
	}
	start := time.Now()
	if err := getJSON(s, user, "/api/node/"+busiest, &detail); err != nil {
		return NodeOverviewResult{}, err
	}
	detailLat := time.Since(start)

	var jobs struct {
		Jobs []struct {
			User string `json:"user"`
		} `json:"jobs"`
	}
	start = time.Now()
	if err := getJSON(s, user, "/api/node/"+busiest+"/jobs", &jobs); err != nil {
		return NodeOverviewResult{}, err
	}
	return NodeOverviewResult{
		Node: busiest, State: detail.State,
		CPUPercent: detail.CPU, MemPercent: detail.Mem,
		RunningJobs: len(jobs.Jobs),
		DetailLat:   detailLat, JobsLat: time.Since(start),
	}, nil
}

// --- E8: Figure 4d (Job Overview) ----------------------------------------------

// JobOverviewResult captures the Job Overview page including the log tabs
// and the array tab.
type JobOverviewResult struct {
	JobID         string
	TimelineDone  int
	OverviewLat   time.Duration
	LogTotalLines int
	LogShownLines int
	LogTruncated  bool
	LogLat        time.Duration
	ArrayTasks    int
	ArrayLat      time.Duration
}

// Figure4dJobOverview builds a job with a 50k-line log and a 100-task
// array, then loads every tab. Expected shape: the log view stays capped at
// 1000 lines (fast) regardless of file size.
func Figure4dJobOverview(s *Stack) (JobOverviewResult, error) {
	rng := rand.New(rand.NewSource(7))
	user := s.User(0)
	acct := ""
	if u, ok := s.Env.Users.Lookup(user); ok {
		acct = u.Accounts[0]
	}
	// A dedicated job with a big log.
	logPath := fmt.Sprintf("/home/%s/work/big.out", user)
	id, err := s.Env.Cluster.Ctl.Submit(slurm.SubmitRequest{
		Name: "figure4d", User: user, Account: acct, Partition: "cpu", QOS: "normal",
		ReqTRES: slurm.TRES{CPUs: 4, MemMB: 8192}, TimeLimit: 4 * time.Hour,
		StdoutPath: logPath, StderrPath: logPath + ".err",
		Profile: slurm.UsageProfile{ActualDuration: time.Hour, CPUUtilization: 0.6, MemUtilization: 0.4},
	})
	if err != nil {
		return JobOverviewResult{}, err
	}
	for i := 1; i <= 50_000; i++ {
		s.Env.Logs.Append(logPath, fmt.Sprintf("iter %d loss %.4f", i, rng.Float64()))
	}
	// A 100-task array.
	arrayID, err := s.Env.Cluster.Ctl.Submit(slurm.SubmitRequest{
		Name: "figure4d-array", User: user, Account: acct, Partition: "cpu", QOS: "normal",
		ReqTRES: slurm.TRES{CPUs: 1, MemMB: 512}, TimeLimit: time.Hour, ArraySize: 100,
		Profile: slurm.UsageProfile{ActualDuration: 20 * time.Minute, CPUUtilization: 0.7, MemUtilization: 0.4},
	})
	if err != nil {
		return JobOverviewResult{}, err
	}
	s.Env.Cluster.Ctl.Tick()
	s.ClearServerCache()

	res := JobOverviewResult{JobID: fmt.Sprint(id)}
	var overview struct {
		Timeline []struct {
			Done bool `json:"done"`
		} `json:"timeline"`
	}
	start := time.Now()
	if err := getJSON(s, user, fmt.Sprintf("/api/job/%d", id), &overview); err != nil {
		return res, err
	}
	res.OverviewLat = time.Since(start)
	for _, ev := range overview.Timeline {
		if ev.Done {
			res.TimelineDone++
		}
	}

	var logs struct {
		Total     int  `json:"total_lines"`
		Truncated bool `json:"truncated"`
		Lines     []struct {
			Number int `json:"number"`
		} `json:"lines"`
	}
	start = time.Now()
	if err := getJSON(s, user, fmt.Sprintf("/api/job/%d/logs", id), &logs); err != nil {
		return res, err
	}
	res.LogLat = time.Since(start)
	res.LogTotalLines = logs.Total
	res.LogShownLines = len(logs.Lines)
	res.LogTruncated = logs.Truncated

	var array struct {
		Tasks []struct {
			State string `json:"state"`
		} `json:"tasks"`
	}
	start = time.Now()
	if err := getJSON(s, user, fmt.Sprintf("/api/job/%d/array", arrayID), &array); err != nil {
		return res, err
	}
	res.ArrayLat = time.Since(start)
	res.ArrayTasks = len(array.Tasks)
	return res, nil
}

// getJSON fetches and decodes one API response.
func getJSON(s *Stack, user, path string, out any) error {
	status, body, _, err := s.GetBody(user, path)
	if err != nil {
		return err
	}
	if status != 200 {
		return fmt.Errorf("experiments: GET %s: status %d: %.120s", path, status, body)
	}
	return json.Unmarshal(body, out)
}
