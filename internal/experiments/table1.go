package experiments

import (
	"fmt"
	"strings"
	"time"

	"ooddash/internal/slurm"
)

// Subjects are the concrete entities parameterized routes need: a user who
// owns jobs, a node with work on it, a job with logs, and a job array.
type Subjects struct {
	User       string
	Account    string
	Node       string
	JobID      slurm.JobID
	LogJobID   slurm.JobID
	ArrayJobID slurm.JobID
}

// PickSubjects scans the accounting history for representative entities.
func (s *Stack) PickSubjects() (Subjects, error) {
	now := s.Env.Clock.Now()
	jobs := s.Env.Cluster.DBD.Jobs(slurm.JobFilter{}, now)
	if len(jobs) == 0 {
		return Subjects{}, fmt.Errorf("experiments: empty history")
	}
	var sub Subjects
	for _, j := range jobs {
		if sub.JobID == 0 && j.State == slurm.StateCompleted {
			sub.User, sub.Account, sub.JobID = j.User, j.Account, j.ID
		}
		if sub.LogJobID == 0 && s.Env.Logs.Exists(j.StdoutPath) {
			sub.LogJobID = j.ID
			if sub.User == "" {
				sub.User, sub.Account = j.User, j.Account
			}
		}
		if sub.ArrayJobID == 0 && j.ArrayJobID != 0 {
			sub.ArrayJobID = j.ArrayJobID
		}
		if sub.Node == "" && len(j.Nodes) > 0 && j.State == slurm.StateRunning {
			sub.Node = j.Nodes[0]
		}
	}
	if sub.Node == "" {
		// Fall back to any node.
		nodes := s.Env.Cluster.Ctl.Nodes()
		sub.Node = nodes[0].Name
	}
	if sub.JobID == 0 {
		sub.JobID = jobs[0].ID
		sub.User, sub.Account = jobs[0].User, jobs[0].Account
	}
	return sub, nil
}

// Table1Row is one reproduced row of the paper's Table 1: a dashboard
// feature, its data source, and measured cold (uncached) versus
// server-cached latency for the backing API route.
type Table1Row struct {
	Feature    string
	DataSource string
	Route      string
	Cold       time.Duration
	Warm       time.Duration
	Bytes      int
}

// Speedup returns the cold/warm latency ratio.
func (r Table1Row) Speedup() float64 {
	if r.Warm <= 0 {
		return 0
	}
	return float64(r.Cold) / float64(r.Warm)
}

// Table1 measures every feature row of the paper's Table 1. The expected
// shape: every route serves from its stated data source, and the cached
// path is much faster than the cold path for Slurm-backed rows.
func Table1(s *Stack) ([]Table1Row, error) {
	sub, err := s.PickSubjects()
	if err != nil {
		return nil, err
	}
	// The log-view row must be requested by the job's owner.
	logUser := sub.User
	if j := s.Env.Cluster.DBD.Job(sub.LogJobID); j != nil {
		logUser = j.User
	}
	arrayOwner := sub.User
	if j := s.Env.Cluster.DBD.Job(sub.ArrayJobID); j != nil {
		arrayOwner = j.User
	}

	rows := []struct {
		feature, source, path, user string
	}{
		{"Announcements widget", "API call to center news page", "/api/announcements", sub.User},
		{"Recent Jobs widget", "squeue (Slurm)", "/api/recent_jobs", sub.User},
		{"System Status widget", "sinfo (Slurm)", "/api/system_status", sub.User},
		{"Accounts widget", "scontrol show assoc (Slurm)", "/api/accounts", sub.User},
		{"Storage widget", "ZFS and GPFS storage database", "/api/storage", sub.User},
		{"My Jobs", "sacct (Slurm)", "/api/myjobs?range=7d", sub.User},
		{"Job Performance Metrics", "sreport rollup (slurmdbd)", "/api/jobperf?range=7d", sub.User},
		{"Cluster Status", "scontrol show node (Slurm)", "/api/cluster_status", sub.User},
		{"Job Overview", "scontrol show job (Slurm)", fmt.Sprintf("/api/job/%d", sub.JobID), sub.User},
		{"Node Overview", "scontrol show node (Slurm)", "/api/node/" + sub.Node, sub.User},
		{"Job log view", "job stdout/stderr files", fmt.Sprintf("/api/job/%d/logs", sub.LogJobID), logUser},
		{"Job Array tab", "sacct (Slurm)", fmt.Sprintf("/api/job/%d/array", sub.ArrayJobID), arrayOwner},
	}

	out := make([]Table1Row, 0, len(rows))
	for _, r := range rows {
		if strings.Contains(r.path, "/job/0") {
			continue // subject missing in this trace (e.g. no arrays)
		}
		s.ClearServerCache()
		bytes, cold, err := s.MustGet(r.user, r.path)
		if err != nil {
			return nil, fmt.Errorf("cold %s: %w", r.path, err)
		}
		// Warm: repeat a few times and take the fastest (steady cache hit).
		warm := time.Duration(1<<62 - 1)
		for i := 0; i < 5; i++ {
			_, lat, err := s.MustGet(r.user, r.path)
			if err != nil {
				return nil, fmt.Errorf("warm %s: %w", r.path, err)
			}
			if lat < warm {
				warm = lat
			}
		}
		out = append(out, Table1Row{
			Feature: r.feature, DataSource: r.source, Route: r.path,
			Cold: cold, Warm: warm, Bytes: bytes,
		})
	}
	return out, nil
}

// VerifyTable1Sources checks that each Slurm-backed route actually drives
// the stated Slurm RPC when cold, returning a map feature -> verified.
func VerifyTable1Sources(s *Stack) (map[string]bool, error) {
	sub, err := s.PickSubjects()
	if err != nil {
		return nil, err
	}
	type probe struct {
		feature string
		path    string
		daemon  string // "ctl" or "dbd"
		rpc     slurm.RPCKind
	}
	probes := []probe{
		{"Recent Jobs widget", "/api/recent_jobs", "ctl", slurm.RPCSqueue},
		{"System Status widget", "/api/system_status", "ctl", slurm.RPCSinfo},
		{"Accounts widget", "/api/accounts", "dbd", slurm.RPCUsageRollup},
		{"My Jobs", "/api/myjobs?range=7d", "dbd", slurm.RPCSacct},
		{"Job Performance Metrics", "/api/jobperf?range=7d", "dbd", slurm.RPCRollup},
		{"Cluster Status", "/api/cluster_status", "ctl", slurm.RPCNodeInfo},
		{"Node Overview", "/api/node/" + sub.Node, "ctl", slurm.RPCNodeInfo},
		{"Job Overview", fmt.Sprintf("/api/job/%d", sub.JobID), "ctl", slurm.RPCJobInfo},
	}
	out := make(map[string]bool, len(probes))
	for _, p := range probes {
		s.ClearServerCache()
		var counter func() int64
		if p.daemon == "ctl" {
			counter = func() int64 { return s.Env.Cluster.Ctl.Stats().Count(p.rpc) }
		} else {
			counter = func() int64 { return s.Env.Cluster.DBD.Stats().Count(p.rpc) }
		}
		before := counter()
		if _, _, err := s.MustGet(sub.User, p.path); err != nil {
			return nil, fmt.Errorf("probe %s: %w", p.path, err)
		}
		out[p.feature] = counter() > before
	}
	return out, nil
}
