package experiments

import (
	"fmt"
	"sync"
	"time"

	"ooddash/internal/slurm"
)

// --- E9: §2.4 performance claims ------------------------------------------------

// CacheLoadRow is one point of the user-count sweep: how hard slurmctld is
// hit and how fast routes respond, with the server cache on or off.
type CacheLoadRow struct {
	Users      int
	CacheOn    bool
	Requests   int
	CtlRPCs    int64
	RPCsPerReq float64
	P50        time.Duration
	P99        time.Duration
	Mean       time.Duration
}

// Section24CacheLoad replays a burst of concurrent users hammering the
// squeue-backed recent-jobs route and the sinfo-backed system-status route.
// Expected shape (the paper's §2.4/§3.2 claim): with the cache on, ctl RPCs
// stay ~flat as users grow (bounded by distinct cache keys, not request
// volume); with the cache off they grow linearly with requests.
func Section24CacheLoad(s *Stack, userCounts []int, requestsPerUser int, cacheOn bool) ([]CacheLoadRow, error) {
	out := make([]CacheLoadRow, 0, len(userCounts))
	for _, users := range userCounts {
		s.ClearServerCache()
		s.Server.Cache().Disabled = !cacheOn
		stats := s.Env.Cluster.Ctl.Stats()
		before := stats.Count(slurm.RPCSqueue) + stats.Count(slurm.RPCSinfo)

		var (
			mu   sync.Mutex
			lats durations
			errs []error
			wg   sync.WaitGroup
		)
		for u := 0; u < users; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				user := s.User(u)
				local := make(durations, 0, requestsPerUser*2)
				for i := 0; i < requestsPerUser; i++ {
					for _, path := range []string{"/api/recent_jobs", "/api/system_status"} {
						_, lat, err := s.MustGet(user, path)
						if err != nil {
							mu.Lock()
							errs = append(errs, err)
							mu.Unlock()
							return
						}
						local = append(local, lat)
					}
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			}(u)
		}
		wg.Wait()
		s.Server.Cache().Disabled = false
		if len(errs) > 0 {
			return nil, fmt.Errorf("section24: %v", errs[0])
		}
		after := stats.Count(slurm.RPCSqueue) + stats.Count(slurm.RPCSinfo)
		row := CacheLoadRow{
			Users: users, CacheOn: cacheOn,
			Requests: len(lats),
			CtlRPCs:  after - before,
			P50:      lats.percentile(0.50),
			P99:      lats.percentile(0.99),
			Mean:     lats.mean(),
		}
		if row.Requests > 0 {
			row.RPCsPerReq = float64(row.CtlRPCs) / float64(row.Requests)
		}
		out = append(out, row)
	}
	return out, nil
}

// TTLSweepRow is one point of the recent-jobs TTL ablation: the freshness /
// controller-load trade-off the paper tunes per data source.
type TTLSweepRow struct {
	TTL          time.Duration
	CtlRPCs      int64
	MaxStaleness time.Duration // worst-case data age observed
}

// Section24TTLSweep replays a fixed 10-minute browsing pattern (one request
// every 5 simulated seconds) under different recent-jobs TTLs. Expected
// shape: RPCs fall as the TTL grows while worst-case staleness rises toward
// the TTL — the trade the paper describes when it picks ~30s for squeue.
func Section24TTLSweep(s *Stack, ttls []time.Duration) ([]TTLSweepRow, error) {
	user := s.User(0)
	out := make([]TTLSweepRow, 0, len(ttls))
	stats := s.Env.Cluster.Ctl.Stats()
	const (
		step  = 5 * time.Second
		total = 10 * time.Minute
	)
	for _, ttl := range ttls {
		s.ClearServerCache()
		before := stats.Count(slurm.RPCSqueue)
		var lastRefresh time.Time
		var maxStale time.Duration
		for elapsed := time.Duration(0); elapsed < total; elapsed += step {
			rpcBefore := stats.Count(slurm.RPCSqueue)
			if _, err := s.Server.Cache().Fetch("ttl_sweep:recent_jobs", ttl, func() (any, error) {
				out, err := s.Env.Runner.Run("squeue", "-h", "-u", user, "--limit", "8", "-o", "%i|%T")
				return out, err
			}); err != nil {
				return nil, err
			}
			now := s.Env.Clock.Now()
			if stats.Count(slurm.RPCSqueue) > rpcBefore {
				lastRefresh = now
			}
			if age := now.Sub(lastRefresh); age > maxStale {
				maxStale = age
			}
			s.Env.Clock.Advance(step)
			s.Env.Cluster.Ctl.Tick()
		}
		out = append(out, TTLSweepRow{
			TTL: ttl, CtlRPCs: stats.Count(slurm.RPCSqueue) - before,
			MaxStaleness: maxStale,
		})
	}
	return out, nil
}

// SingleflightRow compares a synchronized request burst with and without
// miss collapsing.
type SingleflightRow struct {
	Collapsing bool
	Burst      int
	CtlRPCs    int64
}

// Section24Singleflight fires one synchronized burst of identical cold
// requests (one user's recent-jobs widget, so the burst shares one cache
// key). Expected shape: with collapsing a burst costs one slurmctld query;
// without it, one per request (the stampede the paper's caching guards
// against when many browser tabs open the dashboard at once).
func Section24Singleflight(s *Stack, burst int) ([]SingleflightRow, error) {
	stats := s.Env.Cluster.Ctl.Stats()
	user := s.User(0)
	run := func(collapse bool) (int64, error) {
		s.ClearServerCache()
		before := stats.Count(slurm.RPCSqueue)
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		start := make(chan struct{})
		for i := 0; i < burst; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				var err error
				if collapse {
					_, _, err = s.MustGet(user, "/api/recent_jobs")
				} else {
					// Bypass the shared cache entry by querying Slurm
					// directly, as an uncached backend would.
					_, err = s.Env.Runner.Run("squeue", "-h", "-u", user, "-t", "all", "--limit", "8")
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}(i)
		}
		close(start)
		wg.Wait()
		return stats.Count(slurm.RPCSqueue) - before, firstErr
	}
	withRPCs, err := run(true)
	if err != nil {
		return nil, err
	}
	withoutRPCs, err := run(false)
	if err != nil {
		return nil, err
	}
	return []SingleflightRow{
		{Collapsing: true, Burst: burst, CtlRPCs: withRPCs},
		{Collapsing: false, Burst: burst, CtlRPCs: withoutRPCs},
	}, nil
}

// --- E10: §2.4 privacy ------------------------------------------------------------

// PrivacyResult is the access-matrix audit: every user probes every other
// user's job and logs; the counts must match the group structure exactly.
type PrivacyResult struct {
	Probes          int
	OwnerAllowed    int
	GroupAllowed    int
	OutsiderDenied  int
	LogOwnerAllowed int
	LogOthersDenied int
	Violations      []string
	FilterLatency   time.Duration // mean latency of a permission-checked route
}

// Section24Privacy audits the privacy boundary with an adversarial access
// matrix. Expected shape: zero violations.
func Section24Privacy(s *Stack, probeUsers int) (PrivacyResult, error) {
	now := s.Env.Clock.Now()
	jobs := s.Env.Cluster.DBD.Jobs(slurm.JobFilter{Limit: probeUsers}, now)
	if len(jobs) == 0 {
		return PrivacyResult{}, fmt.Errorf("privacy: no jobs to probe")
	}
	var res PrivacyResult
	var lats durations
	for _, job := range jobs {
		path := fmt.Sprintf("/api/job/%d", job.ID)
		logPath := path + "/logs"
		for v := 0; v < probeUsers; v++ {
			viewer := s.User(v)
			vu, ok := s.Env.Users.Lookup(viewer)
			if !ok {
				continue
			}
			sameGroup := vu.MemberOf(job.Account)
			status, _, lat, err := s.Get(viewer, path)
			if err != nil {
				return res, err
			}
			lats = append(lats, lat)
			res.Probes++
			switch {
			case viewer == job.User && status == 200:
				res.OwnerAllowed++
			case viewer != job.User && sameGroup && status == 200:
				res.GroupAllowed++
			case !sameGroup && viewer != job.User && status == 403:
				res.OutsiderDenied++
			default:
				res.Violations = append(res.Violations, fmt.Sprintf(
					"job %d viewer %s (group=%v): status %d", job.ID, viewer, sameGroup, status))
			}
			// Logs: strictly owner-only.
			lstatus, _, _, err := s.Get(viewer, logPath)
			if err != nil {
				return res, err
			}
			switch {
			case viewer == job.User && (lstatus == 200 || lstatus == 404):
				// 404 is fine: not every trace job has a written log file.
				res.LogOwnerAllowed++
			case viewer != job.User && lstatus == 403:
				res.LogOthersDenied++
			default:
				res.Violations = append(res.Violations, fmt.Sprintf(
					"logs of job %d viewer %s: status %d", job.ID, viewer, lstatus))
			}
		}
	}
	res.FilterLatency = lats.mean()
	return res, nil
}
