package experiments

import (
	"testing"
	"time"

	"ooddash/internal/workload"
)

// newSmallStack boots the small workload for fast experiment tests.
func newSmallStack(t *testing.T) *Stack {
	t.Helper()
	s, err := NewStack(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestTable1AllRowsServe(t *testing.T) {
	s := newSmallStack(t)
	rows, err := Table1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 10 {
		t.Fatalf("rows = %d, want >= 10", len(rows))
	}
	for _, r := range rows {
		if r.Cold <= 0 || r.Warm <= 0 || r.Bytes == 0 {
			t.Errorf("row %s: cold=%v warm=%v bytes=%d", r.Feature, r.Cold, r.Warm, r.Bytes)
		}
	}
	// Shape: Slurm-backed rows must be faster cached than cold. Loopback
	// HTTP noise can blur sub-millisecond rows, so check the heaviest row
	// (My Jobs over the whole history) rather than each individually.
	for _, r := range rows {
		if r.Feature == "My Jobs" && r.Speedup() < 1 {
			t.Errorf("My Jobs cached slower than cold: %+v", r)
		}
	}
}

func TestTable1SourcesVerified(t *testing.T) {
	s := newSmallStack(t)
	verified, err := VerifyTable1Sources(s)
	if err != nil {
		t.Fatal(err)
	}
	for feature, ok := range verified {
		if !ok {
			t.Errorf("feature %q did not drive its stated Slurm RPC", feature)
		}
	}
	if len(verified) < 8 {
		t.Fatalf("probed features = %d", len(verified))
	}
}

func TestFigure1FlowShrinksPerLayer(t *testing.T) {
	s := newSmallStack(t)
	res, err := Figure1DataFlow(s, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res.WidgetViews != 8*6*5 {
		t.Fatalf("widget views = %d", res.WidgetViews)
	}
	// Layered shrink: widget views > network calls > ctl RPCs.
	if !(res.WidgetViews > res.NetworkCalls) {
		t.Fatalf("network calls %d not below widget views %d", res.NetworkCalls, res.WidgetViews)
	}
	if !(int64(res.NetworkCalls) > res.CtlRPCs) {
		t.Fatalf("ctl RPCs %d not below network calls %d", res.CtlRPCs, res.NetworkCalls)
	}
	if res.ClientFresh+res.ClientStale == 0 {
		t.Fatal("client cache never hit")
	}
	if res.NewsRequests > 2 {
		t.Fatalf("news requests = %d, want <= 2 (30-minute TTL)", res.NewsRequests)
	}
}

func TestFigure2WarmIsInstant(t *testing.T) {
	s := newSmallStack(t)
	res, err := Figure2Homepage(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.WidgetCount != 5 || res.ColdFetches != 5 {
		t.Fatalf("cold = %+v", res)
	}
	if res.WarmFetches != 0 || res.WarmLatency != 0 || res.WarmInstant != 5 {
		t.Fatalf("warm revisit not instant: %+v", res)
	}
	if res.ColdLatency <= 0 {
		t.Fatalf("cold latency = %v", res.ColdLatency)
	}
	// Server-cache-only revisit still needs network but beats cold.
	if res.ServerWarmLat <= 0 || res.ServerWarmLat >= res.ColdLatency*3 {
		t.Fatalf("server-warm latency %v vs cold %v", res.ServerWarmLat, res.ColdLatency)
	}
}

func TestFigure3MyJobsShape(t *testing.T) {
	s := newSmallStack(t)
	res, err := Figure3MyJobs(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("empty table")
	}
	if res.States["COMPLETED"] == 0 || res.States["FAILED"] == 0 {
		t.Fatalf("states = %+v, want completed and failed present", res.States)
	}
	if res.WithEffData == 0 {
		t.Fatal("no rows carry efficiency data")
	}
	if res.WithWarnings == 0 {
		t.Fatal("no wasteful jobs flagged (trace has interactive sessions)")
	}
}

func TestFigure4aMonotonicRanges(t *testing.T) {
	s := newSmallStack(t)
	rows, err := Figure4aJobPerf(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// 24h <= 7d <= 30d <= 90d <= all.
	for i := 1; i < 5; i++ {
		if rows[i].TotalJobs < rows[i-1].TotalJobs {
			t.Fatalf("range %s has fewer jobs (%d) than %s (%d)",
				rows[i].Range, rows[i].TotalJobs, rows[i-1].Range, rows[i-1].TotalJobs)
		}
	}
	if rows[4].TotalJobs == 0 {
		t.Fatal("all-time shows zero jobs")
	}
}

func TestFigure4bScalesWithNodes(t *testing.T) {
	rows, err := Figure4bClusterStatus([]int{32, 128}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Nodes >= rows[1].Nodes {
		t.Fatalf("node counts not increasing: %d then %d", rows[0].Nodes, rows[1].Nodes)
	}
	if rows[1].Bytes <= rows[0].Bytes {
		t.Fatalf("payload did not grow with cluster: %d then %d", rows[0].Bytes, rows[1].Bytes)
	}
}

func TestFigure4cBusiestNode(t *testing.T) {
	s := newSmallStack(t)
	res, err := Figure4cNodeOverview(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Node == "" || res.State == "" {
		t.Fatalf("res = %+v", res)
	}
	if res.RunningJobs == 0 {
		t.Fatalf("busiest node %s shows no running jobs", res.Node)
	}
	if res.CPUPercent <= 0 {
		t.Fatalf("cpu%% = %v", res.CPUPercent)
	}
}

func TestFigure4dLogCapAndArray(t *testing.T) {
	s := newSmallStack(t)
	res, err := Figure4dJobOverview(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogTotalLines != 50_000 || res.LogShownLines != 1000 || !res.LogTruncated {
		t.Fatalf("log view = %+v", res)
	}
	if res.ArrayTasks != 100 {
		t.Fatalf("array tasks = %d", res.ArrayTasks)
	}
	if res.TimelineDone < 3 { // submitted, eligible, started
		t.Fatalf("timeline done = %d", res.TimelineDone)
	}
}

func TestSection24CacheShieldsController(t *testing.T) {
	s := newSmallStack(t)
	on, err := Section24CacheLoad(s, []int{4, 16}, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Section24CacheLoad(s, []int{4, 16}, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	// Cache on: RPCs per request collapse far below 1.
	for _, row := range on {
		if row.RPCsPerReq > 0.5 {
			t.Fatalf("cache-on RPCs/req = %v (row %+v)", row.RPCsPerReq, row)
		}
	}
	// Cache off: every request reaches the controller.
	for _, row := range off {
		if row.RPCsPerReq < 0.9 {
			t.Fatalf("cache-off RPCs/req = %v (row %+v)", row.RPCsPerReq, row)
		}
	}
	// Shape: off-RPCs grow with users, on-RPCs grow much slower.
	if off[1].CtlRPCs <= off[0].CtlRPCs {
		t.Fatalf("cache-off RPCs not growing: %+v", off)
	}
	if on[1].CtlRPCs >= off[1].CtlRPCs {
		t.Fatalf("cache-on RPCs (%d) not below cache-off (%d)", on[1].CtlRPCs, off[1].CtlRPCs)
	}
}

func TestSection24TTLSweepTradeoff(t *testing.T) {
	s := newSmallStack(t)
	rows, err := Section24TTLSweep(s, []time.Duration{
		5 * time.Second, 30 * time.Second, 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	// RPCs fall with TTL; staleness rises and stays bounded by the TTL.
	for i := 1; i < len(rows); i++ {
		if rows[i].CtlRPCs > rows[i-1].CtlRPCs {
			t.Fatalf("RPCs rose with TTL: %+v", rows)
		}
	}
	for _, r := range rows {
		if r.MaxStaleness > r.TTL+5*time.Second {
			t.Fatalf("staleness %v exceeds TTL %v", r.MaxStaleness, r.TTL)
		}
	}
	if rows[0].CtlRPCs == rows[len(rows)-1].CtlRPCs {
		t.Fatalf("TTL had no effect: %+v", rows)
	}
}

func TestSection24SingleflightCollapsesBurst(t *testing.T) {
	s := newSmallStack(t)
	rows, err := Section24Singleflight(s, 16)
	if err != nil {
		t.Fatal(err)
	}
	var with, without int64
	for _, r := range rows {
		if r.Collapsing {
			with = r.CtlRPCs
		} else {
			without = r.CtlRPCs
		}
	}
	if with != 1 {
		t.Fatalf("collapsed burst cost %d RPCs, want 1", with)
	}
	if without != 16 {
		t.Fatalf("uncollapsed burst cost %d RPCs, want 16", without)
	}
}

func TestSection24PrivacyNoViolations(t *testing.T) {
	s := newSmallStack(t)
	res, err := Section24Privacy(s, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("privacy violations: %v", res.Violations)
	}
	if res.Probes == 0 || res.OwnerAllowed == 0 || res.OutsiderDenied == 0 {
		t.Fatalf("probe coverage too thin: %+v", res)
	}
	if res.LogOthersDenied == 0 {
		t.Fatalf("log denial never exercised: %+v", res)
	}
}

func TestExtensionEventsVsPolling(t *testing.T) {
	s := newSmallStack(t)
	rows, err := ExtensionEventsVsPolling(s, 12, 30*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	var poll, feed MonitoringRow
	for _, r := range rows {
		switch r.Mechanism {
		case "squeue-poll":
			poll = r
		case "event-feed":
			feed = r
		}
	}
	if poll.Polls != feed.Polls {
		t.Fatalf("poll counts differ: %d vs %d", poll.Polls, feed.Polls)
	}
	// Shape: the delta feed moves far fewer bytes than repeated full polls.
	if feed.Bytes*5 > poll.Bytes {
		t.Fatalf("event feed bytes %d not well below polling bytes %d", feed.Bytes, poll.Bytes)
	}
	// Both mechanisms observe state changes.
	if feed.Updates == 0 {
		t.Fatal("event feed delivered no updates")
	}
}

func TestExtensionPreemptionTurnaround(t *testing.T) {
	res, err := ExtensionPreemption()
	if err != nil {
		t.Fatal(err)
	}
	if res.WithPreemption != 0 {
		t.Fatalf("with preemption the urgent job waited %v, want immediate start", res.WithPreemption)
	}
	if res.WithoutPreemption < 2*time.Hour {
		t.Fatalf("without preemption wait = %v, want hours", res.WithoutPreemption)
	}
	if res.RequeuedJobs == 0 {
		t.Fatal("no standby jobs were requeued")
	}
}

func TestExtensionInsightsCoverage(t *testing.T) {
	s := newSmallStack(t)
	cov, err := ExtensionInsightsCoverage(s)
	if err != nil {
		t.Fatal(err)
	}
	if cov.UsersAnalyzed == 0 {
		t.Fatal("no users analyzed")
	}
	if cov.UsersWithFinding == 0 {
		t.Fatal("trace with wasteful sessions produced no findings")
	}
	if len(cov.FindingsByKind) == 0 {
		t.Fatalf("coverage = %+v", cov)
	}
}
