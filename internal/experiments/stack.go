// Package experiments implements the paper-reproduction harness: one
// function per table/figure (see DESIGN.md's experiment index) returning
// structured results that cmd/benchharness prints and the root benchmarks
// measure. Each experiment states what the paper's artifact shows and what
// shape the reproduction is expected to have.
package experiments

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/browser"
	"ooddash/internal/core"
	"ooddash/internal/workload"
)

// Stack is a running full deployment: workload env, news service, and the
// dashboard server, all reachable over loopback HTTP.
type Stack struct {
	Env    *workload.Env
	Server *core.Server
	// WebURL and NewsURL are the loopback base URLs of the two services.
	WebURL  string
	NewsURL string

	client  *http.Client
	closers []func()
}

// NewStack builds the environment and boots both HTTP services.
func NewStack(spec workload.Spec) (*Stack, error) {
	env, err := workload.Build(spec)
	if err != nil {
		return nil, err
	}
	s := &Stack{Env: env, client: &http.Client{}}

	newsLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("experiments: news listener: %w", err)
	}
	s.NewsURL = fmt.Sprintf("http://%s/", newsLn.Addr())
	newsSrv := &http.Server{Handler: env.Feed}
	go func() { _ = newsSrv.Serve(newsLn) }()
	s.closers = append(s.closers, func() { _ = newsSrv.Close() })

	server, err := env.NewServer(s.NewsURL)
	if err != nil {
		s.Close()
		return nil, err
	}
	s.Server = server

	webLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, fmt.Errorf("experiments: web listener: %w", err)
	}
	s.WebURL = fmt.Sprintf("http://%s", webLn.Addr())
	webSrv := &http.Server{Handler: server}
	go func() { _ = webSrv.Serve(webLn) }()
	s.closers = append(s.closers, func() { _ = webSrv.Close() })
	return s, nil
}

// Close shuts down the HTTP services.
func (s *Stack) Close() {
	for i := len(s.closers) - 1; i >= 0; i-- {
		s.closers[i]()
	}
	s.closers = nil
}

// GetBody performs one authenticated request and returns status, body, and
// latency.
func (s *Stack) GetBody(user, path string) (status int, body []byte, latency time.Duration, err error) {
	req, err := http.NewRequest("GET", s.WebURL+path, nil)
	if err != nil {
		return 0, nil, 0, err
	}
	req.Header.Set(auth.UserHeader, user)
	start := time.Now()
	resp, err := s.client.Do(req)
	if err != nil {
		return 0, nil, time.Since(start), err
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, body, time.Since(start), err
}

// Get is GetBody reporting only the body size.
func (s *Stack) Get(user, path string) (status, bytes int, latency time.Duration, err error) {
	status, body, latency, err := s.GetBody(user, path)
	return status, len(body), latency, err
}

// MustGet is Get that converts failures and non-200s into errors.
func (s *Stack) MustGet(user, path string) (int, time.Duration, error) {
	status, n, lat, err := s.Get(user, path)
	if err != nil {
		return 0, lat, err
	}
	if status != http.StatusOK {
		return 0, lat, fmt.Errorf("experiments: GET %s as %s: status %d", path, user, status)
	}
	return n, lat, nil
}

// Browser returns a fresh simulated browser profile for the user.
func (s *Stack) Browser(user string) *browser.Browser {
	return browser.New(user, s.WebURL, s.client, s.Env.Clock)
}

// ClearServerCache wipes the backend cache (used to measure cold paths).
func (s *Stack) ClearServerCache() { s.Server.Cache().Clear() }

// User returns the nth generated username.
func (s *Stack) User(n int) string {
	return s.Env.UserNames[n%len(s.Env.UserNames)]
}

// --- small stat helpers shared by experiments --------------------------------

// durations aggregates latency samples.
type durations []time.Duration

func (d durations) percentile(p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sorted := append(durations(nil), d...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

func (d durations) mean() time.Duration {
	if len(d) == 0 {
		return 0
	}
	var sum time.Duration
	for _, v := range d {
		sum += v
	}
	return sum / time.Duration(len(d))
}
