package newsfeed

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func TestPublishAndRecent(t *testing.T) {
	clock := newFakeClock()
	f := New(clock)
	id1 := f.Publish(Article{Title: "first", Category: CategoryNews})
	clock.Advance(time.Hour)
	id2 := f.Publish(Article{Title: "second", Category: CategoryOutage})
	if id1 == id2 {
		t.Fatal("IDs not unique")
	}
	recent := f.Recent(0)
	if len(recent) != 2 {
		t.Fatalf("recent = %d", len(recent))
	}
	if recent[0].Title != "second" {
		t.Fatalf("newest first violated: %+v", recent)
	}
	if got := f.Recent(1); len(got) != 1 || got[0].Title != "second" {
		t.Fatalf("Recent(1) = %+v", got)
	}
}

func TestUrgencyColors(t *testing.T) {
	tests := []struct {
		cat  Category
		want string
	}{
		{CategoryOutage, "red"},
		{CategoryMaintenance, "yellow"},
		{CategoryNews, "gray"},
		{CategoryFeature, "gray"},
	}
	for _, tc := range tests {
		if got := tc.cat.UrgencyColor(); got != tc.want {
			t.Errorf("%s color = %s, want %s", tc.cat, got, tc.want)
		}
	}
}

func TestActiveStyling(t *testing.T) {
	now := time.Date(2026, 7, 1, 12, 0, 0, 0, time.UTC)
	current := Article{PostedAt: now.Add(-time.Hour), EndsAt: now.Add(time.Hour)}
	if !current.Active(now) {
		t.Error("ongoing event should be active")
	}
	future := Article{PostedAt: now, StartsAt: now.Add(24 * time.Hour), EndsAt: now.Add(25 * time.Hour)}
	if !future.Active(now) {
		t.Error("future event should be active")
	}
	past := Article{PostedAt: now.Add(-48 * time.Hour), EndsAt: now.Add(-24 * time.Hour)}
	if past.Active(now) {
		t.Error("finished event should be inactive")
	}
	freshNews := Article{PostedAt: now.Add(-2 * 24 * time.Hour)}
	if !freshNews.Active(now) {
		t.Error("recent undated news should be active")
	}
	oldNews := Article{PostedAt: now.Add(-30 * 24 * time.Hour)}
	if oldNews.Active(now) {
		t.Error("month-old undated news should be inactive")
	}
}

func TestHTTPAPIRoundTrip(t *testing.T) {
	clock := newFakeClock()
	f := New(clock)
	f.Publish(Article{Title: "Planned maintenance", Category: CategoryMaintenance,
		StartsAt: clock.Now().Add(24 * time.Hour), EndsAt: clock.Now().Add(32 * time.Hour)})
	clock.Advance(time.Minute)
	f.Publish(Article{Title: "Scratch filesystem outage", Category: CategoryOutage})

	srv := httptest.NewServer(f)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	articles, err := c.Fetch(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(articles) != 2 {
		t.Fatalf("articles = %d", len(articles))
	}
	if articles[0].Title != "Scratch filesystem outage" || articles[0].Category != CategoryOutage {
		t.Fatalf("articles[0] = %+v", articles[0])
	}
	if articles[1].EndsAt.IsZero() {
		t.Fatal("maintenance window lost its end time over the wire")
	}
	if f.Requests() != 1 {
		t.Fatalf("requests = %d, want 1", f.Requests())
	}
}

func TestHTTPAPILimit(t *testing.T) {
	f := New(newFakeClock())
	for i := 0; i < 5; i++ {
		f.Publish(Article{Title: "article", Category: CategoryNews})
	}
	srv := httptest.NewServer(f)
	defer srv.Close()

	c := &Client{BaseURL: srv.URL}
	articles, err := c.Fetch(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(articles) != 3 {
		t.Fatalf("articles = %d, want 3", len(articles))
	}
}

func TestHTTPAPIBadLimit(t *testing.T) {
	f := New(newFakeClock())
	srv := httptest.NewServer(f)
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "?limit=potato")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
