// Package newsfeed simulates the HPC center's news/announcements API that
// the dashboard's Announcements widget consumes (§3.1 of the paper). The
// real system calls the RCAC website's news endpoint; this package provides
// an equivalent store of categorized, dated articles plus an HTTP JSON
// endpoint, so the widget's data path (HTTP call → JSON → accordion with
// urgency colors and active/past styling) is exercised end to end.
package newsfeed

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Category classifies an article; the widget color-codes by category
// (outages red, maintenance yellow, everything else gray).
type Category string

// Article categories.
const (
	CategoryOutage      Category = "outage"
	CategoryMaintenance Category = "maintenance"
	CategoryFeature     Category = "feature"
	CategoryNews        Category = "news"
)

// UrgencyColor returns the accordion color the paper assigns each category.
func (c Category) UrgencyColor() string {
	switch c {
	case CategoryOutage:
		return "red"
	case CategoryMaintenance:
		return "yellow"
	default:
		return "gray"
	}
}

// Article is one announcement.
type Article struct {
	ID       int       `json:"id"`
	Title    string    `json:"title"`
	Body     string    `json:"body"`
	Category Category  `json:"category"`
	PostedAt time.Time `json:"posted_at"`
	// StartsAt/EndsAt bound the event the article describes (outage or
	// maintenance window). Zero for undated news.
	StartsAt time.Time `json:"starts_at,omitempty"`
	EndsAt   time.Time `json:"ends_at,omitempty"`
	Cluster  string    `json:"cluster,omitempty"` // empty means all clusters
}

// Active reports whether the article describes a current or upcoming event
// (the widget styles these prominently; past events go faint gray).
func (a *Article) Active(now time.Time) bool {
	if a.EndsAt.IsZero() {
		// Undated articles stay active for a week after posting.
		return now.Sub(a.PostedAt) <= 7*24*time.Hour
	}
	return !now.After(a.EndsAt)
}

// Clock supplies the current time (matches slurm.Clock).
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Feed is a thread-safe article store with an HTTP JSON API.
type Feed struct {
	mu       sync.RWMutex
	articles []Article
	nextID   int
	clock    Clock
	// requests counts API hits so experiments can verify the announcements
	// cache shields this service, like the Slurm daemon counters do.
	requests int64
}

// New returns an empty feed. A nil clock uses wall time.
func New(clock Clock) *Feed {
	if clock == nil {
		clock = realClock{}
	}
	return &Feed{nextID: 1, clock: clock}
}

// Publish adds an article and returns its assigned ID.
func (f *Feed) Publish(a Article) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	a.ID = f.nextID
	f.nextID++
	if a.PostedAt.IsZero() {
		a.PostedAt = f.clock.Now()
	}
	f.articles = append(f.articles, a)
	return a.ID
}

// Recent returns up to n articles, newest first. n <= 0 returns all.
func (f *Feed) Recent(n int) []Article {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]Article, len(f.articles))
	copy(out, f.articles)
	sort.Slice(out, func(i, j int) bool {
		if !out[i].PostedAt.Equal(out[j].PostedAt) {
			return out[i].PostedAt.After(out[j].PostedAt)
		}
		return out[i].ID > out[j].ID
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// Requests returns how many API requests the feed has served.
func (f *Feed) Requests() int64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.requests
}

// ServeHTTP implements the news JSON API: GET /?limit=N returns the newest
// N articles (default 20).
func (f *Feed) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	f.requests++
	f.mu.Unlock()

	limit := 20
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, fmt.Sprintf("newsfeed: bad limit %q", v), http.StatusBadRequest)
			return
		}
		limit = n
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(f.Recent(limit)); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client fetches articles from a news API endpoint. The dashboard backend
// uses it the way the paper's backend calls the RCAC news page.
type Client struct {
	BaseURL    string
	HTTPClient *http.Client
}

// Fetch returns the newest limit articles from the feed endpoint.
func (c *Client) Fetch(limit int) ([]Article, error) {
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	url := fmt.Sprintf("%s?limit=%d", c.BaseURL, limit)
	resp, err := hc.Get(url)
	if err != nil {
		return nil, fmt.Errorf("newsfeed: fetching %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("newsfeed: %s returned %s", url, resp.Status)
	}
	var articles []Article
	if err := json.NewDecoder(resp.Body).Decode(&articles); err != nil {
		return nil, fmt.Errorf("newsfeed: decoding response: %w", err)
	}
	return articles, nil
}
