package fleet

import (
	"fmt"
	"reflect"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		if i%2 == 0 {
			keys[i] = fmt.Sprintf("system_status_%d", i)
		} else {
			keys[i] = fmt.Sprintf("recent_jobs:user%03d", i)
		}
	}
	return keys
}

func TestRingDeterministicAndOrderIndependent(t *testing.T) {
	a := buildRing([]string{"r0", "r1", "r2"}, 64)
	b := buildRing([]string{"r2", "r0", "r1"}, 64)
	for _, key := range testKeys(200) {
		if a.owner(key) != b.owner(key) {
			t.Fatalf("owner(%q) depends on membership order: %q vs %q", key, a.owner(key), b.owner(key))
		}
	}
	if got := a.members(); !reflect.DeepEqual(got, []string{"r0", "r1", "r2"}) {
		t.Fatalf("members = %v", got)
	}
}

func TestRingMinimalMovementOnRemoval(t *testing.T) {
	full := buildRing([]string{"r0", "r1", "r2", "r3"}, 64)
	less := buildRing([]string{"r0", "r1", "r3"}, 64)
	keys := testKeys(400)
	moved := 0
	for _, key := range keys {
		before, after := full.owner(key), less.owner(key)
		if before == "r2" {
			if after == "r2" {
				t.Fatalf("key %q still owned by removed member", key)
			}
			moved++
			continue
		}
		// Consistency: keys not owned by the removed member must not move.
		if before != after {
			t.Fatalf("key %q moved %q -> %q though its owner survived", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned nothing; test keys too few")
	}
}

func TestRingBalance(t *testing.T) {
	r := buildRing([]string{"r0", "r1", "r2", "r3"}, 64)
	counts := map[string]int{}
	keys := testKeys(2000)
	for _, key := range keys {
		counts[r.owner(key)]++
	}
	want := len(keys) / 4
	for id, n := range counts {
		if n < want/3 || n > want*3 {
			t.Fatalf("member %s owns %d of %d keys (ideal %d): ring badly unbalanced", id, n, len(keys), want)
		}
	}
}

func TestRingOwnersForDistinctAndStable(t *testing.T) {
	r := buildRing([]string{"r0", "r1", "r2"}, 64)
	order := r.ownersFor("sticky/user001", 3)
	if len(order) != 3 {
		t.Fatalf("ownersFor returned %v, want 3 distinct members", order)
	}
	seen := map[string]bool{}
	for _, id := range order {
		if seen[id] {
			t.Fatalf("ownersFor repeated %q: %v", id, order)
		}
		seen[id] = true
	}
	// Failover preference: removing the first choice keeps the rest of the
	// sequence, so a user's fallback replica is stable across the kill.
	rest := []string{order[1], order[2]}
	smaller := buildRing(rest, 64)
	if got := smaller.ownersFor("sticky/user001", 2); !reflect.DeepEqual(got, rest) {
		t.Fatalf("failover order changed after removal: %v, want %v", got, rest)
	}
}

func TestRingEmpty(t *testing.T) {
	r := buildRing(nil, 64)
	if got := r.owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want empty", got)
	}
	if got := r.ownersFor("anything", 2); got != nil {
		t.Fatalf("empty ring ownersFor = %v, want nil", got)
	}
}
