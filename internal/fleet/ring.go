package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring over replica IDs. Each member contributes
// vnodes points (FNV-1a of "id#i") on a uint64 circle; a key is owned by
// the member whose point is the first at or clockwise of the key's hash.
// Virtual nodes smooth the partition sizes, and consistency bounds the
// churn: removing one member moves only the keys it owned, so a replica
// kill re-elects exactly the dead replica's sources and nothing else.
type ring struct {
	hashes []uint64 // sorted point hashes
	owners []string // owners[i] owns hashes[i]
}

// hashKey is the ring's key hash: FNV-1a (the family the hub's content hash
// uses — deterministic across runs, no seed) pushed through a 64-bit
// avalanche finalizer. Raw FNV is too weak for ring placement: strings that
// differ only in a short suffix ("r0#0" … "r0#63") land within ~2^46 of each
// other on the 2^64 circle, clustering a member's virtual nodes into one arc
// and destroying the balance vnodes exist to provide.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 fmix64 finalizer: full avalanche, bijective.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// buildRing constructs a ring over ids with the given virtual-node count.
// An empty id set yields an empty ring (owner returns "").
func buildRing(ids []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	type point struct {
		hash uint64
		id   string
	}
	pts := make([]point, 0, len(ids)*vnodes)
	for _, id := range ids {
		for i := 0; i < vnodes; i++ {
			pts = append(pts, point{hash: hashKey(id + "#" + strconv.Itoa(i)), id: id})
		}
	}
	// Ties (identical point hashes) break by id so the ring is a pure
	// function of its membership set, independent of insertion order.
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].hash != pts[j].hash {
			return pts[i].hash < pts[j].hash
		}
		return pts[i].id < pts[j].id
	})
	r := &ring{
		hashes: make([]uint64, len(pts)),
		owners: make([]string, len(pts)),
	}
	for i, p := range pts {
		r.hashes[i] = p.hash
		r.owners[i] = p.id
	}
	return r
}

// owner returns the member owning key, or "" on an empty ring.
func (r *ring) owner(key string) string {
	if len(r.hashes) == 0 {
		return ""
	}
	h := hashKey(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0 // wrap past the highest point
	}
	return r.owners[i]
}

// ownersFor walks clockwise from key collecting up to n distinct members in
// preference order — the failover sequence sticky routing uses.
func (r *ring) ownersFor(key string, n int) []string {
	if len(r.hashes) == 0 || n <= 0 {
		return nil
	}
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.hashes) && len(out) < n; i++ {
		id := r.owners[(start+i)%len(r.hashes)]
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// members returns the distinct member ids on the ring, sorted.
func (r *ring) members() []string {
	seen := make(map[string]bool)
	out := make([]string, 0, 4)
	for _, id := range r.owners {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}
