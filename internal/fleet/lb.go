package fleet

import (
	"fmt"
	"net/http"
	"sort"

	"ooddash/internal/auth"
)

// Policy selects how the simulated load balancer spreads requests over
// replicas.
type Policy string

const (
	// PolicyRoundRobin cycles requests over live replicas.
	PolicyRoundRobin Policy = "round_robin"
	// PolicyLeastConn prefers the replica with the fewest in-flight
	// requests (ties break by replica order).
	PolicyLeastConn Policy = "least_conn"
	// PolicySticky pins each authenticated user to a replica by consistent
	// hash, so a user's SSE stream and their page polls land on the same
	// replica (one hub fan-out per user, maximal client-cache 304 reuse);
	// anonymous requests fall back to round-robin. On failover the user
	// moves to the next replica on the ring and sticks there.
	PolicySticky Policy = "sticky"
)

// ParsePolicy validates a -lb-policy flag value.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyRoundRobin, PolicyLeastConn, PolicySticky:
		return Policy(s), nil
	case "":
		return PolicyRoundRobin, nil
	}
	return "", fmt.Errorf("fleet: unknown lb policy %q (want round_robin, least_conn, or sticky)", s)
}

// fleetReplicaHeaderKey names the replica that served a response, in
// canonical MIME form (wire: X-Ooddash-Replica).
const fleetReplicaHeaderKey = "X-Ooddash-Replica"

// ServeHTTP is the load balancer: it orders the replicas per policy, skips
// unhealthy ones (a killed replica models a refused connection — passive
// failover retries the next candidate, so clients never see the corpse),
// and proxies to the first live replica.
func (fl *Fleet) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	order := fl.routeOrder(r)
	skipped := 0
	for _, rep := range order {
		if !rep.healthy() {
			skipped++
			continue
		}
		if skipped > 0 {
			fl.met.lbFailovers.Add(int64(skipped))
		}
		fl.met.lbRequests.With(rep.id).Inc()
		w.Header()[fleetReplicaHeaderKey] = []string{rep.id}
		rep.inflight.Add(1)
		rep.srv.ServeHTTP(w, r)
		rep.inflight.Add(-1)
		return
	}
	http.Error(w, "fleet: no live replicas", http.StatusServiceUnavailable)
}

// routeOrder returns every replica in the policy's preference order; the
// caller walks it skipping unhealthy entries.
func (fl *Fleet) routeOrder(r *http.Request) []*replica {
	reps := fl.replicaList()
	if len(reps) <= 1 {
		return reps
	}
	switch fl.opts.Policy {
	case PolicyLeastConn:
		order := make([]*replica, len(reps))
		copy(order, reps)
		sort.SliceStable(order, func(i, j int) bool {
			return order[i].inflight.Load() < order[j].inflight.Load()
		})
		return order
	case PolicySticky:
		if user := r.Header.Get(auth.UserHeader); user != "" {
			ids := fl.currentRing().ownersFor("sticky/"+user, len(reps))
			byID := make(map[string]*replica, len(reps))
			for _, rep := range reps {
				byID[rep.id] = rep
			}
			order := make([]*replica, 0, len(reps))
			for _, id := range ids {
				if rep := byID[id]; rep != nil {
					order = append(order, rep)
					delete(byID, id)
				}
			}
			// Replicas not on the ring yet (e.g. just joined, ring not
			// rebuilt) go last, in stable order.
			for _, rep := range reps {
				if byID[rep.id] != nil {
					order = append(order, rep)
				}
			}
			return order
		}
		fallthrough
	default: // round_robin
		n := int(fl.rr.Add(1)-1) % len(reps)
		order := make([]*replica, 0, len(reps))
		order = append(order, reps[n:]...)
		order = append(order, reps[:n]...)
		return order
	}
}
