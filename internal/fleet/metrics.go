package fleet

import (
	"sort"

	"ooddash/internal/obs"
	"ooddash/internal/slo"
)

// propLagBuckets span the propagation-drain latency range: sub-tick (near
// zero on the simulated clock) out to several refresh intervals when a
// drain is delayed; +Inf is implicit.
var propLagBuckets = []float64{
	0.001, 0.01, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// metrics is the fleet's own registry, exposed at /metrics/fleet.
type metrics struct {
	reg *obs.Registry

	ownerChanges   *obs.Counter    // ooddash_fleet_owner_changes_total
	propagations   *obs.Counter    // ooddash_fleet_propagations_total
	propLag        *obs.Histogram  // ooddash_fleet_propagation_lag_seconds
	lbRequests     *obs.CounterVec // ooddash_fleet_lb_requests_total{replica}
	lbFailovers    *obs.Counter    // ooddash_fleet_lb_failovers_total
	ensureFailures *obs.Counter    // ooddash_fleet_ensure_failures_total
	hbExpiries     *obs.Counter    // ooddash_fleet_heartbeat_expiries_total
	reaped         *obs.Counter    // ooddash_fleet_sources_reaped_total
}

func newMetrics(fl *Fleet) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		ownerChanges: reg.Counter("ooddash_fleet_owner_changes_total",
			"Source-ownership handovers (re-elections) across all membership changes."),
		propagations: reg.Counter("ooddash_fleet_propagations_total",
			"Owner snapshots propagated to the fleet (one per source publish, fanned out to every healthy peer)."),
		propLag: reg.HistogramVec("ooddash_fleet_propagation_lag_seconds",
			"Seconds between an owner publishing a snapshot and the propagation drain shipping it to peers.",
			propLagBuckets).With(),
		lbRequests: reg.CounterVec("ooddash_fleet_lb_requests_total",
			"Requests routed by the load balancer, by serving replica.", "replica"),
		lbFailovers: reg.Counter("ooddash_fleet_lb_failovers_total",
			"Unhealthy replicas skipped by the load balancer while routing requests."),
		ensureFailures: reg.Counter("ooddash_fleet_ensure_failures_total",
			"Peer Ensure calls that failed (no live owner or owner refresh error); the requester fell back to stale or local serving."),
		hbExpiries: reg.Counter("ooddash_fleet_heartbeat_expiries_total",
			"Membership changes triggered by heartbeat timeout (replicas declared dead)."),
		reaped: reg.Counter("ooddash_fleet_sources_reaped_total",
			"Idle sources unregistered by the fleet reaper."),
	}
	reg.GaugeFunc("ooddash_fleet_replicas_live",
		"Replicas currently serving (neither killed nor declared dead).",
		func() float64 { return float64(len(fl.Live())) })
	reg.GaugeFunc("ooddash_fleet_sources",
		"Source keys currently tracked by the fleet.",
		func() float64 {
			fl.mu.Lock()
			defer fl.mu.Unlock()
			return float64(len(fl.sources))
		})
	reg.CollectorFunc("ooddash_fleet_upstream_calls_total", obs.KindCounter,
		"Commands that actually reached the simulated Slurm daemons, after memo collapsing.",
		func() []obs.Sample {
			counts := fl.UpstreamCalls()
			daemons := make([]string, 0, len(counts))
			for d := range counts {
				daemons = append(daemons, d)
			}
			sort.Strings(daemons)
			out := make([]obs.Sample, 0, len(daemons))
			for _, d := range daemons {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "daemon", Value: d}},
					Value:  float64(counts[d]),
				})
			}
			return out
		})
	reg.CollectorFunc("ooddash_fleet_upstream_collapsed_total", obs.KindCounter,
		"Identical upstream commands collapsed by the fleet-shared memo, by daemon.",
		func() []obs.Sample {
			if fl.memo == nil {
				return nil
			}
			_, hits := fl.memo.counts()
			daemons := make([]string, 0, len(hits))
			for d := range hits {
				daemons = append(daemons, d)
			}
			sort.Strings(daemons)
			out := make([]obs.Sample, 0, len(daemons))
			for _, d := range daemons {
				out = append(out, obs.Sample{
					Labels: []obs.Label{{Name: "daemon", Value: d}},
					Value:  float64(hits[d]),
				})
			}
			return out
		})
	reg.CollectorFunc("ooddash_fleet_upstream_rpcs_total", obs.KindCounter,
		"Upstream Slurm commands issued by each replica, by daemon, before memo collapsing.",
		func() []obs.Sample {
			var out []obs.Sample
			for _, rep := range fl.replicaList() {
				counts := rep.rpcs.snapshot()
				daemons := make([]string, 0, len(counts))
				for d := range counts {
					daemons = append(daemons, d)
				}
				sort.Strings(daemons)
				for _, d := range daemons {
					out = append(out, obs.Sample{
						Labels: []obs.Label{{Name: "replica", Value: rep.id}, {Name: "daemon", Value: d}},
						Value:  float64(counts[d]),
					})
				}
			}
			return out
		})
	// Fleet-level SLO families mirror the per-replica ooddash_slo_* set so
	// one scrape answers "is the fleet meeting its objectives" next to each
	// replica's own view. All read the aggregator's self-evaluating
	// snapshot; the nil guard covers collection during construction (the
	// registry is built before the first replica, and thus the aggregator,
	// exists).
	sloStatus := func() []slo.ObjectiveStatus {
		if fl.sloAgg == nil {
			return nil
		}
		return fl.sloAgg.Status().Objectives
	}
	reg.CollectorFunc("ooddash_fleet_slo_burn_rate", obs.KindGauge,
		"Fleet-level error-budget burn rate per objective, rule, and window (pooled across healthy replicas).",
		func() []obs.Sample {
			var out []obs.Sample
			for _, o := range sloStatus() {
				for _, a := range o.Alerts {
					out = append(out,
						obs.Sample{Labels: []obs.Label{
							{Name: "objective", Value: o.Name},
							{Name: "rule", Value: a.Rule},
							{Name: "window", Value: "short"},
						}, Value: a.ShortBurn},
						obs.Sample{Labels: []obs.Label{
							{Name: "objective", Value: o.Name},
							{Name: "rule", Value: a.Rule},
							{Name: "window", Value: "long"},
						}, Value: a.LongBurn})
				}
			}
			return out
		})
	reg.CollectorFunc("ooddash_fleet_slo_alert_state", obs.KindGauge,
		"Fleet-level alert state per objective and rule (0 inactive, 1 pending, 2 firing).",
		func() []obs.Sample {
			var out []obs.Sample
			for _, o := range sloStatus() {
				for _, a := range o.Alerts {
					out = append(out, obs.Sample{Labels: []obs.Label{
						{Name: "objective", Value: o.Name},
						{Name: "rule", Value: a.Rule},
					}, Value: alertStateValue(a.State)})
				}
			}
			return out
		})
	reg.CollectorFunc("ooddash_fleet_slo_budget_spent_ratio", obs.KindGauge,
		"Fraction of the fleet's 28-day error budget spent, per objective.",
		func() []obs.Sample {
			var out []obs.Sample
			for _, o := range sloStatus() {
				out = append(out, obs.Sample{Labels: []obs.Label{
					{Name: "objective", Value: o.Name},
				}, Value: o.Budget.SpentRatio})
			}
			return out
		})
	reg.CollectorFunc("ooddash_fleet_slo_alerts_fired_total", obs.KindCounter,
		"Fleet-level alerts fired, per objective and rule.",
		func() []obs.Sample {
			var out []obs.Sample
			for _, o := range sloStatus() {
				for _, a := range o.Alerts {
					out = append(out, obs.Sample{Labels: []obs.Label{
						{Name: "objective", Value: o.Name},
						{Name: "rule", Value: a.Rule},
					}, Value: float64(a.Fired)})
				}
			}
			return out
		})
	reg.CollectorFunc("ooddash_fleet_slo_alerts_resolved_total", obs.KindCounter,
		"Fleet-level alerts resolved, per objective and rule.",
		func() []obs.Sample {
			var out []obs.Sample
			for _, o := range sloStatus() {
				for _, a := range o.Alerts {
					out = append(out, obs.Sample{Labels: []obs.Label{
						{Name: "objective", Value: o.Name},
						{Name: "rule", Value: a.Rule},
					}, Value: float64(a.Resolved)})
				}
			}
			return out
		})
	return m
}

// alertStateValue maps an alert state string to its gauge encoding.
func alertStateValue(state string) float64 {
	switch state {
	case "pending":
		return 1
	case "firing":
		return 2
	default:
		return 0
	}
}

// Metrics returns the fleet's registry for exposition alongside the
// replicas' own /metrics.
func (fl *Fleet) Metrics() *obs.Registry { return fl.met.reg }

// OwnerChanges returns the re-election count (benches gate on it).
func (fl *Fleet) OwnerChanges() int64 { return fl.met.ownerChanges.Value() }
