package fleet

import (
	"strings"
	"sync"
	"time"

	"ooddash/internal/slurmcli"
)

// memoRunner is the fleet's collapsed-forwarding layer: one shared runner
// beneath every replica that single-flights identical upstream commands and
// memoizes successful output for a short TTL on the shared clock.
//
// Ownership partitioning makes widget *refreshes* exclusive, but a widget's
// fetch may issue upstream commands keyed below the source key — the
// accounts widget polls per-account data shared by every user of that
// account, deduped only by a per-replica cache. Spreading per-user
// ownership across replicas would multiply those group-level commands by
// the number of owning replicas; the memo collapses them fleet-wide
// instead, the same way a caching proxy in front of slurmctld would.
//
// The TTL must stay well below the shortest widget TTL so the memo can
// never mask a refresh cadence — it only absorbs the same-instant
// duplicates of a single fleet-wide refresh wave. Errors are never cached.
type memoRunner struct {
	clock Clock
	ttl   time.Duration
	next  slurmcli.Runner

	mu      sync.Mutex
	entries map[string]*memoEntry
	hits    map[string]int64 // collapsed commands by daemon
	misses  map[string]int64 // commands that reached upstream, by daemon
}

type memoEntry struct {
	done chan struct{}
	out  string
	err  error
	at   time.Time
}

func newMemoRunner(clock Clock, ttl time.Duration, next slurmcli.Runner) *memoRunner {
	return &memoRunner{
		clock:   clock,
		ttl:     ttl,
		next:    next,
		entries: make(map[string]*memoEntry),
		hits:    make(map[string]int64, 2),
		misses:  make(map[string]int64, 2),
	}
}

func (m *memoRunner) Run(name string, args ...string) (string, error) {
	key := name + "\x00" + strings.Join(args, "\x00")
	daemon := slurmcli.DaemonFor(name)
	now := m.clock.Now()

	m.mu.Lock()
	if e, ok := m.entries[key]; ok {
		select {
		case <-e.done:
			// Completed entries in the map are always successes (errors are
			// deleted by their executor); serve if still fresh.
			if now.Sub(e.at) <= m.ttl {
				m.hits[daemon]++
				m.mu.Unlock()
				return e.out, nil
			}
		default:
			// In flight: share the executor's result. A shared error is
			// returned uncached, so the next caller retries upstream.
			m.mu.Unlock()
			<-e.done
			if e.err == nil {
				m.mu.Lock()
				m.hits[daemon]++
				m.mu.Unlock()
			}
			return e.out, e.err
		}
	}
	e := &memoEntry{done: make(chan struct{})}
	m.entries[key] = e
	m.misses[daemon]++
	if len(m.entries) > 256 {
		for k, old := range m.entries {
			select {
			case <-old.done:
				if now.Sub(old.at) > m.ttl {
					delete(m.entries, k)
				}
			default:
			}
		}
	}
	m.mu.Unlock()

	e.out, e.err = m.next.Run(name, args...)
	e.at = m.clock.Now()
	close(e.done)
	if e.err != nil {
		m.mu.Lock()
		if m.entries[key] == e {
			delete(m.entries, key)
		}
		m.mu.Unlock()
	}
	return e.out, e.err
}

// counts returns (upstream calls, collapsed calls) by daemon.
func (m *memoRunner) counts() (misses, hits map[string]int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	misses = make(map[string]int64, len(m.misses))
	for k, v := range m.misses {
		misses[k] = v
	}
	hits = make(map[string]int64, len(m.hits))
	for k, v := range m.hits {
		hits[k] = v
	}
	return misses, hits
}
