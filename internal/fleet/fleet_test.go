package fleet

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/browser"
	"ooddash/internal/core"
	"ooddash/internal/obs/obstest"
	"ooddash/internal/push"
	"ooddash/internal/slo"
	"ooddash/internal/slurm"
	"ooddash/internal/slurmcli"
	"ooddash/internal/workload"
)

// newTestFleet builds a fleet of n replicas over one shared simulated
// environment — N dashboard processes in front of one Slurm.
func newTestFleet(t *testing.T, n int, policy Policy, mutate func(*Options)) (*workload.Env, *Fleet) {
	t.Helper()
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	t.Cleanup(newsSrv.Close)
	opts := Options{
		Replicas:         n,
		Policy:           policy,
		Clock:            env.Clock,
		Runner:           env.Runner,
		HeartbeatTimeout: 40 * time.Second,
		Build: func(id string, r slurmcli.Runner) (*core.Server, error) {
			return env.NewServerRunner(newsSrv.URL, core.Config{
				Push: core.PushConfig{DisableIdlePause: true, Jitter: -1},
			}, r)
		},
	}
	if mutate != nil {
		mutate(&opts)
	}
	fl, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)
	return env, fl
}

func fleetGet(t *testing.T, h http.Handler, user, path, etag string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if user != "" {
		req.Header.Set(auth.UserHeader, user)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestLBRoundRobinSpreads(t *testing.T) {
	env, fl := newTestFleet(t, 3, PolicyRoundRobin, nil)
	user := env.UserNames[0]
	for i := 0; i < 9; i++ {
		rec := fleetGet(t, fl, user, "/api/system_status", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, rec.Code)
		}
		if rec.Header().Get(fleetReplicaHeaderKey) == "" {
			t.Fatalf("request %d: missing replica header", i)
		}
	}
	for _, id := range fl.Replicas() {
		if got := fl.met.lbRequests.Value(id); got != 3 {
			t.Fatalf("replica %s served %d of 9 requests, want 3", id, got)
		}
	}
}

func TestLBLeastConnPrefersIdleReplica(t *testing.T) {
	env, fl := newTestFleet(t, 3, PolicyLeastConn, nil)
	srv := httptest.NewServer(fl)
	defer srv.Close()
	user := env.UserNames[0]

	// Two held-open SSE streams pin one in-flight request each on the two
	// least-loaded replicas; the next request must land on the idle third.
	var pinned []string
	for i := 0; i < 2; i++ {
		req, err := http.NewRequest(http.MethodGet, srv.URL+"/api/events?widgets=system_status", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(auth.UserHeader, user)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stream %d: status %d", i, resp.StatusCode)
		}
		pinned = append(pinned, resp.Header.Get(fleetReplicaHeaderKey))
	}
	if pinned[0] == pinned[1] {
		t.Fatalf("both streams pinned to %s; least-conn should spread", pinned[0])
	}
	rec := fleetGet(t, fl, user, "/api/system_status", "")
	got := rec.Header().Get(fleetReplicaHeaderKey)
	if got == pinned[0] || got == pinned[1] {
		t.Fatalf("poll routed to busy replica %s (streams hold %v)", got, pinned)
	}
}

func TestLBStickyAffinityAndFailover(t *testing.T) {
	env, fl := newTestFleet(t, 3, PolicySticky, nil)
	user := env.UserNames[0]

	first := fleetGet(t, fl, user, "/api/system_status", "").Header().Get(fleetReplicaHeaderKey)
	for i := 0; i < 4; i++ {
		if got := fleetGet(t, fl, user, "/api/system_status", "").Header().Get(fleetReplicaHeaderKey); got != first {
			t.Fatalf("sticky user bounced %s -> %s", first, got)
		}
	}

	// The population spreads: not every user sticks to the same replica.
	distinct := map[string]bool{}
	for _, u := range env.UserNames {
		distinct[fleetGet(t, fl, u, "/api/system_status", "").Header().Get(fleetReplicaHeaderKey)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d users stuck to one replica", len(env.UserNames))
	}

	// Kill the user's replica: passive failover moves them to a stable
	// fallback with no error surfaced.
	if err := fl.Kill(first); err != nil {
		t.Fatal(err)
	}
	rec := fleetGet(t, fl, user, "/api/system_status", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-kill status %d", rec.Code)
	}
	fallback := rec.Header().Get(fleetReplicaHeaderKey)
	if fallback == first || fallback == "" {
		t.Fatalf("failover picked %q (killed %q)", fallback, first)
	}
	for i := 0; i < 3; i++ {
		if got := fleetGet(t, fl, user, "/api/system_status", "").Header().Get(fleetReplicaHeaderKey); got != fallback {
			t.Fatalf("failover not sticky: %s -> %s", fallback, got)
		}
	}
	if fl.met.lbFailovers.Value() == 0 {
		t.Fatal("failover counter never incremented")
	}
}

func TestPeerServesOwnerBytesWithMatchingETag(t *testing.T) {
	env, fl := newTestFleet(t, 2, PolicyRoundRobin, nil)
	user := env.UserNames[0]
	ownerID := fl.Owner("system_status")
	var peerID string
	for _, id := range fl.Replicas() {
		if id != ownerID {
			peerID = id
		}
	}
	owner, peer := fl.Server(ownerID), fl.Server(peerID)

	ownerRec := fleetGet(t, owner, user, "/api/system_status", "")
	if ownerRec.Code != http.StatusOK || ownerRec.Header().Get("X-Ooddash-Fleet") != "" {
		t.Fatalf("owner serve: status %d fleet header %q", ownerRec.Code, ownerRec.Header().Get("X-Ooddash-Fleet"))
	}
	peerRec := fleetGet(t, peer, user, "/api/system_status", "")
	if peerRec.Code != http.StatusOK {
		t.Fatalf("peer serve: status %d", peerRec.Code)
	}
	if peerRec.Header().Get("X-Ooddash-Fleet") != "peer" {
		t.Fatal("peer response not marked as fleet-served")
	}
	if peerRec.Body.String() != ownerRec.Body.String() {
		t.Fatalf("peer bytes differ from owner bytes:\n%q\nvs\n%q", peerRec.Body.String(), ownerRec.Body.String())
	}
	etag := ownerRec.Header().Get("Etag")
	if etag == "" || peerRec.Header().Get("Etag") != etag {
		t.Fatalf("etag mismatch: owner %q peer %q", etag, peerRec.Header().Get("Etag"))
	}

	// A client that validated against the owner revalidates against the
	// peer — cross-replica 304.
	if rec := fleetGet(t, peer, user, "/api/system_status", etag); rec.Code != http.StatusNotModified {
		t.Fatalf("peer revalidation status %d, want 304", rec.Code)
	}

	// The peer never scheduled the source: exactly one replica polls it.
	if err := fl.CheckExclusiveOwnership(); err != nil {
		t.Fatal(err)
	}
	for _, key := range peer.PushSourceKeys() {
		if key == "system_status" {
			t.Fatal("non-owner replica scheduled system_status")
		}
	}
	found := false
	for _, key := range owner.PushSourceKeys() {
		if key == "system_status" {
			found = true
		}
	}
	if !found {
		t.Fatal("owner replica did not schedule system_status")
	}
}

func TestPerUserWidgetKeepsPrivateCacheClassOnPeer(t *testing.T) {
	env, fl := newTestFleet(t, 2, PolicyRoundRobin, nil)
	user := env.UserNames[1]
	key := "recent_jobs:" + user
	ownerID := fl.Owner(key)
	var peer *core.Server
	for _, id := range fl.Replicas() {
		if id != ownerID {
			peer = fl.Server(id)
		}
	}
	rec := fleetGet(t, peer, user, "/api/recent_jobs", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if rec.Header().Get("X-Ooddash-Fleet") != "peer" {
		t.Fatal("expected peer-served response")
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "private" {
		t.Fatalf("Cache-Control = %q, want private", cc)
	}
	if vary := rec.Header().Get("Vary"); vary != auth.UserHeader {
		t.Fatalf("Vary = %q, want %s", vary, auth.UserHeader)
	}
}

func TestPropagationFeedsPeerSSE(t *testing.T) {
	env, fl := newTestFleet(t, 2, PolicyRoundRobin, nil)
	user := env.UserNames[0]
	key := "recent_jobs:" + user
	ownerID := fl.Owner(key)
	var peerID string
	for _, id := range fl.Replicas() {
		if id != ownerID {
			peerID = id
		}
	}
	peerSrv := httptest.NewServer(fl.Server(peerID))
	defer peerSrv.Close()

	b := browser.New(user, peerSrv.URL, nil, env.Clock)
	events := make(chan push.Event, 64)
	st, err := b.OpenEventStream(browser.HomepageWidgets(), func(ev push.Event) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Subscribe-time replay primes the stream (the peer ensures fresh
	// snapshots via the owners).
	drainUntil(t, events, "recent_jobs", 5*time.Second)

	// New upstream work must reach the peer-held stream purely via
	// owner refresh + fleet propagation.
	if _, err := env.Cluster.Ctl.Submit(slurm.SubmitRequest{
		User: user, Account: "grp01", Partition: "cpu", QOS: "normal",
		TimeLimit: time.Hour, ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024},
	}); err != nil {
		t.Fatal(err)
	}
	env.Clock.Advance(80 * time.Second)
	env.Cluster.Ctl.Tick()
	fl.Tick()
	drainUntil(t, events, "recent_jobs", 5*time.Second)

	if fl.met.propagations.Value() == 0 {
		t.Fatal("no propagations recorded")
	}
	if err := fl.CheckExclusiveOwnership(); err != nil {
		t.Fatal(err)
	}
}

func drainUntil(t *testing.T, events <-chan push.Event, name string, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case ev := <-events:
			if ev.Name == name {
				return
			}
		case <-deadline:
			t.Fatalf("no %q event within %v", name, timeout)
		}
	}
}

func TestJoinRebalancesOwnership(t *testing.T) {
	env, fl := newTestFleet(t, 1, PolicyRoundRobin, nil)
	// Touch a spread of sources so there is ownership to move.
	for i := 0; i < 6; i++ {
		fleetGet(t, fl, env.UserNames[i], "/api/recent_jobs", "")
	}
	fleetGet(t, fl, env.UserNames[0], "/api/system_status", "")
	only := fl.Replicas()[0]
	before := len(fl.Server(only).PushSourceKeys())
	if before == 0 {
		t.Fatal("no sources registered before join")
	}

	id, err := fl.Join()
	if err != nil {
		t.Fatal(err)
	}
	after := len(fl.Server(only).PushSourceKeys())
	taken := len(fl.Server(id).PushSourceKeys())
	if taken == 0 {
		t.Fatalf("joined replica took no sources (%d keys total)", before)
	}
	if after+taken != before {
		t.Fatalf("sources lost in rebalance: %d -> %d + %d", before, after, taken)
	}
	if err := fl.CheckExclusiveOwnership(); err != nil {
		t.Fatal(err)
	}
	if fl.met.ownerChanges.Value() == 0 {
		t.Fatal("owner-change counter never incremented")
	}
	// The newcomer's sources were refreshed at handover: its store can
	// serve them and a poll through the LB succeeds wherever it lands.
	for i := 0; i < 4; i++ {
		if rec := fleetGet(t, fl, env.UserNames[0], "/api/recent_jobs", ""); rec.Code != http.StatusOK {
			t.Fatalf("post-join poll %d: status %d", i, rec.Code)
		}
	}
}

func TestNoLiveReplicas(t *testing.T) {
	env, fl := newTestFleet(t, 2, PolicyRoundRobin, nil)
	for _, id := range fl.Replicas() {
		if err := fl.Kill(id); err != nil {
			t.Fatal(err)
		}
	}
	rec := fleetGet(t, fl, env.UserNames[0], "/api/system_status", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when the whole fleet is dead", rec.Code)
	}
}

func TestFleetMetricsExposition(t *testing.T) {
	env, fl := newTestFleet(t, 2, PolicyRoundRobin, nil)
	fleetGet(t, fl, env.UserNames[0], "/api/system_status", "")
	rec := httptest.NewRecorder()
	if err := fl.Metrics().WritePrometheus(rec); err != nil {
		t.Fatal(err)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"ooddash_fleet_replicas_live 2",
		"ooddash_fleet_lb_requests_total",
		"ooddash_fleet_upstream_rpcs_total",
		"ooddash_fleet_slo_burn_rate",
		"ooddash_fleet_slo_alert_state",
		"ooddash_fleet_slo_budget_spent_ratio",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	obstest.Validate(t, body)
}

// sloFleetObjectives are tight-window objectives for the dual-view test:
// one page rule that fires after a minute of sustained burn.
func sloFleetObjectives() []slo.Objective {
	return []slo.Objective{{
		Name: "availability", Kind: slo.KindAvailability, Target: 0.9,
		Rules: []slo.Rule{{
			Name: "page", Severity: "page", Burn: 2,
			Short: 2 * time.Minute, Long: 5 * time.Minute,
			For: time.Minute, KeepFor: time.Minute,
		}},
	}}
}

// TestSLOFleetDualView drives one replica's SLIs into sustained burn while
// its peers stay healthy: the replica-local page alert must fire while the
// fleet-level objective — pooled across all replicas — stays met. Then the
// whole fleet burns and the aggregated alert must fire too. Both views stay
// queryable side by side throughout.
func TestSLOFleetDualView(t *testing.T) {
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	t.Cleanup(newsSrv.Close)
	fl, err := New(Options{
		Replicas:         3,
		Policy:           PolicyRoundRobin,
		Clock:            env.Clock,
		Runner:           env.Runner,
		HeartbeatTimeout: 40 * time.Second,
		Build: func(id string, r slurmcli.Runner) (*core.Server, error) {
			// SLO recording disabled: the script records synthetic SLI
			// events directly, so incidental request traffic can't skew the
			// windows. The aggregator copies these tight objectives from
			// replica r0's engine.
			return env.NewServerRunner(newsSrv.URL, core.Config{
				Push: core.PushConfig{DisableIdlePause: true, Jitter: -1},
				SLO:  core.SLOConfig{Disabled: true, Objectives: sloFleetObjectives()},
			}, r)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fl.Close)
	burner := fl.Server("r0").SLO()
	peers := []*slo.Engine{fl.Server("r1").SLO(), fl.Server("r2").SLO()}

	record := func(eng *slo.Engine, n int, status int) {
		for i := 0; i < n; i++ {
			eng.Record(0.001, status, false, "")
		}
	}

	// Phase 1: r0 burns hard (every request 500), peers serve clean traffic
	// that keeps the pooled bad fraction inside the fleet budget.
	for step := 0; step < 4; step++ {
		record(burner, 10, 500)
		for _, p := range peers {
			record(p, 200, 200)
		}
		env.Clock.Advance(time.Minute)
		fl.Tick()
	}

	localSt := fl.Server("r0").SLO().Status()
	fleetSt := fl.SLOStatus()
	localAlert := localSt.Objectives[0].Alerts[0]
	fleetAlert := fleetSt.Objectives[0].Alerts[0]
	if localAlert.State != "firing" {
		t.Fatalf("replica-local page alert = %q, want firing (short burn %.1f, long burn %.1f)",
			localAlert.State, localAlert.ShortBurn, localAlert.LongBurn)
	}
	if fleetAlert.State != "inactive" {
		t.Fatalf("fleet page alert = %q, want inactive while only one replica burns (short burn %.2f)",
			fleetAlert.State, fleetAlert.ShortBurn)
	}
	if fleetSt.Objectives[0].Budget.Bad == 0 {
		t.Fatal("fleet budget ledger should still count the burning replica's bad events")
	}

	// Phase 2: the whole fleet burns; the pooled view must fire as well.
	for step := 0; step < 8; step++ {
		record(burner, 10, 500)
		for _, p := range peers {
			record(p, 200, 500)
		}
		env.Clock.Advance(time.Minute)
		fl.Tick()
	}
	if st := fl.SLOStatus().Objectives[0].Alerts[0]; st.State != "firing" {
		t.Fatalf("fleet page alert = %q after fleet-wide burn, want firing (short %.2f long %.2f)",
			st.State, st.ShortBurn, st.LongBurn)
	}
	if fired, _, ok := fl.SLO().AlertCounts("availability", "page"); !ok || fired < 1 {
		t.Fatalf("fleet AlertCounts(availability, page) = %d/%v, want fired >= 1", fired, ok)
	}
	// The replica view is unchanged by fleet evaluation: still its own.
	if _, _, ok := fl.Server("r0").SLO().AlertCounts("availability", "page"); !ok {
		t.Fatal("replica-local alert counts must stay queryable")
	}
}
