package fleet

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ooddash/internal/slurm"
)

type countingRunner struct {
	calls atomic.Int64
	fail  atomic.Bool
}

func (c *countingRunner) Run(name string, args ...string) (string, error) {
	c.calls.Add(1)
	if c.fail.Load() {
		return "", errors.New("upstream down")
	}
	return "out:" + name, nil
}

func TestMemoCollapsesIdenticalCommandsWithinTTL(t *testing.T) {
	clock := slurm.NewSimClock(time.Unix(1_700_000_000, 0))
	base := &countingRunner{}
	m := newMemoRunner(clock, 10*time.Second, base)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, err := m.Run("squeue", "-A", "grp01")
			if err != nil || out != "out:squeue" {
				t.Errorf("Run = %q, %v", out, err)
			}
		}()
	}
	wg.Wait()
	if got := base.calls.Load(); got != 1 {
		t.Fatalf("upstream calls = %d, want 1 (collapsed)", got)
	}
	misses, hits := m.counts()
	if misses["slurmctld"] != 1 || hits["slurmctld"] != 7 {
		t.Fatalf("counts = misses %v hits %v, want 1 miss / 7 hits", misses, hits)
	}

	// A different command is its own entry.
	if _, err := m.Run("squeue", "-A", "grp02"); err != nil {
		t.Fatal(err)
	}
	if got := base.calls.Load(); got != 2 {
		t.Fatalf("upstream calls = %d, want 2 after distinct command", got)
	}

	// Past the TTL the memo must refetch — it can never mask a refresh.
	clock.Advance(11 * time.Second)
	if _, err := m.Run("squeue", "-A", "grp01"); err != nil {
		t.Fatal(err)
	}
	if got := base.calls.Load(); got != 3 {
		t.Fatalf("upstream calls = %d, want 3 after TTL expiry", got)
	}
}

func TestMemoNeverCachesErrors(t *testing.T) {
	clock := slurm.NewSimClock(time.Unix(1_700_000_000, 0))
	base := &countingRunner{}
	m := newMemoRunner(clock, 10*time.Second, base)

	base.fail.Store(true)
	if _, err := m.Run("sinfo", "--json"); err == nil {
		t.Fatal("want error from failing upstream")
	}
	base.fail.Store(false)
	out, err := m.Run("sinfo", "--json")
	if err != nil || out != "out:sinfo" {
		t.Fatalf("retry after error = %q, %v, want success", out, err)
	}
	if got := base.calls.Load(); got != 2 {
		t.Fatalf("upstream calls = %d, want 2 (error not cached)", got)
	}
}
