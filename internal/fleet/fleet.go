// Package fleet is the dashboard's scale-out serving tier: N core.Server
// replicas (in-process, on the shared simulated clock) behind a simulated
// load balancer, with widget-refresh ownership partitioned across replicas
// by a consistent-hash ring and rendered snapshots propagated replica to
// replica through the push hub's versioned-snapshot machinery.
//
// The single-server push subsystem already makes upstream cost O(sources)
// instead of O(clients); the fleet keeps it O(sources) instead of
// O(sources × replicas). Each source key is polled by exactly one owner
// replica per TTL; every other replica serves the owner's rendered bytes —
// byte- and ETag-identical to what the owner would serve — via the
// core.FleetDelegate seam, and any replica can hold any SSE stream because
// owner publishes are republished into every peer hub.
//
// Membership is heartbeat-based on the shared clock: a killed replica stops
// heartbeating, the detector declares it dead after HeartbeatTimeout, the
// ring is rebuilt, and every source the corpse owned is deterministically
// re-elected (registered and immediately refreshed on its new owner). In
// the gap before detection, the load balancer's passive failover keeps
// pages serving and peers serve their last propagated copy marked degraded.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ooddash/internal/core"
	"ooddash/internal/push"
	"ooddash/internal/slo"
	"ooddash/internal/slurmcli"
)

// Clock matches slurm.Clock: the fleet shares the simulation clock with
// every replica and the cluster itself.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Options configure a Fleet.
type Options struct {
	// Replicas is the initial replica count (at least 1).
	Replicas int
	// Policy selects the load-balancing policy (default round_robin).
	Policy Policy
	// Clock is the shared (possibly simulated) clock; nil means wall clock.
	Clock Clock
	// Build constructs one replica's server. It receives the replica id and
	// the runner the replica must use for upstream Slurm commands (the
	// fleet wraps the base runner with a per-replica RPC meter). Replicas
	// should run with Push.DisableIdlePause — the fleet's idle reaper
	// replaces pause-when-idle, which cannot see subscribers on peer
	// replicas. Required.
	Build func(id string, runner slurmcli.Runner) (*core.Server, error)
	// Runner is the base upstream runner every replica's meter wraps.
	// Required.
	Runner slurmcli.Runner
	// NoCoherence disables ownership partitioning and snapshot propagation:
	// replicas become fully independent servers behind the LB. This is the
	// ablation arm of the fleet bench (expected upstream cost: ~N×).
	NoCoherence bool
	// Vnodes is the consistent-hash virtual-node count (default 64).
	Vnodes int
	// HeartbeatTimeout declares a replica dead when its last heartbeat is
	// older than this (default 15s). Heartbeats are stamped on Tick, so the
	// timeout should be below the tick interval for next-tick detection.
	HeartbeatTimeout time.Duration
	// ReapIdle unregisters a source no client has requested (and no hub
	// subscription watches) for this long, freeing its refresh slot.
	// 0 means 10 minutes; negative disables reaping.
	ReapIdle time.Duration
	// MemoTTL bounds the fleet-shared upstream command memo (see
	// memoRunner): identical commands issued by different replicas within
	// this window collapse to one upstream call. Must stay well below the
	// shortest widget TTL. 0 means 10 seconds; negative disables the memo.
	// NoCoherence also disables it — fully independent replicas share
	// nothing, including upstream reads.
	MemoTTL time.Duration
}

// sourceState is the fleet's bookkeeping for one tracked source.
type sourceState struct {
	src      core.FleetSource
	owner    string // replica id currently scheduled to poll it
	lastUsed time.Time
}

// replica is one core.Server plus its fleet-side state.
type replica struct {
	id   string
	srv  *core.Server
	rpcs *meterRunner

	inflight atomic.Int64
	killed   atomic.Bool // explicitly killed (process death model)
	dead     atomic.Bool // declared dead by the heartbeat detector

	tap *push.Subscription // SubscribeAll tap feeding propagation

	// store holds peer-propagated snapshots this replica serves as a
	// non-owner.
	storeMu sync.Mutex
	store   map[string]core.FleetSnapshot

	// lastHB is guarded by the fleet mutex.
	lastHB time.Time
}

func (r *replica) healthy() bool { return !r.killed.Load() && !r.dead.Load() }

func (r *replica) storeSnap(fs core.FleetSnapshot) {
	r.storeMu.Lock()
	if cur, ok := r.store[fs.Key]; !ok || !fs.At.Before(cur.At) {
		r.store[fs.Key] = fs
	}
	r.storeMu.Unlock()
}

func (r *replica) loadSnap(key string) (core.FleetSnapshot, bool) {
	r.storeMu.Lock()
	fs, ok := r.store[key]
	r.storeMu.Unlock()
	return fs, ok
}

func (r *replica) dropSnap(key string) {
	r.storeMu.Lock()
	delete(r.store, key)
	r.storeMu.Unlock()
}

// meterRunner counts upstream commands by daemon, beneath the replica's own
// metered runner — it sees exactly the commands that reached the simulated
// daemons (cache hits and degraded fallbacks never get here).
type meterRunner struct {
	next slurmcli.Runner
	mu   sync.Mutex
	byD  map[string]int64
}

func newMeterRunner(next slurmcli.Runner) *meterRunner {
	return &meterRunner{next: next, byD: make(map[string]int64, 2)}
}

func (m *meterRunner) Run(name string, args ...string) (string, error) {
	m.mu.Lock()
	m.byD[slurmcli.DaemonFor(name)]++
	m.mu.Unlock()
	return m.next.Run(name, args...)
}

func (m *meterRunner) snapshot() map[string]int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]int64, len(m.byD))
	for k, v := range m.byD {
		out[k] = v
	}
	return out
}

// Fleet runs the replicas, the load balancer, membership, and ownership.
type Fleet struct {
	opts  Options
	clock Clock
	met   *metrics
	memo  *memoRunner // nil when NoCoherence or MemoTTL < 0

	mu       sync.Mutex
	replicas []*replica // append-only; killed/dead members stay for metrics
	byID     map[string]*replica
	sources  map[string]*sourceState
	nextID   int
	closed   bool

	ringPtr atomic.Pointer[ring] // rebuilt on membership change
	rr      atomic.Int64         // round-robin cursor

	// sloAgg layers fleet-level SLO objectives over the healthy replicas'
	// engines: pooled counts decide whether the *fleet* meets an objective
	// even while one replica burns its budget. Built in New after the first
	// replica exists (objectives are copied from its engine).
	sloAgg *slo.Aggregator

	// ensuring coalesces concurrent Ensure calls per key, fleet-wide: when
	// many replicas miss on the same cold key at once, exactly one owner
	// refresh runs and every caller shares its result (the fleet-tier
	// analogue of the single server's fill admission).
	ensureMu sync.Mutex
	ensuring map[string]*ensureCall

	stop chan struct{}
	wg   sync.WaitGroup
}

// New builds a fleet of opts.Replicas replicas. Close releases everything.
func New(opts Options) (*Fleet, error) {
	if opts.Build == nil {
		return nil, fmt.Errorf("fleet: New: missing Build factory")
	}
	if opts.Runner == nil {
		return nil, fmt.Errorf("fleet: New: missing base Runner")
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	if opts.Policy == "" {
		opts.Policy = PolicyRoundRobin
	}
	if opts.Vnodes <= 0 {
		opts.Vnodes = 64
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 15 * time.Second
	}
	if opts.ReapIdle == 0 {
		opts.ReapIdle = 10 * time.Minute
	}
	if opts.MemoTTL == 0 {
		opts.MemoTTL = 10 * time.Second
	}
	fl := &Fleet{
		opts:     opts,
		clock:    opts.Clock,
		byID:     make(map[string]*replica),
		sources:  make(map[string]*sourceState),
		ensuring: make(map[string]*ensureCall),
		stop:     make(chan struct{}),
	}
	if !opts.NoCoherence && opts.MemoTTL > 0 {
		fl.memo = newMemoRunner(opts.Clock, opts.MemoTTL, opts.Runner)
	}
	fl.met = newMetrics(fl)
	for i := 0; i < opts.Replicas; i++ {
		if _, err := fl.addReplica(); err != nil {
			fl.Close()
			return nil, err
		}
	}
	fl.rebuildRing()
	fl.sloAgg = slo.NewAggregator(opts.Clock, fl.replicas[0].srv.SLO().Objectives(), fl.sloMembers)
	return fl, nil
}

// sloMembers returns the healthy replicas' SLO engines; the aggregator
// re-resolves membership at every evaluation, so killed or dead replicas
// drop out of the fleet SLIs the moment the detector declares them.
func (fl *Fleet) sloMembers() []*slo.Engine {
	reps := fl.replicaList()
	out := make([]*slo.Engine, 0, len(reps))
	for _, rep := range reps {
		if rep.healthy() {
			out = append(out, rep.srv.SLO())
		}
	}
	return out
}

// SLO returns the fleet-level aggregator. Replica-local views stay on each
// replica's own Server.SLO(); both remain queryable side by side.
func (fl *Fleet) SLO() *slo.Aggregator { return fl.sloAgg }

// SLOStatus returns the fleet-level SLO snapshot (same shape as one
// replica's /api/admin/slo).
func (fl *Fleet) SLOStatus() slo.Status { return fl.sloAgg.Status() }

// addReplica builds and registers one replica (no resync; callers decide).
func (fl *Fleet) addReplica() (*replica, error) {
	fl.mu.Lock()
	id := fmt.Sprintf("r%d", fl.nextID)
	fl.nextID++
	fl.mu.Unlock()

	base := fl.opts.Runner
	if fl.memo != nil {
		base = fl.memo
	}
	rpcs := newMeterRunner(base)
	srv, err := fl.opts.Build(id, rpcs)
	if err != nil {
		return nil, fmt.Errorf("fleet: replica %s: %w", id, err)
	}
	rep := &replica{
		id:     id,
		srv:    srv,
		rpcs:   rpcs,
		store:  make(map[string]core.FleetSnapshot),
		lastHB: fl.clock.Now(),
	}
	if !fl.opts.NoCoherence {
		srv.SetFleet(&binding{fl: fl, rep: rep})
		rep.tap = srv.PushHub().SubscribeAll()
	}
	fl.mu.Lock()
	fl.replicas = append(fl.replicas, rep)
	fl.byID[id] = rep
	fl.mu.Unlock()
	return rep, nil
}

// replicaList returns the replica slice (append-only, so the snapshot is
// safe to iterate without the lock).
func (fl *Fleet) replicaList() []*replica {
	fl.mu.Lock()
	out := make([]*replica, len(fl.replicas))
	copy(out, fl.replicas)
	fl.mu.Unlock()
	return out
}

func (fl *Fleet) currentRing() *ring {
	if r := fl.ringPtr.Load(); r != nil {
		return r
	}
	return &ring{}
}

// rebuildRing recomputes the ring over healthy, detector-confirmed members.
// Killed-but-undetected replicas stay on the ring until the heartbeat
// detector removes them — ownership re-election is the detector's decision,
// never a side effect of serving.
func (fl *Fleet) rebuildRing() {
	fl.mu.Lock()
	ids := make([]string, 0, len(fl.replicas))
	for _, rep := range fl.replicas {
		if !rep.dead.Load() {
			ids = append(ids, rep.id)
		}
	}
	fl.mu.Unlock()
	fl.ringPtr.Store(buildRing(ids, fl.opts.Vnodes))
}

// Owner returns the replica id currently owning key ("" if none).
func (fl *Fleet) Owner(key string) string { return fl.currentRing().owner(key) }

// binding adapts one replica to core.FleetDelegate.
type binding struct {
	fl  *Fleet
	rep *replica
}

func (b *binding) Owns(key string) bool {
	return b.fl.currentRing().owner(key) == b.rep.id
}

func (b *binding) Snapshot(key string) (core.FleetSnapshot, bool) {
	return b.rep.loadSnap(key)
}

func (b *binding) Ensure(ctx context.Context, src core.FleetSource) (core.FleetSnapshot, bool) {
	fs, ok := b.fl.ensure(ctx, src)
	if ok {
		// The requesting replica gets the snapshot immediately; the rest of
		// the fleet receives it on the next propagation drain.
		b.rep.storeSnap(fs)
		if b.rep.healthy() && fs.Key != "" {
			b.rep.srv.PushHub().Publish(fs.Widget, fs.Key, fs.Payload(), fs.Degraded)
		}
	}
	return fs, ok
}

func (b *binding) Touch(src core.FleetSource) { b.fl.touch(src) }

// track records (or refreshes) the bookkeeping for src and returns the
// current owner replica, registering the source on it when new. The
// returned replica may be nil (no live owner).
func (fl *Fleet) track(src core.FleetSource) *replica {
	ownerID := fl.currentRing().owner(src.Key)
	now := fl.clock.Now()
	fl.mu.Lock()
	st := fl.sources[src.Key]
	if st == nil {
		st = &sourceState{src: src}
		fl.sources[src.Key] = st
	}
	st.lastUsed = now
	needRegister := st.owner != ownerID
	st.owner = ownerID
	owner := fl.byID[ownerID]
	fl.mu.Unlock()
	if owner == nil || !owner.healthy() {
		return nil
	}
	if needRegister {
		if err := owner.srv.RegisterPushSource(src); err != nil {
			return nil
		}
	}
	return owner
}

// touch is the owner-agnostic interest signal: bookkeeping plus owner-side
// registration for new sources.
func (fl *Fleet) touch(src core.FleetSource) { fl.track(src) }

// ensureCall is one in-flight coalesced Ensure; waiters block on done.
type ensureCall struct {
	done chan struct{}
	fs   core.FleetSnapshot
	ok   bool
}

// ensure makes the current owner produce a fresh snapshot of src.
// Concurrent calls for the same key share one owner refresh.
func (fl *Fleet) ensure(ctx context.Context, src core.FleetSource) (core.FleetSnapshot, bool) {
	fl.ensureMu.Lock()
	if c, inflight := fl.ensuring[src.Key]; inflight {
		fl.ensureMu.Unlock()
		select {
		case <-c.done:
			return c.fs, c.ok
		case <-ctx.Done():
			return core.FleetSnapshot{}, false
		}
	}
	c := &ensureCall{done: make(chan struct{})}
	fl.ensuring[src.Key] = c
	fl.ensureMu.Unlock()

	c.fs, c.ok = fl.ensureOnce(ctx, src)

	fl.ensureMu.Lock()
	delete(fl.ensuring, src.Key)
	fl.ensureMu.Unlock()
	close(c.done)
	return c.fs, c.ok
}

func (fl *Fleet) ensureOnce(ctx context.Context, src core.FleetSource) (core.FleetSnapshot, bool) {
	owner := fl.track(src)
	if owner == nil {
		fl.met.ensureFailures.Inc()
		return core.FleetSnapshot{}, false
	}
	fs, err := owner.srv.RefreshPushSource(ctx, src.Key)
	if err != nil {
		fl.met.ensureFailures.Inc()
		return core.FleetSnapshot{}, false
	}
	fl.propagateStores(fs)
	return fs, true
}

// propagateStores copies a snapshot into every healthy replica's peer
// store (hub republish is the tap drain's job — doing it here too would
// just hit the content-hash suppression).
func (fl *Fleet) propagateStores(fs core.FleetSnapshot) {
	for _, rep := range fl.replicaList() {
		if rep.healthy() {
			rep.storeSnap(fs)
		}
	}
}

// propagate pushes an owner-origin snapshot to every healthy peer: into
// its store (HTTP serving) and its hub (SSE fan-out; the hub's content
// hash suppresses re-publishes of bytes the peer already has).
func (fl *Fleet) propagate(origin *replica, fs core.FleetSnapshot) {
	for _, rep := range fl.replicaList() {
		if !rep.healthy() {
			continue
		}
		rep.storeSnap(fs)
		if rep != origin {
			rep.srv.PushHub().Publish(fs.Widget, fs.Key, fs.Payload(), fs.Degraded)
		}
	}
	fl.met.propagations.Inc()
}

// Tick advances the fleet one step on the shared clock: heartbeats and
// failure detection (with re-election on membership change), every healthy
// replica's scheduled refreshes, the propagation drain that carries new
// owner snapshots to peers, and the idle-source reaper. Tests and benches
// call it after advancing the simulated clock; production wraps it in Run.
func (fl *Fleet) Tick() {
	now := fl.clock.Now()
	fl.heartbeat(now)
	for _, rep := range fl.replicaList() {
		if !rep.healthy() {
			continue
		}
		rep.srv.TickPush()
		fl.drainTap(rep, now)
	}
	fl.sloAgg.Evaluate()
	fl.reap(now)
}

// heartbeat stamps live members and declares silent ones dead, rebuilding
// the ring and re-electing ownership when membership changes.
func (fl *Fleet) heartbeat(now time.Time) {
	changed := false
	fl.mu.Lock()
	for _, rep := range fl.replicas {
		if !rep.killed.Load() && !rep.dead.Load() {
			rep.lastHB = now
			continue
		}
		if rep.dead.Load() {
			continue
		}
		// Killed but not yet declared: the corpse's last heartbeat ages out.
		if now.Sub(rep.lastHB) >= fl.opts.HeartbeatTimeout {
			rep.dead.Store(true)
			changed = true
		}
	}
	fl.mu.Unlock()
	if changed {
		fl.met.hbExpiries.Inc()
		fl.resync()
	}
}

// resync rebuilds the ring and moves every source whose owner changed:
// unregister from the old owner (when still alive — a dead one needs no
// cleanup), register on the new owner, and refresh immediately so the
// re-elected source starts its TTL cadence with a current snapshot. That
// immediate refresh is the only extra upstream poll a handover costs.
func (fl *Fleet) resync() {
	fl.rebuildRing()
	rg := fl.currentRing()
	type move struct {
		src      core.FleetSource
		from, to *replica
	}
	var moves []move
	fl.mu.Lock()
	for key, st := range fl.sources {
		newOwner := rg.owner(key)
		if newOwner == st.owner {
			continue
		}
		moves = append(moves, move{src: st.src, from: fl.byID[st.owner], to: fl.byID[newOwner]})
		st.owner = newOwner
	}
	fl.mu.Unlock()
	// Deterministic order: moves derive from map iteration above.
	sort.Slice(moves, func(i, j int) bool { return moves[i].src.Key < moves[j].src.Key })
	for _, m := range moves {
		fl.met.ownerChanges.Inc()
		if m.from != nil && m.from.healthy() {
			m.from.srv.UnregisterPushSource(m.src.Key)
		}
		if m.to == nil || !m.to.healthy() {
			continue
		}
		if err := m.to.srv.RegisterPushSource(m.src); err != nil {
			continue
		}
		if fs, err := m.to.srv.RefreshPushSource(context.Background(), m.src.Key); err == nil {
			fl.propagate(m.to, fs)
		}
	}
}

// drainTap pops every snapshot the replica's hub published since the last
// drain and propagates the ones this replica currently owns (everything
// else is a propagated-in copy or a stale-ownership publish and is already
// where it needs to be).
func (fl *Fleet) drainTap(rep *replica, now time.Time) {
	if rep.tap == nil {
		return
	}
	rg := fl.currentRing()
	for {
		snap, ok := rep.tap.Pop()
		if !ok {
			return
		}
		if rg.owner(snap.Key) != rep.id {
			continue
		}
		fl.met.propLag.Observe(now.Sub(snap.Timestamp).Seconds())
		fl.propagate(rep, core.NewFleetSnapshot(snap, now))
	}
}

// reap unregisters sources nothing has requested for ReapIdle (and at
// least four TTLs), as long as no replica's hub has a live subscription
// watching the key. This replaces the single-server scheduler's
// pause-when-idle, which cannot see subscribers on peer replicas.
func (fl *Fleet) reap(now time.Time) {
	if fl.opts.ReapIdle < 0 {
		return
	}
	type idle struct {
		key   string
		owner *replica
	}
	var idles []idle
	fl.mu.Lock()
	for key, st := range fl.sources {
		cutoff := fl.opts.ReapIdle
		if four := 4 * st.src.TTL; four > cutoff {
			cutoff = four
		}
		if now.Sub(st.lastUsed) > cutoff {
			idles = append(idles, idle{key: key, owner: fl.byID[st.owner]})
		}
	}
	fl.mu.Unlock()
	for _, it := range idles {
		watched := false
		for _, rep := range fl.replicaList() {
			if rep.healthy() && rep.srv.PushHub().SubscribersFor(it.key) > 0 {
				watched = true
				break
			}
		}
		fl.mu.Lock()
		if st := fl.sources[it.key]; st != nil {
			if watched {
				st.lastUsed = now
			} else {
				delete(fl.sources, it.key)
			}
		}
		fl.mu.Unlock()
		if watched {
			continue
		}
		if it.owner != nil && it.owner.healthy() {
			it.owner.srv.UnregisterPushSource(it.key)
		}
		for _, rep := range fl.replicaList() {
			rep.dropSnap(it.key)
		}
		fl.met.reaped.Inc()
	}
}

// Kill models a replica process death: its server closes (SSE streams get
// the shutdown event, its hub and scheduler stop) and it stops
// heartbeating. The load balancer fails over immediately; ownership
// re-election waits for the heartbeat detector, exactly as it would with a
// real silent crash.
func (fl *Fleet) Kill(id string) error {
	fl.mu.Lock()
	rep := fl.byID[id]
	fl.mu.Unlock()
	if rep == nil {
		return fmt.Errorf("fleet: Kill: unknown replica %q", id)
	}
	if rep.killed.Swap(true) {
		return nil
	}
	rep.srv.Close()
	return nil
}

// Join adds one new replica, rebuilds the ring, and re-elects the sources
// the newcomer now owns. Returns the new replica's id.
func (fl *Fleet) Join() (string, error) {
	fl.mu.Lock()
	closed := fl.closed
	fl.mu.Unlock()
	if closed {
		return "", fmt.Errorf("fleet: Join: fleet closed")
	}
	rep, err := fl.addReplica()
	if err != nil {
		return "", err
	}
	fl.resync()
	return rep.id, nil
}

// Run wraps Tick in a wall-clock loop until Close, mirroring the push
// scheduler's production mode.
func (fl *Fleet) Run(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	fl.wg.Add(1)
	go func() {
		defer fl.wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-fl.stop:
				return
			case <-t.C:
				fl.Tick()
			}
		}
	}()
}

// Close stops the Run loop and closes every replica. Idempotent.
func (fl *Fleet) Close() {
	fl.mu.Lock()
	if fl.closed {
		fl.mu.Unlock()
		return
	}
	fl.closed = true
	fl.mu.Unlock()
	close(fl.stop)
	fl.wg.Wait()
	for _, rep := range fl.replicaList() {
		if rep.tap != nil {
			rep.tap.Close()
		}
		rep.srv.Close()
	}
}

// Replicas returns the ids of all replicas ever added, in join order.
func (fl *Fleet) Replicas() []string {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	out := make([]string, len(fl.replicas))
	for i, rep := range fl.replicas {
		out[i] = rep.id
	}
	return out
}

// Live returns the ids of replicas that are neither killed nor declared
// dead, in join order.
func (fl *Fleet) Live() []string {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	out := make([]string, 0, len(fl.replicas))
	for _, rep := range fl.replicas {
		if rep.healthy() {
			out = append(out, rep.id)
		}
	}
	return out
}

// Server returns a replica's server (tests and experiments).
func (fl *Fleet) Server(id string) *core.Server {
	fl.mu.Lock()
	defer fl.mu.Unlock()
	if rep := fl.byID[id]; rep != nil {
		return rep.srv
	}
	return nil
}

// UpstreamRPCs returns each replica's issued upstream command counts by
// daemon, before memo collapsing (per-replica attribution).
func (fl *Fleet) UpstreamRPCs() map[string]map[string]int64 {
	out := make(map[string]map[string]int64)
	for _, rep := range fl.replicaList() {
		out[rep.id] = rep.rpcs.snapshot()
	}
	return out
}

// UpstreamCalls returns the commands that actually reached the simulated
// daemons, by daemon — issued minus memo-collapsed. This is the load Slurm
// sees and the number the fleet bench's flatness gate compares. Without a
// memo (NoCoherence, or MemoTTL < 0) it equals the sum of UpstreamRPCs.
func (fl *Fleet) UpstreamCalls() map[string]int64 {
	if fl.memo != nil {
		misses, _ := fl.memo.counts()
		return misses
	}
	out := make(map[string]int64, 2)
	for _, counts := range fl.UpstreamRPCs() {
		for d, n := range counts {
			out[d] += n
		}
	}
	return out
}

// SourceRefreshes returns, per replica, the per-key refresh counts of its
// scheduler — the bench's per-round duplicate-poll evidence.
func (fl *Fleet) SourceRefreshes() map[string]map[string]int64 {
	out := make(map[string]map[string]int64)
	for _, rep := range fl.replicaList() {
		if rep.healthy() {
			out[rep.id] = rep.srv.PushScheduler().SourceRefreshes()
		}
	}
	return out
}

// CheckExclusiveOwnership verifies that no source key is registered on more
// than one healthy replica's scheduler — the fleet invariant that each
// source is polled by exactly one owner per TTL.
func (fl *Fleet) CheckExclusiveOwnership() error {
	ownerOf := make(map[string]string)
	for _, rep := range fl.replicaList() {
		if !rep.healthy() {
			continue
		}
		for _, key := range rep.srv.PushSourceKeys() {
			if prev, dup := ownerOf[key]; dup {
				return fmt.Errorf("fleet: source %q scheduled on both %s and %s", key, prev, rep.id)
			}
			ownerOf[key] = rep.id
		}
	}
	return nil
}
