package fleet

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ooddash/internal/browser"
)

// statusCounter records page-level response classes served through the LB.
type statusCounter struct {
	next http.Handler
	mu   sync.Mutex
	c5xx int
}

func (s *statusCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rec := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	s.next.ServeHTTP(rec, r)
	if rec.code >= 500 {
		s.mu.Lock()
		s.c5xx++
		s.mu.Unlock()
	}
}

type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// TestDrillReplicaKill is the fleet chaos drill `make drills` runs under
// -race: kill the replica that owns system_status mid-traffic and assert
//
//	(1) re-election completes within one tick of heartbeat expiry,
//	(2) clients see zero page-level 5xx and zero failed widget fetches,
//	(3) no source is ever polled by two replicas in the same round.
func TestDrillReplicaKill(t *testing.T) {
	const interval = 75 * time.Second
	env, fl := newTestFleet(t, 3, PolicyRoundRobin, func(o *Options) {
		o.HeartbeatTimeout = interval / 2
	})
	sc := &statusCounter{next: fl}
	srv := httptest.NewServer(sc)
	defer srv.Close()

	browsers := make([]*browser.Browser, 6)
	for i := range browsers {
		browsers[i] = browser.New(env.UserNames[i%len(env.UserNames)], srv.URL, nil, env.Clock)
	}
	refreshCounts := func() map[string]map[string]int64 { return fl.SourceRefreshes() }
	prev := refreshCounts()

	// round runs one tick of simulated time plus every browser's homepage
	// load, then asserts the single-poller invariant for the round.
	round := func(name string) {
		t.Helper()
		env.Clock.Advance(interval)
		env.Cluster.Ctl.Tick()
		fl.Tick()
		for i, b := range browsers {
			if load := b.LoadPage(browser.HomepageWidgets()); load.Failed > 0 {
				t.Fatalf("%s: browser %d failed %d widget fetches", name, i, load.Failed)
			}
		}
		cur := refreshCounts()
		polled := map[string][]string{}
		for id, counts := range cur {
			for key, n := range counts {
				if n > prev[id][key] {
					polled[key] = append(polled[key], id)
				}
			}
		}
		for key, ids := range polled {
			if len(ids) > 1 {
				t.Fatalf("%s: source %q polled by %d replicas %v in one round", name, key, len(ids), ids)
			}
		}
		prev = cur
		if err := fl.CheckExclusiveOwnership(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}

	// Warm-up: traffic registers sources on their owners and propagation
	// fills every replica's peer store.
	round("warm-1")
	round("warm-2")

	victim := fl.Owner("system_status")
	if victim == "" {
		t.Fatal("system_status has no owner after warm-up")
	}
	if err := fl.Kill(victim); err != nil {
		t.Fatal(err)
	}

	// Immediately after the kill — before any heartbeat expiry — the LB
	// fails over and peers serve their propagated copies: no 5xx, no
	// failed fetches, even for sources the corpse still nominally owns.
	for i, b := range browsers {
		if load := b.LoadPage(browser.HomepageWidgets()); load.Failed > 0 {
			t.Fatalf("post-kill browser %d failed %d widget fetches", i, load.Failed)
		}
	}

	// One tick later the corpse's heartbeat has aged past the timeout:
	// detection, ring rebuild, and re-election all happen in that tick.
	round("handover")
	if got := fl.Owner("system_status"); got == victim || got == "" {
		t.Fatalf("system_status owner after handover = %q (victim %q)", got, victim)
	}
	for _, id := range fl.Live() {
		if id == victim {
			t.Fatal("victim still listed live after handover")
		}
	}
	if fl.met.ownerChanges.Value() == 0 {
		t.Fatal("no owner changes recorded across the kill")
	}
	if fl.met.hbExpiries.Value() == 0 {
		t.Fatal("no heartbeat expiry recorded")
	}

	// Steady state resumes on the survivors.
	round("post-1")
	round("post-2")

	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.c5xx != 0 {
		t.Fatalf("%d page-level 5xx responses during the drill, want 0", sc.c5xx)
	}
}
