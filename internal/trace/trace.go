// Package trace is the dashboard's span-tracing subsystem: per-request flame
// traces from the HTTP edge through the cache, resilience, and command layers
// into the simulated Slurm daemons, kept only when interesting.
//
// The observability layer (internal/obs) proves in aggregate that the cache
// keeps slurmctld load low; it cannot explain why one request was slow. A
// trace can: it is a tree of named spans, each recording start/end on the
// shared clock plus string attributes (cache hit vs fill, retry count,
// breaker state, command, daemon), rooted at the request's X-OODDash-Trace
// ID. Instrumented layers call StartSpan(ctx, name); when the context
// carries no active span the call is a no-op returning a nil *Span whose
// methods are all nil-receiver-safe, so the sampled-out path costs one
// context lookup and zero allocations.
//
// Sampling is two-staged. Head sampling (Tracer.SetSample) hashes the trace
// ID against a threshold and decides whether to record at all. Tail-based
// retention (Store) then decides what to keep once the outcome is known:
// error/degraded traces always, the slowest-N per widget per window, a small
// probabilistic baseline — everything else is dropped after its span timings
// have been extracted into histograms, so steady-state memory is bounded
// regardless of traffic.
//
// The package is dependency-free (stdlib only) and safe for concurrent use.
package trace

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Clock supplies the current time; it matches slurm.Clock so the whole stack
// (cache TTLs, breaker windows, span durations) reads one simulated clock in
// tests.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// maxSpansPerTrace bounds one trace's span tree so a pathological request
// (a retry storm inside a fan-out) cannot grow a trace without limit; spans
// past the cap are counted as dropped instead of recorded.
const maxSpansPerTrace = 512

// Span is one timed operation within a trace. A nil *Span is a valid no-op:
// every method checks the receiver, so instrumentation sites never branch on
// whether the request is being traced.
type Span struct {
	tr       *Trace
	parent   *Span
	name     string
	start    time.Time
	end      time.Time
	attrs    []Attr
	children []*Span
}

// SetAttr annotates the span. No-op on a nil span or after Export froze the
// trace's tree shape (attrs may still land; they are read under the lock).
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tr.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, v int) {
	if s == nil {
		return
	}
	s.SetAttr(key, itoa(v))
}

// End stamps the span's end time from the trace's clock. Idempotent; no-op
// on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := s.tr.clock.Now()
	s.tr.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.tr.mu.Unlock()
}

// Root reports whether this is the trace's root span (false for nil).
func (s *Span) Root() bool { return s != nil && s.parent == nil }

// Name returns the span's name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Trace is one request's accumulated span tree plus its identity: the trace
// ID, the widget that served it, and the origin that started it ("http" for
// client requests, "push" for scheduler-driven refreshes).
type Trace struct {
	id     string
	widget string
	origin string
	clock  Clock

	mu      sync.Mutex
	root    *Span
	spans   int
	dropped int
}

// ID returns the trace ID.
func (t *Trace) ID() string { return t.id }

// Widget returns the widget the trace is attributed to.
func (t *Trace) Widget() string { return t.widget }

// Origin returns what started the trace ("http" or "push").
func (t *Trace) Origin() string { return t.origin }

// startChild records a new span under parent, or nil when the per-trace span
// cap is hit (counted as dropped).
func (t *Trace) startChild(parent *Span, name string) *Span {
	now := t.clock.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.spans >= maxSpansPerTrace {
		t.dropped++
		return nil
	}
	sp := &Span{tr: t, parent: parent, name: name, start: now}
	parent.children = append(parent.children, sp)
	t.spans++
	return sp
}

// spanKey carries the active span through context.
type spanKey struct{}

// ContextWithSpan returns a context carrying sp as the active span.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, sp)
}

// SpanFromContext returns the active span, or nil when the request is not
// being traced. Instrumentation uses the nil result as its fast path.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a child span under the context's active span. When the
// context carries none (head sampling said no, or the layer is reached
// outside a request) it returns the context unchanged and a nil span —
// every subsequent SetAttr/End is a no-op and nothing allocates.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	sp := parent.tr.startChild(parent, name)
	if sp == nil {
		return ctx, nil
	}
	return ContextWithSpan(ctx, sp), sp
}

// Summary is the flat, JSON-ready digest of one completed trace — what the
// trace list endpoint returns and the slow-request log line carries.
type Summary struct {
	ID         string    `json:"id"`
	Widget     string    `json:"widget"`
	Origin     string    `json:"origin"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Spans      int       `json:"spans"`
	Error      bool      `json:"error"`
	Degraded   bool      `json:"degraded"`
	// RetainedAs is why the tail sampler kept the trace ("error", "slow",
	// "baseline"); empty in summaries of traces that were not retained.
	RetainedAs string `json:"retained_as,omitempty"`
	// Bytes is the store's size estimate for the retained trace.
	Bytes int `json:"bytes,omitempty"`

	duration time.Duration
}

// Duration returns the root span's duration on the shared clock.
func (s Summary) Duration() time.Duration { return s.duration }

// Config tunes a Tracer. Zero values take the documented defaults.
type Config struct {
	// Clock drives span timestamps and the retention window; nil means wall
	// clock. Share the stack's simulated clock in tests.
	Clock Clock
	// Sample is the head-sampling probability: the fraction of trace IDs
	// recorded at all. 0 means the default (1.0, record everything and let
	// tail retention bound memory); negative disables tracing entirely.
	Sample float64
	// Slow is the duration (shared clock) at or above which a trace is
	// always retained and reported to OnSlow. 0 means 500ms; negative
	// disables the slow class.
	Slow time.Duration
	// StoreMax bounds retained traces. 0 means 256.
	StoreMax int
	// SlowKeepN is how many slowest traces per widget per Window the tail
	// sampler retains even below the Slow threshold. 0 means 5; negative
	// disables the per-widget tracker.
	SlowKeepN int
	// Window is the slowest-N tracking window on the shared clock. 0 means
	// one minute.
	Window time.Duration
	// Baseline is the probability a fast, healthy trace is retained anyway,
	// so the store always holds a reference population. 0 means 0.05;
	// negative disables the baseline class.
	Baseline float64
	// OnSpan receives every finished trace's span timings — layer (the span
	// name up to the first '.') and duration in seconds — including for
	// traces the tail sampler then drops. This is the histogram extraction
	// hook: aggregate visibility survives even when the trace does not.
	OnSpan func(layer string, seconds float64)
	// OnSlow receives the summary of every trace at or above Slow,
	// retained or not (the threshold-gated slow-request log line).
	OnSlow func(Summary)
}

// thresholdAlways marks "sample everything" so p=1 cannot lose the one hash
// value equal to MaxUint64.
const thresholdAlways = math.MaxUint64

// Tracer mints root spans under head sampling and finishes traces into the
// tail-sampled store.
type Tracer struct {
	clock    Clock
	slow     time.Duration
	baseline uint64 // tail baseline-keep threshold over hashAlt
	onSpan   func(layer string, seconds float64)
	onSlow   func(Summary)
	store    *Store

	enabled   atomic.Bool
	threshold atomic.Uint64
}

// New builds a Tracer and its Store from cfg.
func New(cfg Config) *Tracer {
	clock := cfg.Clock
	if clock == nil {
		clock = realClock{}
	}
	if cfg.Slow == 0 {
		cfg.Slow = 500 * time.Millisecond
	} else if cfg.Slow < 0 {
		cfg.Slow = 0
	}
	if cfg.StoreMax <= 0 {
		cfg.StoreMax = 256
	}
	if cfg.SlowKeepN == 0 {
		cfg.SlowKeepN = 5
	} else if cfg.SlowKeepN < 0 {
		cfg.SlowKeepN = 0
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Baseline == 0 {
		cfg.Baseline = 0.05
	} else if cfg.Baseline < 0 {
		cfg.Baseline = 0
	}
	t := &Tracer{
		clock:    clock,
		slow:     cfg.Slow,
		baseline: probToThreshold(cfg.Baseline),
		onSpan:   cfg.OnSpan,
		onSlow:   cfg.OnSlow,
		store: newStore(storeConfig{
			clock:  clock,
			max:    cfg.StoreMax,
			slow:   cfg.Slow,
			slowN:  cfg.SlowKeepN,
			window: cfg.Window,
		}),
	}
	sample := cfg.Sample
	if sample == 0 {
		sample = 1
	}
	t.SetSample(sample)
	return t
}

// SetSample adjusts head sampling at runtime: p >= 1 records every request,
// 0 <= p < 1 records that fraction (by trace-ID hash, so one request's
// decision is stable across layers), negative disables tracing entirely —
// StartRoot returns without even hashing.
func (t *Tracer) SetSample(p float64) {
	if p < 0 {
		t.enabled.Store(false)
		t.threshold.Store(0)
		return
	}
	t.threshold.Store(probToThreshold(p))
	t.enabled.Store(true)
}

// probToThreshold maps a probability to a uint64 hash threshold.
func probToThreshold(p float64) uint64 {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return thresholdAlways
	}
	return uint64(p * float64(math.MaxUint64))
}

// sampled applies the head-sampling decision to a trace ID.
func (t *Tracer) sampled(id string) bool {
	th := t.threshold.Load()
	if th == thresholdAlways {
		return true
	}
	return th > 0 && hashID(id) < th
}

// Store returns the tracer's tail-sampled trace store.
func (t *Tracer) Store() *Store { return t.store }

// Clock returns the tracer's clock.
func (t *Tracer) Clock() Clock { return t.clock }

// SlowThreshold returns the configured slow-trace threshold (0 = disabled).
func (t *Tracer) SlowThreshold() time.Duration { return t.slow }

// StartRoot opens the root span of a new trace for the given ID, subject to
// head sampling. If the context already carries an active span (a push
// refresh's loopback request re-entering the HTTP edge), the new span joins
// that trace as a child instead of founding an orphaned root — Finish on a
// non-root span is then a no-op and the real root's finisher retains the
// whole tree. Returns (ctx, nil) when tracing is disabled or the ID is
// sampled out.
func (t *Tracer) StartRoot(ctx context.Context, id, name, widget, origin string) (context.Context, *Span) {
	if t == nil || !t.enabled.Load() {
		return ctx, nil
	}
	if parent := SpanFromContext(ctx); parent != nil {
		sp := parent.tr.startChild(parent, name)
		if sp == nil {
			return ctx, nil
		}
		sp.SetAttr("widget", widget)
		return ContextWithSpan(ctx, sp), sp
	}
	if !t.sampled(id) {
		return ctx, nil
	}
	now := t.clock.Now()
	tr := &Trace{id: id, widget: widget, origin: origin, clock: t.clock}
	sp := &Span{tr: tr, name: name, start: now}
	tr.root = sp
	tr.spans = 1
	return ContextWithSpan(ctx, sp), sp
}

// Finish completes a trace: it ends the root span, extracts every span's
// timing into the OnSpan hook (layer = span name up to the first '.'), runs
// tail retention, and fires OnSlow past the threshold. It reports the
// trace's summary and whether the store retained it. Calling Finish on a
// nil or non-root span is a no-op — child spans (the loopback edge inside a
// push trace) just End.
func (t *Tracer) Finish(sp *Span, isErr, degraded bool) (Summary, bool) {
	if t == nil || sp == nil || !sp.Root() {
		return Summary{}, false
	}
	tr := sp.tr
	now := t.clock.Now()

	type timing struct {
		layer   string
		seconds float64
	}
	var timings []timing
	tr.mu.Lock()
	if sp.end.IsZero() {
		sp.end = now
	}
	rootEnd := sp.end
	if t.onSpan != nil {
		timings = make([]timing, 0, tr.spans)
		var walk func(*Span)
		walk = func(s *Span) {
			end := s.end
			if end.IsZero() || end.After(rootEnd) {
				// An unended span (an abandoned timed-out attempt) clamps to
				// the root's end so its timing cannot exceed the request's.
				end = rootEnd
			}
			timings = append(timings, timing{layerOf(s.name), end.Sub(s.start).Seconds()})
			for _, c := range s.children {
				walk(c)
			}
		}
		walk(sp)
	}
	spans := tr.spans
	dur := rootEnd.Sub(sp.start)
	tr.mu.Unlock()

	for _, tm := range timings {
		t.onSpan(tm.layer, tm.seconds)
	}
	sum := Summary{
		ID:         tr.id,
		Widget:     tr.widget,
		Origin:     tr.origin,
		Start:      sp.start,
		DurationMS: float64(dur) / float64(time.Millisecond),
		Spans:      spans,
		Error:      isErr,
		Degraded:   degraded,
		duration:   dur,
	}
	baselineKeep := t.baseline > 0 && hashAlt(tr.id) < t.baseline
	kept := t.store.add(tr, &sum, isErr || degraded, baselineKeep, dur, now)
	if t.onSlow != nil && t.slow > 0 && dur >= t.slow {
		t.onSlow(sum)
	}
	return sum, kept
}

// layerOf maps a span name to its histogram layer: the name up to the first
// '.' ("cache.fill" → "cache", "slurmdbd.handle" → "slurmdbd").
func layerOf(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// hashID is FNV-1a 64 over the trace ID — the head-sampling coin flip.
func hashID(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return h
}

// hashAlt is an independent hash over the same ID (FNV-1a from a different
// basis) for the tail baseline decision, so baseline retention is not
// correlated with head sampling.
func hashAlt(id string) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	return h
}

// itoa is strconv.Itoa for small non-negative ints without importing strconv
// into the hot attr path (attempt counts, retry counts).
func itoa(v int) string {
	if v < 0 {
		return "-" + itoa(-v)
	}
	if v < 10 {
		return string([]byte{byte('0' + v)})
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
