package trace

import (
	"context"
	"sync"
	"testing"
	"time"
)

// simClock is a minimal simulated clock matching slurm.SimClock's surface.
type simClock struct {
	mu  sync.Mutex
	now time.Time
}

func newSimClock() *simClock {
	return &simClock{now: time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)}
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestTracer(t *testing.T, cfg Config) (*Tracer, *simClock) {
	t.Helper()
	clock := newSimClock()
	cfg.Clock = clock
	return New(cfg), clock
}

func TestNilSpanIsNoOp(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "cache.fill")
	if sp != nil {
		t.Fatalf("StartSpan outside a trace returned %v, want nil", sp)
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan outside a trace changed the context")
	}
	// Every method must be nil-receiver-safe.
	sp.SetAttr("k", "v")
	sp.SetAttrInt("n", 3)
	sp.End()
	if sp.Root() {
		t.Fatalf("nil span reports Root")
	}
	if sp.Name() != "" {
		t.Fatalf("nil span Name = %q", sp.Name())
	}
}

func TestRootChildTreeAndExport(t *testing.T) {
	tr, clock := newTestTracer(t, Config{Sample: 1, Baseline: 1})
	ctx, root := tr.StartRoot(context.Background(), "trace01", "http", "my_jobs", "http")
	if root == nil || !root.Root() {
		t.Fatalf("StartRoot returned %v", root)
	}
	cctx, fill := StartSpan(ctx, "cache.fill")
	clock.Advance(10 * time.Millisecond)
	_, cmd := StartSpan(cctx, "slurmcli.sacct")
	cmd.SetAttr("daemon", "slurmdbd")
	clock.Advance(30 * time.Millisecond)
	cmd.End()
	fill.End()
	clock.Advance(5 * time.Millisecond)

	sum, kept := tr.Finish(root, false, false)
	if !kept {
		t.Fatalf("trace not retained with Baseline=1: %+v, decisions %+v", sum, tr.Store().Snapshot())
	}
	if sum.Spans != 3 {
		t.Fatalf("Spans = %d, want 3", sum.Spans)
	}
	if want := 45 * time.Millisecond; sum.Duration() != want {
		t.Fatalf("Duration = %v, want %v", sum.Duration(), want)
	}

	stored, ok := tr.Store().Get("trace01")
	if !ok {
		t.Fatalf("trace not in store")
	}
	exp := stored.Export()
	if exp.Depth() != 3 {
		t.Fatalf("Depth = %d, want 3", exp.Depth())
	}
	if exp.DurationUS != 45_000 {
		t.Fatalf("DurationUS = %d, want 45000", exp.DurationUS)
	}
	fillJSON := exp.Root.Children[0]
	if fillJSON.Name != "cache.fill" || fillJSON.DurationUS != 40_000 {
		t.Fatalf("fill span = %+v", fillJSON)
	}
	cmdJSON := fillJSON.Children[0]
	if cmdJSON.Name != "slurmcli.sacct" || cmdJSON.OffsetUS != 10_000 ||
		cmdJSON.DurationUS != 30_000 || cmdJSON.Attrs["daemon"] != "slurmdbd" {
		t.Fatalf("cmd span = %+v", cmdJSON)
	}
}

func TestFinishOnChildIsNoOp(t *testing.T) {
	tr, _ := newTestTracer(t, Config{Sample: 1, Baseline: 1})
	ctx, root := tr.StartRoot(context.Background(), "trace02", "push.refresh", "accounts", "push")
	_, child := tr.StartRoot(ctx, "tr-inner", "http", "accounts", "http")
	if child == nil || child.Root() {
		t.Fatalf("StartRoot inside a trace should return a child span, got %v", child)
	}
	if _, kept := tr.Finish(child, false, false); kept {
		t.Fatalf("Finish on a child span retained a trace")
	}
	child.End()
	if _, kept := tr.Finish(root, false, false); !kept {
		t.Fatalf("root Finish not retained")
	}
	stored, _ := tr.Store().Get("trace02")
	exp := stored.Export()
	if exp.Origin != "push" || exp.Root.Name != "push.refresh" ||
		len(exp.Root.Children) != 1 || exp.Root.Children[0].Name != "http" {
		t.Fatalf("push trace tree = %+v", exp)
	}
}

func TestHeadSampling(t *testing.T) {
	tr, _ := newTestTracer(t, Config{Sample: 1})
	tr.SetSample(-1)
	if ctx, sp := tr.StartRoot(context.Background(), "id1", "http", "w", "http"); sp != nil || SpanFromContext(ctx) != nil {
		t.Fatalf("disabled tracer started a root span")
	}
	tr.SetSample(0)
	if _, sp := tr.StartRoot(context.Background(), "id1", "http", "w", "http"); sp != nil {
		t.Fatalf("sample 0 started a root span")
	}
	tr.SetSample(1)
	if _, sp := tr.StartRoot(context.Background(), "id1", "http", "w", "http"); sp == nil {
		t.Fatalf("sample 1 did not start a root span")
	}
	// A fractional rate keeps a stable, roughly proportional subset.
	tr.SetSample(0.5)
	kept := 0
	const n = 2000
	for i := 0; i < n; i++ {
		id := "trace-" + itoa(i)
		if tr.sampled(id) != tr.sampled(id) {
			t.Fatalf("sampling decision not stable for %s", id)
		}
		if tr.sampled(id) {
			kept++
		}
	}
	if kept < n/3 || kept > 2*n/3 {
		t.Fatalf("sample 0.5 kept %d of %d", kept, n)
	}
}

func TestTailRetentionClasses(t *testing.T) {
	tr, clock := newTestTracer(t, Config{
		Sample: 1, Slow: 100 * time.Millisecond, Baseline: -1, SlowKeepN: -1,
	})
	finish := func(id string, d time.Duration, isErr, degraded bool) bool {
		ctx := context.Background()
		_, root := tr.StartRoot(ctx, id, "http", "w", "http")
		clock.Advance(d)
		_, kept := tr.Finish(root, isErr, degraded)
		return kept
	}
	if finish("fast-ok", 0, false, false) {
		t.Fatalf("fast healthy trace retained with baseline disabled")
	}
	if !finish("slow", 150*time.Millisecond, false, false) {
		t.Fatalf("slow trace not retained")
	}
	if !finish("err", 0, true, false) {
		t.Fatalf("error trace not retained")
	}
	if !finish("deg", 0, false, true) {
		t.Fatalf("degraded trace not retained")
	}
	d := tr.Store().Snapshot()
	if d.KeptError != 2 || d.KeptSlow != 1 || d.Dropped != 1 {
		t.Fatalf("decisions = %+v", d)
	}
	sum, _ := tr.Store().Summary("slow")
	if sum.RetainedAs != "slow" {
		t.Fatalf("slow trace RetainedAs = %q", sum.RetainedAs)
	}
}

func TestSlowestNPerWidgetWindow(t *testing.T) {
	tr, clock := newTestTracer(t, Config{
		Sample: 1, Slow: time.Hour, Baseline: -1, SlowKeepN: 2, Window: time.Minute,
	})
	finish := func(id, widget string, d time.Duration) bool {
		_, root := tr.StartRoot(context.Background(), id, "http", widget, "http")
		clock.Advance(d)
		_, kept := tr.Finish(root, false, false)
		return kept
	}
	// First two nonzero durations fill widget A's top-2.
	if !finish("a1", "A", 10*time.Millisecond) || !finish("a2", "A", 20*time.Millisecond) {
		t.Fatalf("initial slow slots not retained")
	}
	// Slower than the current min displaces it; faster does not qualify.
	if !finish("a3", "A", 30*time.Millisecond) {
		t.Fatalf("slower trace not retained")
	}
	if finish("a4", "A", 5*time.Millisecond) {
		t.Fatalf("fast trace retained despite full top-N")
	}
	// Zero-duration traces never qualify, even with free slots.
	if finish("b0", "B", 0) {
		t.Fatalf("zero-duration trace retained as slow")
	}
	// A new window resets the tracker.
	clock.Advance(2 * time.Minute)
	if !finish("a5", "A", 1*time.Millisecond) {
		t.Fatalf("new window did not reset the slowest-N tracker")
	}
}

func TestSpanCap(t *testing.T) {
	tr, _ := newTestTracer(t, Config{Sample: 1, Baseline: 1})
	ctx, root := tr.StartRoot(context.Background(), "cap", "http", "w", "http")
	for i := 0; i < maxSpansPerTrace+10; i++ {
		_, sp := StartSpan(ctx, "cache.hit")
		sp.End()
	}
	sum, kept := tr.Finish(root, false, false)
	if !kept {
		t.Fatalf("capped trace not retained")
	}
	if sum.Spans != maxSpansPerTrace {
		t.Fatalf("Spans = %d, want %d", sum.Spans, maxSpansPerTrace)
	}
	stored, _ := tr.Store().Get("cap")
	if exp := stored.Export(); exp.DroppedSpans != 11 {
		t.Fatalf("DroppedSpans = %d, want 11", exp.DroppedSpans)
	}
}

func TestOnSpanExtractionAndOnSlow(t *testing.T) {
	var mu sync.Mutex
	layers := map[string]int{}
	var slow []Summary
	tr, clock := newTestTracer(t, Config{
		Sample: 1, Slow: 50 * time.Millisecond, Baseline: -1, SlowKeepN: -1,
		OnSpan: func(layer string, seconds float64) {
			mu.Lock()
			layers[layer]++
			mu.Unlock()
		},
		OnSlow: func(s Summary) {
			mu.Lock()
			slow = append(slow, s)
			mu.Unlock()
		},
	})
	ctx, root := tr.StartRoot(context.Background(), "x1", "http", "w", "http")
	cctx, fill := StartSpan(ctx, "cache.fill")
	_, cmd := StartSpan(cctx, "slurmcli.squeue")
	clock.Advance(60 * time.Millisecond)
	cmd.End()
	fill.End()
	tr.Finish(root, false, false)

	if layers["http"] != 1 || layers["cache"] != 1 || layers["slurmcli"] != 1 {
		t.Fatalf("extracted layers = %v", layers)
	}
	if len(slow) != 1 || slow[0].ID != "x1" {
		t.Fatalf("OnSlow calls = %+v", slow)
	}

	// Dropped traces still extract timings (the whole point of tail
	// sampling): a fast trace below every retention class.
	ctx, root = tr.StartRoot(context.Background(), "x2", "http", "w", "http")
	_, hit := StartSpan(ctx, "cache.hit")
	hit.End()
	if _, kept := tr.Finish(root, false, false); kept {
		t.Fatalf("fast trace retained")
	}
	if layers["cache"] != 2 {
		t.Fatalf("dropped trace did not extract span timings: %v", layers)
	}
}

// TestStoreBoundUnderConcurrency is the -race bound test: concurrent
// publishers never grow the store past its max, and eviction prefers
// fast/OK traces over slow/degraded ones.
func TestStoreBoundUnderConcurrency(t *testing.T) {
	const max = 16
	tr, clock := newTestTracer(t, Config{
		Sample: 1, StoreMax: max, Baseline: 1, Slow: 10 * time.Millisecond, SlowKeepN: -1,
	})
	store := tr.Store()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	// A watcher hammers the read surface while publishers churn.
	go func() {
		defer close(watcherDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := store.Len(); n > max {
				t.Errorf("store holds %d traces, max %d", n, max)
				return
			}
			store.RetainedBytes()
			store.List(Filter{})
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := "g" + itoa(g) + "-" + itoa(i)
				ctx, root := tr.StartRoot(context.Background(), id, "http", "w", "http")
				_, sp := StartSpan(ctx, "cache.hit")
				sp.End()
				degraded := i%3 == 0
				tr.Finish(root, false, degraded)
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-watcherDone

	if n := store.Len(); n > max {
		t.Fatalf("store holds %d traces after churn, max %d", n, max)
	}
	d := store.Snapshot()
	if d.KeptError == 0 {
		t.Fatalf("no degraded traces retained: %+v", d)
	}

	// Eviction preference: fill the store with error-class traces, then a
	// baseline trace must be rejected, not displace one of them.
	tr2, clock2 := newTestTracer(t, Config{
		Sample: 1, StoreMax: 4, Baseline: 1, Slow: time.Hour, SlowKeepN: -1,
	})
	for i := 0; i < 4; i++ {
		_, root := tr2.StartRoot(context.Background(), "err"+itoa(i), "http", "w", "http")
		tr2.Finish(root, true, false)
	}
	_, root := tr2.StartRoot(context.Background(), "fast", "http", "w", "http")
	if _, kept := tr2.Finish(root, false, false); kept {
		t.Fatalf("baseline trace displaced an error trace")
	}
	if _, ok := tr2.Store().Get("err0"); !ok {
		t.Fatalf("error trace evicted by a baseline trace")
	}
	// The reverse direction: a store full of baseline traces yields to an
	// error trace, evicting the oldest baseline first.
	tr3, _ := newTestTracer(t, Config{
		Sample: 1, StoreMax: 2, Baseline: 1, Slow: time.Hour, SlowKeepN: -1,
	})
	for i := 0; i < 2; i++ {
		_, r := tr3.StartRoot(context.Background(), "base"+itoa(i), "http", "w", "http")
		tr3.Finish(r, false, false)
	}
	_, r := tr3.StartRoot(context.Background(), "boom", "http", "w", "http")
	if _, kept := tr3.Finish(r, true, false); !kept {
		t.Fatalf("error trace rejected by a store full of baselines")
	}
	if _, ok := tr3.Store().Get("base0"); ok {
		t.Fatalf("oldest baseline survived eviction")
	}
	if _, ok := tr3.Store().Get("boom"); !ok {
		t.Fatalf("error trace not stored after eviction")
	}
	_ = clock
	_ = clock2
}

func TestListFilters(t *testing.T) {
	tr, clock := newTestTracer(t, Config{Sample: 1, Baseline: 1, Slow: 100 * time.Millisecond, SlowKeepN: -1})
	mk := func(id, widget string, d time.Duration, degraded bool) {
		_, root := tr.StartRoot(context.Background(), id, "http", widget, "http")
		clock.Advance(d)
		tr.Finish(root, false, degraded)
	}
	mk("t1", "my_jobs", 0, false)
	mk("t2", "my_jobs", 200*time.Millisecond, false)
	mk("t3", "accounts", 300*time.Millisecond, true)

	if got := tr.Store().List(Filter{}); len(got) != 3 || got[0].ID != "t3" {
		t.Fatalf("List(all) = %+v", got)
	}
	if got := tr.Store().List(Filter{Widget: "my_jobs"}); len(got) != 2 {
		t.Fatalf("List(widget) = %+v", got)
	}
	if got := tr.Store().List(Filter{MinDuration: 150 * time.Millisecond}); len(got) != 2 {
		t.Fatalf("List(min duration) = %+v", got)
	}
	if got := tr.Store().List(Filter{DegradedOnly: true}); len(got) != 1 || got[0].ID != "t3" {
		t.Fatalf("List(degraded) = %+v", got)
	}
	if got := tr.Store().List(Filter{Limit: 1}); len(got) != 1 || got[0].ID != "t3" {
		t.Fatalf("List(limit) = %+v", got)
	}
}

func TestRetainedBytesAccounting(t *testing.T) {
	tr, _ := newTestTracer(t, Config{Sample: 1, StoreMax: 2, Baseline: 1, Slow: time.Hour, SlowKeepN: -1})
	for i := 0; i < 5; i++ {
		ctx, root := tr.StartRoot(context.Background(), "t"+itoa(i), "http", "w", "http")
		_, sp := StartSpan(ctx, "cache.hit")
		sp.SetAttr("k", "value")
		sp.End()
		tr.Finish(root, false, false)
	}
	store := tr.Store()
	if store.Len() != 2 {
		t.Fatalf("Len = %d, want 2", store.Len())
	}
	var want int64
	for _, s := range store.List(Filter{}) {
		if s.Bytes <= 0 {
			t.Fatalf("summary carries no byte estimate: %+v", s)
		}
		want += int64(s.Bytes)
	}
	if got := store.RetainedBytes(); got != want {
		t.Fatalf("RetainedBytes = %d, want sum of entries %d", got, want)
	}
}
