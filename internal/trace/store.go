package trace

import (
	"sort"
	"sync"
	"time"
)

// Tail-retention classes, in eviction-priority order: when the store is full
// the lowest (class, seq) entry goes first, so a baseline trace is always
// evicted before a slow one, and a slow one before an error/degraded one.
const (
	classBaseline = iota
	classSlow
	classError
)

// retainedAs maps a class to its Summary.RetainedAs label.
func retainedAs(class int) string {
	switch class {
	case classError:
		return "error"
	case classSlow:
		return "slow"
	}
	return "baseline"
}

// Decisions counts every tail-retention outcome since startup.
type Decisions struct {
	KeptError    int64 `json:"kept_error"`    // retained: error or degraded
	KeptSlow     int64 `json:"kept_slow"`     // retained: over threshold or slowest-N
	KeptBaseline int64 `json:"kept_baseline"` // retained: probabilistic baseline
	Dropped      int64 `json:"dropped"`       // not retained (timings extracted, trace freed)
	Rejected     int64 `json:"rejected"`      // retainable but lower-priority than everything stored
	Evicted      int64 `json:"evicted"`       // previously retained, displaced by a newer trace
}

// Filter selects traces from List.
type Filter struct {
	// Widget restricts to one widget ("" = all).
	Widget string
	// MinDuration drops traces faster than this.
	MinDuration time.Duration
	// DegradedOnly keeps only degraded or error traces.
	DegradedOnly bool
	// Limit bounds the result (0 = 50, capped at the store size).
	Limit int
}

// storeEntry is one retained trace.
type storeEntry struct {
	tr    *Trace
	sum   Summary
	class int
	seq   uint64
	bytes int
}

// slowTracker holds one widget's slowest-N durations within the current
// window, so "slower than the fastest of the current top N" is an O(N)
// decision with tiny N.
type slowTracker struct {
	windowStart time.Time
	durs        []time.Duration
}

// storeConfig parametrizes a Store (built by the Tracer).
type storeConfig struct {
	clock  Clock
	max    int
	slow   time.Duration
	slowN  int
	window time.Duration
}

// Store is the bounded, tail-sampled trace store. All methods are safe for
// concurrent use; the retained count never exceeds the configured maximum.
type Store struct {
	cfg storeConfig

	mu      sync.Mutex
	seq     uint64
	entries map[string]*storeEntry
	bytes   int64
	slowByW map[string]*slowTracker
	dec     Decisions
}

func newStore(cfg storeConfig) *Store {
	return &Store{
		cfg:     cfg,
		entries: make(map[string]*storeEntry, cfg.max),
		slowByW: make(map[string]*slowTracker),
	}
}

// add runs the tail-retention decision for one finished trace and reports
// whether it was kept. errClass marks error/degraded traces (always kept if
// room can be made); baselineKeep is the tracer's probabilistic coin flip.
func (s *Store) add(tr *Trace, sum *Summary, errClass, baselineKeep bool, dur time.Duration, now time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()

	class := -1
	switch {
	case errClass:
		class = classError
	case s.slowQualifies(tr.widget, dur, now):
		class = classSlow
	case baselineKeep:
		class = classBaseline
	}
	if class < 0 {
		s.dec.Dropped++
		return false
	}

	// Duplicate ID (an upstream proxy replaying its own trace ID): the newer
	// trace replaces the older without counting against the bound.
	if old, ok := s.entries[tr.id]; ok {
		s.bytes -= int64(old.bytes)
		delete(s.entries, tr.id)
	}
	if len(s.entries) >= s.cfg.max {
		// The victim is the lowest-priority stored trace; if even it outranks
		// the incoming one, the incoming trace is rejected instead (a newer
		// same-class trace displaces an older one).
		victim := s.victim()
		if victim == nil || victim.class > class {
			s.dec.Rejected++
			return false
		}
		s.bytes -= int64(victim.bytes)
		delete(s.entries, victim.tr.id)
		s.dec.Evicted++
	}
	s.seq++
	sum.RetainedAs = retainedAs(class)
	sum.Bytes = tr.sizeEstimate()
	e := &storeEntry{tr: tr, sum: *sum, class: class, seq: s.seq, bytes: sum.Bytes}
	s.entries[tr.id] = e
	s.bytes += int64(e.bytes)
	switch class {
	case classError:
		s.dec.KeptError++
	case classSlow:
		s.dec.KeptSlow++
	default:
		s.dec.KeptBaseline++
	}
	return true
}

// victim returns the lowest-priority stored entry: smallest class, oldest
// seq within it. Caller holds s.mu.
func (s *Store) victim() *storeEntry {
	var v *storeEntry
	for _, e := range s.entries {
		if v == nil || e.class < v.class || (e.class == v.class && e.seq < v.seq) {
			v = e
		}
	}
	return v
}

// slowQualifies decides the slow class: at/over the hard threshold, or in
// the widget's slowest-N for the current window. Zero-duration traces never
// qualify — on the simulated clock a request that advanced no time is by
// definition fast. Caller holds s.mu.
func (s *Store) slowQualifies(widget string, dur time.Duration, now time.Time) bool {
	if dur <= 0 {
		return false
	}
	if s.cfg.slow > 0 && dur >= s.cfg.slow {
		return true
	}
	if s.cfg.slowN <= 0 {
		return false
	}
	tk := s.slowByW[widget]
	if tk == nil || now.Sub(tk.windowStart) >= s.cfg.window {
		tk = &slowTracker{windowStart: now}
		s.slowByW[widget] = tk
	}
	if len(tk.durs) < s.cfg.slowN {
		tk.durs = append(tk.durs, dur)
		return true
	}
	min := 0
	for i := 1; i < len(tk.durs); i++ {
		if tk.durs[i] < tk.durs[min] {
			min = i
		}
	}
	if dur > tk.durs[min] {
		tk.durs[min] = dur
		return true
	}
	return false
}

// Len returns the number of retained traces.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Max returns the store's retained-trace bound.
func (s *Store) Max() int { return s.cfg.max }

// RetainedBytes estimates the memory held by retained traces — the quantity
// the /metrics gauge exports to prove the store is bytes-bounded.
func (s *Store) RetainedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// Snapshot returns the retention-decision counters.
func (s *Store) Snapshot() Decisions {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dec
}

// List returns retained trace summaries matching f, newest first.
func (s *Store) List(f Filter) []Summary {
	limit := f.Limit
	if limit <= 0 {
		limit = 50
	}
	s.mu.Lock()
	matched := make([]*storeEntry, 0, len(s.entries))
	for _, e := range s.entries {
		if f.Widget != "" && e.sum.Widget != f.Widget {
			continue
		}
		if e.sum.duration < f.MinDuration {
			continue
		}
		if f.DegradedOnly && !e.sum.Degraded && !e.sum.Error {
			continue
		}
		matched = append(matched, e)
	}
	sort.Slice(matched, func(i, j int) bool { return matched[i].seq > matched[j].seq })
	if len(matched) > limit {
		matched = matched[:limit]
	}
	out := make([]Summary, len(matched))
	for i, e := range matched {
		out[i] = e.sum
	}
	s.mu.Unlock()
	return out
}

// Get returns the retained trace with the given ID.
func (s *Store) Get(id string) (*Trace, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return nil, false
	}
	return e.tr, true
}

// Summary returns the stored summary for the given ID.
func (s *Store) Summary(id string) (Summary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[id]
	if !ok {
		return Summary{}, false
	}
	return e.sum, true
}

// sizeEstimate approximates the trace's retained footprint: a fixed
// per-trace and per-span overhead plus every string it holds. It is an
// accounting estimate (the gauge's unit), not an exact heap measurement.
func (t *Trace) sizeEstimate() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 96 + len(t.id) + len(t.widget) + len(t.origin)
	var walk func(*Span)
	walk = func(s *Span) {
		n += 112 + len(s.name)
		for _, a := range s.attrs {
			n += 32 + len(a.Key) + len(a.Value)
		}
		for _, c := range s.children {
			walk(c)
		}
	}
	if t.root != nil {
		walk(t.root)
	}
	return n
}

// SpanJSON is one exported span: offsets are relative to the trace start so
// a waterfall renders without timestamp math.
type SpanJSON struct {
	Name       string            `json:"name"`
	OffsetUS   int64             `json:"offset_us"`
	DurationUS int64             `json:"duration_us"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanJSON       `json:"children,omitempty"`
}

// TraceJSON is the exported span tree for GET /api/admin/traces/{id}.
type TraceJSON struct {
	ID           string    `json:"id"`
	Widget       string    `json:"widget"`
	Origin       string    `json:"origin"`
	Start        time.Time `json:"start"`
	DurationUS   int64     `json:"duration_us"`
	Spans        int       `json:"spans"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Root         *SpanJSON `json:"root"`
}

// Export renders the trace's span tree as JSON-ready structs. Unended spans
// (an abandoned timed-out attempt still running when the trace finished)
// clamp to the root's end time.
func (t *Trace) Export() TraceJSON {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := TraceJSON{
		ID:           t.id,
		Widget:       t.widget,
		Origin:       t.origin,
		Spans:        t.spans,
		DroppedSpans: t.dropped,
	}
	if t.root == nil {
		return out
	}
	start := t.root.start
	rootEnd := t.root.end
	if rootEnd.IsZero() {
		rootEnd = start
	}
	out.Start = start
	out.DurationUS = rootEnd.Sub(start).Microseconds()
	var export func(*Span) *SpanJSON
	export = func(s *Span) *SpanJSON {
		end := s.end
		if end.IsZero() || end.After(rootEnd) {
			end = rootEnd
		}
		j := &SpanJSON{
			Name:       s.name,
			OffsetUS:   s.start.Sub(start).Microseconds(),
			DurationUS: end.Sub(s.start).Microseconds(),
		}
		if len(s.attrs) > 0 {
			j.Attrs = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				j.Attrs[a.Key] = a.Value
			}
		}
		for _, c := range s.children {
			j.Children = append(j.Children, export(c))
		}
		return j
	}
	out.Root = export(t.root)
	return out
}

// Depth returns the maximum nesting depth of the exported tree (root = 1).
func (t TraceJSON) Depth() int {
	var depth func(*SpanJSON) int
	depth = func(s *SpanJSON) int {
		if s == nil {
			return 0
		}
		max := 0
		for _, c := range s.Children {
			if d := depth(c); d > max {
				max = d
			}
		}
		return 1 + max
	}
	return depth(t.Root)
}
