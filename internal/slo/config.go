package slo

// JSON objectives file for `dashboard -slo-config`. Durations are Go
// duration strings ("5m", "1h30m"); omitted rule fields inherit nothing —
// the file is explicit so an operator can diff it against the defaults.
//
//	{
//	  "objectives": [
//	    {
//	      "name": "availability", "kind": "availability", "target": 0.999,
//	      "rules": [
//	        {"name": "page", "severity": "page", "burn": 14.4,
//	         "short": "5m", "long": "1h", "for": "2m", "keep_for": "1m"}
//	      ]
//	    },
//	    {
//	      "name": "latency", "kind": "latency", "target": 0.99,
//	      "threshold": "250ms",
//	      "rules": [
//	        {"name": "ticket", "severity": "ticket", "burn": 3,
//	         "short": "30m", "long": "6h", "for": "1m", "keep_for": "1m"}
//	      ]
//	    }
//	  ]
//	}

import (
	"encoding/json"
	"fmt"
	"time"
)

type fileConfig struct {
	Objectives []fileObjective `json:"objectives"`
}

type fileObjective struct {
	Name      string     `json:"name"`
	Kind      string     `json:"kind"`
	Target    float64    `json:"target"`
	Threshold string     `json:"threshold,omitempty"`
	Rules     []fileRule `json:"rules"`
}

type fileRule struct {
	Name     string  `json:"name"`
	Severity string  `json:"severity,omitempty"`
	Burn     float64 `json:"burn"`
	Short    string  `json:"short"`
	Long     string  `json:"long"`
	For      string  `json:"for,omitempty"`
	KeepFor  string  `json:"keep_for,omitempty"`
}

func parseDur(field, s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("slo config: %s: %w", field, err)
	}
	return d, nil
}

// ParseConfig decodes and validates a JSON objectives file.
func ParseConfig(data []byte) ([]Objective, error) {
	var fc fileConfig
	if err := json.Unmarshal(data, &fc); err != nil {
		return nil, fmt.Errorf("slo config: %w", err)
	}
	objs := make([]Objective, 0, len(fc.Objectives))
	for _, fo := range fc.Objectives {
		o := Objective{Name: fo.Name, Kind: Kind(fo.Kind), Target: fo.Target}
		var err error
		if o.Threshold, err = parseDur(fo.Name+".threshold", fo.Threshold); err != nil {
			return nil, err
		}
		for _, fr := range fo.Rules {
			r := Rule{Name: fr.Name, Severity: fr.Severity, Burn: fr.Burn}
			if r.Severity == "" {
				r.Severity = r.Name
			}
			prefix := fo.Name + "/" + fr.Name
			if r.Short, err = parseDur(prefix+".short", fr.Short); err != nil {
				return nil, err
			}
			if r.Long, err = parseDur(prefix+".long", fr.Long); err != nil {
				return nil, err
			}
			if r.For, err = parseDur(prefix+".for", fr.For); err != nil {
				return nil, err
			}
			if r.KeepFor, err = parseDur(prefix+".keep_for", fr.KeepFor); err != nil {
				return nil, err
			}
			o.Rules = append(o.Rules, r)
		}
		objs = append(objs, o)
	}
	if err := Validate(objs); err != nil {
		return nil, err
	}
	return objs, nil
}
