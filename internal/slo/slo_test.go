package slo

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for deterministic engine tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0).UTC()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// testObjectives is a small, fast-burning objective set for unit tests:
// 90% availability with a 2x burn rule over 2m/10m windows.
func testObjectives(forDur, keepFor time.Duration) []Objective {
	return []Objective{{
		Name:   "availability",
		Kind:   KindAvailability,
		Target: 0.9,
		Rules: []Rule{{Name: "page", Severity: "page", Burn: 2,
			Short: 2 * time.Minute, Long: 10 * time.Minute,
			For: forDur, KeepFor: keepFor}},
	}}
}

func alertState0(t *testing.T, e *Engine) AlertStatus {
	t.Helper()
	st := e.Status()
	if len(st.Objectives) == 0 || len(st.Objectives[0].Alerts) == 0 {
		t.Fatal("no objectives/alerts in status")
	}
	return st.Objectives[0].Alerts[0]
}

func TestSLOStateMachineLifecycle(t *testing.T) {
	clk := newFakeClock()
	e := New(clk, testObjectives(time.Minute, time.Minute))

	record := func(n int, status int) {
		for i := 0; i < n; i++ {
			e.Record(0.001, status, false, "trace-1")
		}
	}

	record(10, 200)
	e.Evaluate()
	if got := alertState0(t, e).State; got != "inactive" {
		t.Fatalf("healthy traffic: state = %q, want inactive", got)
	}

	// Burst of 5xx: condition true, but must hold For=1m before firing.
	clk.Advance(30 * time.Second)
	record(10, 500)
	e.Evaluate()
	if got := alertState0(t, e).State; got != "pending" {
		t.Fatalf("after burst: state = %q, want pending", got)
	}

	clk.Advance(30 * time.Second)
	record(10, 500)
	e.Evaluate()
	if got := alertState0(t, e).State; got != "pending" {
		t.Fatalf("30s into For: state = %q, want pending", got)
	}

	clk.Advance(30 * time.Second)
	e.Evaluate()
	a := alertState0(t, e)
	if a.State != "firing" || a.Fired != 1 {
		t.Fatalf("past For: state = %q fired = %d, want firing/1", a.State, a.Fired)
	}

	// Recovery: the bad buckets age out of the 2m short window; the long
	// window still remembers them, but the AND condition breaks, and after
	// KeepFor=1m of clean the alert resolves.
	for i := 0; i < 8; i++ {
		clk.Advance(30 * time.Second)
		record(10, 200)
		e.Evaluate()
	}
	a = alertState0(t, e)
	if a.State != "inactive" || a.Resolved != 1 {
		t.Fatalf("after recovery: state = %q resolved = %d, want inactive/1", a.State, a.Resolved)
	}

	// Transition log tells the same story in order.
	var tos []string
	for _, tr := range e.Status().Transitions {
		tos = append(tos, tr.From+">"+tr.To)
	}
	want := []string{"inactive>pending", "pending>firing", "firing>resolved"}
	if strings.Join(tos, " ") != strings.Join(want, " ") {
		t.Fatalf("transitions = %v, want %v", tos, want)
	}
}

func TestSLOPendingCancelsWithoutFiring(t *testing.T) {
	clk := newFakeClock()
	e := New(clk, testObjectives(2*time.Minute, time.Minute))

	for i := 0; i < 10; i++ {
		e.Record(0.001, 500, false, "")
	}
	e.Evaluate()
	if got := alertState0(t, e).State; got != "pending" {
		t.Fatalf("state = %q, want pending", got)
	}

	// Blip clears before For elapses: back to inactive, nothing fired.
	for i := 0; i < 5; i++ {
		clk.Advance(30 * time.Second)
		for j := 0; j < 50; j++ {
			e.Record(0.001, 200, false, "")
		}
		e.Evaluate()
	}
	a := alertState0(t, e)
	if a.State != "inactive" || a.Fired != 0 {
		t.Fatalf("state = %q fired = %d, want inactive/0", a.State, a.Fired)
	}
	for _, tr := range e.Status().Transitions {
		if tr.To == "firing" {
			t.Fatalf("blip fired: %+v", tr)
		}
	}
}

func TestSLORecordClassification(t *testing.T) {
	clk := newFakeClock()
	objs := []Objective{
		testObjectives(0, 0)[0],
		{Name: "latency", Kind: KindLatency, Target: 0.9,
			Threshold: 100 * time.Millisecond,
			Rules: []Rule{{Name: "ticket", Severity: "ticket", Burn: 2,
				Short: 2 * time.Minute, Long: 10 * time.Minute}}},
	}
	e := New(clk, objs)

	e.Record(0.001, 200, false, "") // avail good; latency good
	e.Record(0.500, 200, false, "") // avail good; latency bad (slow)
	e.Record(0.001, 304, false, "") // avail good; latency ignored (not 2xx)
	e.Record(0.001, 404, false, "") // avail good; latency ignored
	e.Record(0.001, 200, true, "")  // avail bad (degraded); latency ignored
	e.Record(0.001, 500, false, "") // avail bad; latency ignored
	e.Record(0.001, 503, false, "") // both ignored: intentional backpressure

	if g, b := e.WindowCounts("availability", time.Minute); g != 4 || b != 2 {
		t.Fatalf("availability counts = %d/%d, want 4 good / 2 bad", g, b)
	}
	if g, b := e.WindowCounts("latency", time.Minute); g != 1 || b != 1 {
		t.Fatalf("latency counts = %d/%d, want 1 good / 1 bad", g, b)
	}
	if g, b := e.BudgetCounts("availability"); g != 4 || b != 2 {
		t.Fatalf("availability budget = %d/%d, want 4/2", g, b)
	}
}

func TestSLOBudgetLedger(t *testing.T) {
	clk := newFakeClock()
	e := New(clk, testObjectives(0, 0))

	// 95 good + 5 bad against a 10% budget of 100 events: half spent, and
	// at the current 0.5x burn the remaining half lasts one full window.
	for i := 0; i < 95; i++ {
		e.Record(0.001, 200, false, "")
	}
	for i := 0; i < 5; i++ {
		e.Record(0.001, 500, false, "")
	}
	b := e.Status().Objectives[0].Budget
	if b.Total != 100 || b.Bad != 5 {
		t.Fatalf("budget counts = %+v", b)
	}
	approx := func(got, want float64) bool { return got > want*0.999 && got < want*1.001 }
	if !approx(b.SpentRatio, 0.5) || !approx(b.RemainingRatio, 0.5) {
		t.Fatalf("spent/remaining = %v/%v, want ~0.5/0.5", b.SpentRatio, b.RemainingRatio)
	}
	if !approx(b.ExhaustionSeconds, BudgetWindow.Seconds()) {
		t.Fatalf("exhaustion = %v, want ~%v", b.ExhaustionSeconds, BudgetWindow.Seconds())
	}

	// Old events age out of the 28d ledger.
	clk.Advance(BudgetWindow + 2*budgetBucket)
	if g, b := e.BudgetCounts("availability"); g != 0 || b != 0 {
		t.Fatalf("expired budget counts = %d/%d, want 0/0", g, b)
	}
}

func TestSLOWindowAging(t *testing.T) {
	clk := newFakeClock()
	e := New(clk, testObjectives(0, 0))
	for i := 0; i < 10; i++ {
		e.Record(0.001, 500, false, "")
	}
	if _, b := e.WindowCounts("availability", 2*time.Minute); b != 10 {
		t.Fatalf("bad in window = %d, want 10", b)
	}
	clk.Advance(3 * time.Minute)
	if _, b := e.WindowCounts("availability", 2*time.Minute); b != 0 {
		t.Fatalf("bad after aging = %d, want 0", b)
	}
	if _, b := e.WindowCounts("availability", 10*time.Minute); b != 10 {
		t.Fatalf("bad in long window = %d, want 10", b)
	}
}

func TestSLOTransitionLogBounded(t *testing.T) {
	clk := newFakeClock()
	e := New(clk, testObjectives(0, 0)) // For=0, KeepFor=0: flaps freely
	for i := 0; i < 40; i++ {
		e.Record(0.001, 500, false, "")
		e.Evaluate() // inactive -> pending -> firing (2 transitions)
		clk.Advance(15 * time.Minute)
		e.Evaluate() // windows empty -> resolved (1 transition)
	}
	trs := e.Status().Transitions
	if len(trs) != maxTransitions {
		t.Fatalf("transition log length = %d, want %d", len(trs), maxTransitions)
	}
	if f, r, ok := e.AlertCounts("availability", "page"); !ok || f != 40 || r != 40 {
		t.Fatalf("alert counts = %d/%d/%v, want 40/40/true", f, r, ok)
	}
}

func TestSLOEngineDeterminism(t *testing.T) {
	run := func() []byte {
		clk := newFakeClock()
		e := New(clk, DefaultObjectives())
		for step := 0; step < 20; step++ {
			for i := 0; i < 7; i++ {
				e.Record(0.003, 200, false, "t-good")
			}
			if step >= 4 && step < 9 {
				e.Record(0.3, 500, false, "t-bad")
				e.Record(0.4, 200, true, "t-degraded")
			}
			e.Evaluate()
			clk.Advance(47 * time.Second)
		}
		buf, err := json.Marshal(e.Status())
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("identical event sequences produced different status bytes:\n%s\n---\n%s", a, b)
	}
}

func TestSLORecordAllocFree(t *testing.T) {
	clk := newFakeClock()
	e := New(clk, DefaultObjectives())
	if n := testing.AllocsPerRun(200, func() {
		e.Record(0.002, 200, false, "trace-xyz")
	}); n != 0 {
		t.Fatalf("good-path Record allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		e.Record(0.8, 500, false, "trace-xyz")
	}); n != 0 {
		t.Fatalf("bad-path Record allocates %v/op, want 0", n)
	}
}

func TestSLOAggregatorFleetView(t *testing.T) {
	clk := newFakeClock()
	objs := testObjectives(0, time.Minute)
	burning := New(clk, objs)
	healthy := New(clk, objs)
	agg := NewAggregator(clk, objs, func() []*Engine { return []*Engine{burning, healthy} })

	// One replica takes every error; the other carries enough good traffic
	// that the pooled burn rate stays under threshold.
	for i := 0; i < 10; i++ {
		burning.Record(0.001, 500, false, "t-burn")
	}
	for i := 0; i < 90; i++ {
		healthy.Record(0.001, 200, false, "")
	}
	burning.Evaluate()
	healthy.Evaluate()
	agg.Evaluate()

	if got := alertState0(t, burning).State; got != "firing" {
		t.Fatalf("burning replica state = %q, want firing", got)
	}
	if got := agg.Status().Objectives[0].Alerts[0].State; got != "inactive" {
		t.Fatalf("fleet state = %q, want inactive (objective met by the fleet)", got)
	}
	fg, fb := 0, 0
	for _, e := range []*Engine{burning, healthy} {
		g, b := e.WindowCounts("availability", 2*time.Minute)
		fg += int(g)
		fb += int(b)
	}
	if fg != 90 || fb != 10 {
		t.Fatalf("pooled counts = %d/%d, want 90/10", fg, fb)
	}

	// Push the whole fleet over budget: the aggregate fires too.
	for i := 0; i < 400; i++ {
		healthy.Record(0.001, 500, false, "t-burn")
	}
	agg.Evaluate()
	if got := agg.Status().Objectives[0].Alerts[0].State; got != "firing" {
		t.Fatalf("fleet state = %q, want firing after fleet-wide burn", got)
	}
	if f, _, ok := agg.AlertCounts("availability", "page"); !ok || f != 1 {
		t.Fatalf("fleet fired = %d/%v, want 1/true", f, ok)
	}
}

func TestSLOLastBadExemplar(t *testing.T) {
	clk := newFakeClock()
	e := New(clk, DefaultObjectives())
	if _, _, _, ok := e.LastBadExemplar("availability"); ok {
		t.Fatal("exemplar before any bad event")
	}
	e.Record(0.7, 500, false, "trace-bad-1")
	id, v, _, ok := e.LastBadExemplar("availability")
	if !ok || id != "trace-bad-1" || v != 0.7 {
		t.Fatalf("exemplar = %q/%v/%v", id, v, ok)
	}
}

func TestSLOConfigParse(t *testing.T) {
	src := `{
	  "objectives": [
	    {"name": "availability", "kind": "availability", "target": 0.995,
	     "rules": [
	       {"name": "page", "burn": 10, "short": "5m", "long": "1h",
	        "for": "90s", "keep_for": "2m"}
	     ]},
	    {"name": "latency", "kind": "latency", "target": 0.99,
	     "threshold": "150ms",
	     "rules": [
	       {"name": "ticket", "severity": "ticket", "burn": 3,
	        "short": "30m", "long": "6h"}
	     ]}
	  ]
	}`
	objs, err := ParseConfig([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("parsed %d objectives, want 2", len(objs))
	}
	av := objs[0]
	if av.Target != 0.995 || av.Rules[0].For != 90*time.Second || av.Rules[0].KeepFor != 2*time.Minute {
		t.Fatalf("availability parsed wrong: %+v", av)
	}
	if av.Rules[0].Severity != "page" {
		t.Fatalf("severity should default to rule name, got %q", av.Rules[0].Severity)
	}
	lat := objs[1]
	if lat.Threshold != 150*time.Millisecond || lat.Rules[0].Long != 6*time.Hour {
		t.Fatalf("latency parsed wrong: %+v", lat)
	}

	bad := []string{
		`{`, // malformed JSON
		`{"objectives": []}`,
		`{"objectives": [{"name": "x", "kind": "nope", "target": 0.9,
		  "rules": [{"name": "r", "burn": 1, "short": "1m", "long": "5m"}]}]}`,
		`{"objectives": [{"name": "x", "kind": "availability", "target": 1.5,
		  "rules": [{"name": "r", "burn": 1, "short": "1m", "long": "5m"}]}]}`,
		`{"objectives": [{"name": "x", "kind": "availability", "target": 0.9,
		  "rules": [{"name": "r", "burn": 1, "short": "5m", "long": "1m"}]}]}`,
		`{"objectives": [{"name": "x", "kind": "availability", "target": 0.9,
		  "rules": [{"name": "r", "burn": 1, "short": "oops", "long": "5m"}]}]}`,
		`{"objectives": [{"name": "x", "kind": "latency", "target": 0.9,
		  "rules": [{"name": "r", "burn": 1, "short": "1m", "long": "5m"}]}]}`,
	}
	for i, src := range bad {
		if _, err := ParseConfig([]byte(src)); err == nil {
			t.Errorf("bad config %d parsed without error", i)
		}
	}
}

func TestSLODefaultObjectivesValid(t *testing.T) {
	if err := Validate(DefaultObjectives()); err != nil {
		t.Fatal(err)
	}
}
