// Package slo is a dependency-free, clock-driven SLO engine: per-objective
// SLI recorders feed ring-buffered sliding windows, multi-window multi-burn-
// rate alert rules (Google SRE workbook style), a 28-day error-budget
// ledger, and a deterministic alert state machine.
//
// Everything runs on an injected Clock, so the same event sequence on the
// simulated clock produces byte-identical alert transitions across runs —
// chaos drills can assert "this scenario fires the availability page and
// resolves it" as a deterministic gate rather than a flaky heuristic.
//
// The recording hot path (Engine.Record) is one mutex acquisition plus a
// handful of ring-slot increments: zero allocations, so the dashboard's
// encode-once hit path keeps its alloc budget with SLO accounting enabled.
package slo

import (
	"fmt"
	"sync"
	"time"
)

// Clock is the time source; production uses the wall clock, tests and chaos
// drills use the shared simulated clock.
type Clock interface {
	Now() time.Time
}

// Kind selects how an objective classifies a request into good/bad/ignored.
type Kind string

// Objective kinds.
const (
	// KindAvailability counts every response except 503s (intentional
	// backpressure: breaker-open or admission-gate rejections are the
	// system protecting itself, not failing). Bad = other 5xx or a
	// degraded (stale-while-error) response.
	KindAvailability Kind = "availability"
	// KindLatency counts fresh 2xx responses only (degraded and rejected
	// responses are availability's problem). Bad = slower than Threshold.
	KindLatency Kind = "latency"
)

// BudgetWindow is the rolling error-budget accounting window.
const BudgetWindow = 28 * 24 * time.Hour

// fineBucket is the resolution of the burn-rate ring; rule windows are
// quantized to it. budgetBucket is the resolution of the 28d budget ring.
const (
	fineBucket   = 30 * time.Second
	budgetBucket = time.Hour
)

// Rule is one multi-window burn-rate alert: fire when the burn rate over
// BOTH the short and long windows is at least Burn, sustained for For;
// resolve after the condition has been false for KeepFor (hysteresis).
type Rule struct {
	Name     string        // "page", "ticket"
	Severity string        // paging class, usually same as Name
	Burn     float64       // burn-rate threshold, in multiples of budget rate
	Short    time.Duration // fast window (spike detection)
	Long     time.Duration // slow window (sustained-burn confirmation)
	For      time.Duration // condition must hold this long before firing
	KeepFor  time.Duration // condition must clear this long before resolving
}

// Objective is one SLO: a target ratio over the budget window plus the
// alert rules that guard it.
type Objective struct {
	Name      string
	Kind      Kind
	Target    float64       // e.g. 0.999 -> error budget 0.1%
	Threshold time.Duration // latency objectives: good means <= Threshold
	Rules     []Rule
}

// DefaultObjectives returns the stock SLO set: 99.9% availability guarded
// by the canonical SRE-workbook rule pair (14.4x over 5m AND 1h pages;
// 3x over 30m AND 6h tickets), and 99% of fresh responses under 250ms
// guarded by a ticket-only rule — latency never pages on its own.
func DefaultObjectives() []Objective {
	return []Objective{
		{
			Name:   "availability",
			Kind:   KindAvailability,
			Target: 0.999,
			Rules: []Rule{
				{Name: "page", Severity: "page", Burn: 14.4,
					Short: 5 * time.Minute, Long: time.Hour,
					For: 2 * time.Minute, KeepFor: time.Minute},
				{Name: "ticket", Severity: "ticket", Burn: 3,
					Short: 30 * time.Minute, Long: 6 * time.Hour,
					For: 2 * time.Minute, KeepFor: time.Minute},
			},
		},
		{
			Name:      "latency",
			Kind:      KindLatency,
			Target:    0.99,
			Threshold: 250 * time.Millisecond,
			Rules: []Rule{
				{Name: "ticket", Severity: "ticket", Burn: 3,
					Short: 30 * time.Minute, Long: 6 * time.Hour,
					For: time.Minute, KeepFor: time.Minute},
			},
		},
	}
}

// Validate checks an objective set for the invariants the engine assumes.
func Validate(objs []Objective) error {
	if len(objs) == 0 {
		return fmt.Errorf("slo: no objectives")
	}
	seen := make(map[string]bool, len(objs))
	for _, o := range objs {
		if o.Name == "" {
			return fmt.Errorf("slo: objective with empty name")
		}
		if seen[o.Name] {
			return fmt.Errorf("slo: duplicate objective %q", o.Name)
		}
		seen[o.Name] = true
		if o.Kind != KindAvailability && o.Kind != KindLatency {
			return fmt.Errorf("slo: objective %q: unknown kind %q", o.Name, o.Kind)
		}
		if o.Target <= 0 || o.Target >= 1 {
			return fmt.Errorf("slo: objective %q: target %v outside (0,1)", o.Name, o.Target)
		}
		if o.Kind == KindLatency && o.Threshold <= 0 {
			return fmt.Errorf("slo: objective %q: latency threshold must be > 0", o.Name)
		}
		if len(o.Rules) == 0 {
			return fmt.Errorf("slo: objective %q: no alert rules", o.Name)
		}
		ruleSeen := make(map[string]bool, len(o.Rules))
		for _, r := range o.Rules {
			if r.Name == "" {
				return fmt.Errorf("slo: objective %q: rule with empty name", o.Name)
			}
			if ruleSeen[r.Name] {
				return fmt.Errorf("slo: objective %q: duplicate rule %q", o.Name, r.Name)
			}
			ruleSeen[r.Name] = true
			if r.Burn <= 0 {
				return fmt.Errorf("slo: %s/%s: burn threshold must be > 0", o.Name, r.Name)
			}
			if r.Short <= 0 || r.Long <= 0 || r.Short > r.Long {
				return fmt.Errorf("slo: %s/%s: need 0 < short <= long window", o.Name, r.Name)
			}
			if r.For < 0 || r.KeepFor < 0 {
				return fmt.Errorf("slo: %s/%s: negative for/keep_for", o.Name, r.Name)
			}
		}
	}
	return nil
}

// --- ring buffers -------------------------------------------------------------

// slot is one time bucket: good/bad event counts tagged with the absolute
// bucket epoch so stale slots are detected (and logically zero) without a
// sweeper — a gap in traffic simply leaves old epochs behind.
type slot struct {
	epoch     int64
	good, bad uint64
}

// ring is an epoch-indexed bucket ring covering a fixed trailing span.
type ring struct {
	width time.Duration
	slots []slot
}

func newRing(width, span time.Duration) ring {
	n := int(span/width) + 1 // +1: the current partial bucket
	if n < 2 {
		n = 2
	}
	return ring{width: width, slots: make([]slot, n)}
}

func (r *ring) epoch(t time.Time) int64 { return t.UnixNano() / int64(r.width) }

func (r *ring) add(now time.Time, bad bool) {
	e := r.epoch(now)
	i := e % int64(len(r.slots))
	if i < 0 {
		i += int64(len(r.slots))
	}
	s := &r.slots[i]
	if s.epoch != e {
		s.epoch, s.good, s.bad = e, 0, 0
	}
	if bad {
		s.bad++
	} else {
		s.good++
	}
}

// window sums the buckets covering the trailing span ending at now
// (inclusive of the current partial bucket). Spans longer than the ring
// cover whatever the ring retains.
func (r *ring) window(now time.Time, span time.Duration) (good, bad uint64) {
	hi := r.epoch(now)
	k := int64(span / r.width)
	if k < 1 {
		k = 1
	}
	lo := hi - k + 1
	for i := range r.slots {
		s := &r.slots[i]
		if s.epoch >= lo && s.epoch <= hi {
			good += s.good
			bad += s.bad
		}
	}
	return good, bad
}

// --- alert state machine ------------------------------------------------------

// State is an alert's position in the inactive -> pending -> firing cycle.
type State int

// Alert states.
const (
	StateInactive State = iota
	StatePending
	StateFiring
)

// String returns the wire name.
func (s State) String() string {
	switch s {
	case StatePending:
		return "pending"
	case StateFiring:
		return "firing"
	}
	return "inactive"
}

// Transition is one recorded alert state change.
type Transition struct {
	At        time.Time `json:"at"`
	Objective string    `json:"objective"`
	Rule      string    `json:"rule"`
	From      string    `json:"from"`
	To        string    `json:"to"`
}

// maxTransitions bounds the retained transition log.
const maxTransitions = 64

type transLog struct {
	entries []Transition
}

func (l *transLog) add(tr Transition) {
	l.entries = append(l.entries, tr)
	if len(l.entries) > maxTransitions {
		copy(l.entries, l.entries[len(l.entries)-maxTransitions:])
		l.entries = l.entries[:maxTransitions]
	}
}

// alertState is one rule's live state.
type alertState struct {
	rule       Rule
	state      State
	since      time.Time // entered the current state
	clearSince time.Time // firing only: condition continuously false since
	shortBurn  float64
	longBurn   float64
	fired      uint64
	resolved   uint64
}

// windowCounter abstracts "good/bad counts over a trailing window" so one
// rule evaluator serves both a single engine (ring lookup) and the fleet
// aggregator (sum across member engines).
type windowCounter interface {
	windowCounts(now time.Time, span time.Duration) (good, bad uint64)
}

// burnRate converts window counts into a burn-rate multiple: the observed
// bad fraction divided by the budgeted bad fraction (1 - target).
func burnRate(good, bad uint64, errBudget float64) float64 {
	total := good + bad
	if total == 0 || errBudget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / errBudget
}

// evalRules advances every rule's state machine to now. Deterministic: the
// outcome depends only on ring contents and the injected clock.
func evalRules(now time.Time, def Objective, alerts []alertState, wc windowCounter, log *transLog) {
	errBudget := 1 - def.Target
	for i := range alerts {
		a := &alerts[i]
		gs, bs := wc.windowCounts(now, a.rule.Short)
		gl, bl := wc.windowCounts(now, a.rule.Long)
		a.shortBurn = burnRate(gs, bs, errBudget)
		a.longBurn = burnRate(gl, bl, errBudget)
		cond := a.shortBurn >= a.rule.Burn && a.longBurn >= a.rule.Burn

		transition := func(to State, toName string) {
			log.add(Transition{At: now, Objective: def.Name, Rule: a.rule.Name,
				From: a.state.String(), To: toName})
			a.state = to
			a.since = now
		}

		switch a.state {
		case StateInactive:
			if cond {
				transition(StatePending, StatePending.String())
				if a.rule.For <= 0 {
					transition(StateFiring, StateFiring.String())
					a.fired++
				}
			}
		case StatePending:
			if !cond {
				transition(StateInactive, StateInactive.String())
			} else if now.Sub(a.since) >= a.rule.For {
				transition(StateFiring, StateFiring.String())
				a.fired++
			}
		case StateFiring:
			if cond {
				a.clearSince = time.Time{} // condition back: reset hysteresis
			} else {
				if a.clearSince.IsZero() {
					a.clearSince = now
				}
				if now.Sub(a.clearSince) >= a.rule.KeepFor {
					transition(StateInactive, "resolved")
					a.resolved++
					a.clearSince = time.Time{}
				}
			}
		}
	}
}

// --- engine -------------------------------------------------------------------

// objState is one objective's live recording + alerting state.
type objState struct {
	def       Objective
	threshold float64 // seconds; latency objectives only
	fine      ring    // burn-rate windows
	budget    ring    // 28d error-budget ledger
	totalGood uint64
	totalBad  uint64
	// Last bad event, for the /metrics exemplar linking a firing burn back
	// to a retained trace.
	lastBadTrace string
	lastBadVal   float64
	lastBadTs    float64
	alerts       []alertState
}

func (o *objState) windowCounts(now time.Time, span time.Duration) (good, bad uint64) {
	return o.fine.window(now, span)
}

// classify maps one response to (counted, bad) under this objective.
func (o *objState) classify(seconds float64, status int, degraded bool) (counted, bad bool) {
	switch o.def.Kind {
	case KindAvailability:
		if status == 503 { // intentional backpressure, not failure
			return false, false
		}
		return true, status >= 500 || degraded
	case KindLatency:
		if status < 200 || status >= 300 || degraded {
			return false, false
		}
		return true, seconds > o.threshold
	}
	return false, false
}

// Engine records SLI events and drives the alert state machines for one
// server's objective set.
type Engine struct {
	mu    sync.Mutex
	clock Clock
	objs  []*objState
	trans transLog
}

// New builds an engine over the given objectives (nil means
// DefaultObjectives). It panics on an invalid objective set — that is a
// programming or config-validation error upstream.
func New(clock Clock, objectives []Objective) *Engine {
	if len(objectives) == 0 {
		objectives = DefaultObjectives()
	}
	if err := Validate(objectives); err != nil {
		panic(err)
	}
	e := &Engine{clock: clock}
	for _, def := range objectives {
		e.objs = append(e.objs, newObjState(def))
	}
	return e
}

func newObjState(def Objective) *objState {
	maxLong := time.Hour
	for _, r := range def.Rules {
		if r.Long > maxLong {
			maxLong = r.Long
		}
	}
	return &objState{
		def:       def,
		threshold: def.Threshold.Seconds(),
		fine:      newRing(fineBucket, maxLong),
		budget:    newRing(budgetBucket, BudgetWindow),
		alerts:    newAlerts(def),
	}
}

func newAlerts(def Objective) []alertState {
	out := make([]alertState, len(def.Rules))
	for i, r := range def.Rules {
		out[i] = alertState{rule: r}
	}
	return out
}

// Objectives returns the engine's objective definitions (for aggregators
// layering fleet-level views over per-replica engines).
func (e *Engine) Objectives() []Objective {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Objective, len(e.objs))
	for i, o := range e.objs {
		out[i] = o.def
	}
	return out
}

// Record classifies one finished request under every objective. Zero
// allocations: it must be safe on the encode-once hit path.
func (e *Engine) Record(seconds float64, status int, degraded bool, traceID string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock.Now()
	for _, o := range e.objs {
		counted, bad := o.classify(seconds, status, degraded)
		if !counted {
			continue
		}
		o.fine.add(now, bad)
		o.budget.add(now, bad)
		if bad {
			o.totalBad++
			if traceID != "" {
				o.lastBadTrace = traceID
				o.lastBadVal = seconds
				o.lastBadTs = float64(now.UnixMilli()) / 1e3
			}
		} else {
			o.totalGood++
		}
	}
}

// Evaluate advances every alert state machine to the current clock time.
// Idempotent at a fixed clock reading; call it from the refresh tick.
func (e *Engine) Evaluate() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.evalLocked(e.clock.Now())
}

func (e *Engine) evalLocked(now time.Time) {
	for _, o := range e.objs {
		evalRules(now, o.def, o.alerts, o, &e.trans)
	}
}

// WindowCounts returns the named objective's good/bad counts over the
// trailing span (fine-ring resolution). Used by fleet aggregation.
func (e *Engine) WindowCounts(name string, span time.Duration) (good, bad uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.def.Name == name {
			return o.fine.window(e.clock.Now(), span)
		}
	}
	return 0, 0
}

// BudgetCounts returns the named objective's good/bad counts over the
// rolling 28d budget window.
func (e *Engine) BudgetCounts(name string) (good, bad uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.def.Name == name {
			return o.budget.window(e.clock.Now(), BudgetWindow)
		}
	}
	return 0, 0
}

// EventTotals returns lifetime good/bad event counts for the named
// objective — monotonic, unlike the windowed counts, so they render as
// valid Prometheus counters.
func (e *Engine) EventTotals(name string) (good, bad uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.def.Name == name {
			return o.totalGood, o.totalBad
		}
	}
	return 0, 0
}

// LastBadExemplar returns the most recent bad event's trace linkage for
// the named objective (ok=false when none recorded yet).
func (e *Engine) LastBadExemplar(name string) (traceID string, value, ts float64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.def.Name == name && o.lastBadTrace != "" {
			return o.lastBadTrace, o.lastBadVal, o.lastBadTs, true
		}
	}
	return "", 0, 0, false
}

// --- status snapshots ---------------------------------------------------------

// Status is the full engine snapshot served at /api/admin/slo.
type Status struct {
	Now         time.Time         `json:"now"`
	Objectives  []ObjectiveStatus `json:"objectives"`
	Transitions []Transition      `json:"transitions"`
}

// ObjectiveStatus is one objective's budget and alert view.
type ObjectiveStatus struct {
	Name             string        `json:"name"`
	Kind             string        `json:"kind"`
	Target           float64       `json:"target"`
	ThresholdSeconds float64       `json:"threshold_seconds,omitempty"`
	Budget           BudgetStatus  `json:"budget"`
	Alerts           []AlertStatus `json:"alerts"`
}

// BudgetStatus is the 28d error-budget ledger for one objective.
type BudgetStatus struct {
	WindowSeconds     float64 `json:"window_seconds"`
	Good              uint64  `json:"good"`
	Bad               uint64  `json:"bad"`
	Total             uint64  `json:"total"`
	SpentRatio        float64 `json:"spent_ratio"`
	RemainingRatio    float64 `json:"remaining_ratio"`
	ExhaustionSeconds float64 `json:"exhaustion_seconds"` // 0: not burning
}

// AlertStatus is one rule's live alert view.
type AlertStatus struct {
	Rule          string  `json:"rule"`
	Severity      string  `json:"severity"`
	State         string  `json:"state"`
	SinceMillis   int64   `json:"since_ms,omitempty"`
	BurnThreshold float64 `json:"burn_threshold"`
	ShortSeconds  float64 `json:"short_window_seconds"`
	LongSeconds   float64 `json:"long_window_seconds"`
	ShortBurn     float64 `json:"short_burn"`
	LongBurn      float64 `json:"long_burn"`
	Fired         uint64  `json:"fired_total"`
	Resolved      uint64  `json:"resolved_total"`
}

func alertStatuses(alerts []alertState) []AlertStatus {
	out := make([]AlertStatus, len(alerts))
	for i := range alerts {
		a := &alerts[i]
		st := AlertStatus{
			Rule:          a.rule.Name,
			Severity:      a.rule.Severity,
			State:         a.state.String(),
			BurnThreshold: a.rule.Burn,
			ShortSeconds:  a.rule.Short.Seconds(),
			LongSeconds:   a.rule.Long.Seconds(),
			ShortBurn:     a.shortBurn,
			LongBurn:      a.longBurn,
			Fired:         a.fired,
			Resolved:      a.resolved,
		}
		if !a.since.IsZero() {
			st.SinceMillis = a.since.UnixMilli()
		}
		out[i] = st
	}
	return out
}

// budgetStatus computes the ledger from budget-window counts plus the
// current 1h burn rate (for the exhaustion ETA).
func budgetStatus(def Objective, good, bad uint64, hourBurn float64) BudgetStatus {
	errBudget := 1 - def.Target
	total := good + bad
	st := BudgetStatus{
		WindowSeconds: BudgetWindow.Seconds(),
		Good:          good,
		Bad:           bad,
		Total:         total,
	}
	if total > 0 && errBudget > 0 {
		st.SpentRatio = float64(bad) / (float64(total) * errBudget)
	}
	st.RemainingRatio = 1 - st.SpentRatio
	if hourBurn > 0 && st.RemainingRatio > 0 {
		st.ExhaustionSeconds = st.RemainingRatio * BudgetWindow.Seconds() / hourBurn
	}
	return st
}

// Status evaluates to the current clock time and returns the snapshot.
func (e *Engine) Status() Status {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.clock.Now()
	e.evalLocked(now)
	st := Status{Now: now, Transitions: append([]Transition(nil), e.trans.entries...)}
	for _, o := range e.objs {
		good, bad := o.budget.window(now, BudgetWindow)
		hg, hb := o.fine.window(now, time.Hour)
		os := ObjectiveStatus{
			Name:   o.def.Name,
			Kind:   string(o.def.Kind),
			Target: o.def.Target,
			Budget: budgetStatus(o.def, good, bad, burnRate(hg, hb, 1-o.def.Target)),
			Alerts: alertStatuses(o.alerts),
		}
		if o.def.Kind == KindLatency {
			os.ThresholdSeconds = o.threshold
		}
		st.Objectives = append(st.Objectives, os)
	}
	return st
}

// AlertCounts returns lifetime fired/resolved totals for one rule
// (ok=false when the objective/rule pair does not exist). Chaos drills
// gate on these.
func (e *Engine) AlertCounts(objective, rule string) (fired, resolved uint64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.objs {
		if o.def.Name != objective {
			continue
		}
		for i := range o.alerts {
			if o.alerts[i].rule.Name == rule {
				return o.alerts[i].fired, o.alerts[i].resolved, true
			}
		}
	}
	return 0, 0, false
}

// --- fleet aggregation --------------------------------------------------------

// aggObj is one fleet-level objective: counts are summed across member
// engines at evaluation time, alert state lives here.
type aggObj struct {
	def     Objective
	members func() []*Engine
	alerts  []alertState
}

func (o *aggObj) windowCounts(now time.Time, span time.Duration) (good, bad uint64) {
	for _, e := range o.members() {
		g, b := e.WindowCounts(o.def.Name, span)
		good += g
		bad += b
	}
	return good, bad
}

// Aggregator layers fleet-level objectives over a dynamic set of member
// engines: the fleet meets an objective when the pooled counts do, even
// while one replica burns — both views stay queryable.
type Aggregator struct {
	mu      sync.Mutex
	clock   Clock
	members func() []*Engine
	objs    []*aggObj
	trans   transLog
}

// NewAggregator builds a fleet aggregator over the given objectives and a
// callback returning the current member engines (healthy replicas).
func NewAggregator(clock Clock, objectives []Objective, members func() []*Engine) *Aggregator {
	if len(objectives) == 0 {
		objectives = DefaultObjectives()
	}
	if err := Validate(objectives); err != nil {
		panic(err)
	}
	a := &Aggregator{clock: clock, members: members}
	for _, def := range objectives {
		a.objs = append(a.objs, &aggObj{def: def, members: members, alerts: newAlerts(def)})
	}
	return a
}

// Evaluate advances the fleet-level alert state machines to now.
func (a *Aggregator) Evaluate() {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock.Now()
	for _, o := range a.objs {
		evalRules(now, o.def, o.alerts, o, &a.trans)
	}
}

// Status evaluates and returns the fleet-level snapshot (same shape as a
// single engine's).
func (a *Aggregator) Status() Status {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock.Now()
	for _, o := range a.objs {
		evalRules(now, o.def, o.alerts, o, &a.trans)
	}
	st := Status{Now: now, Transitions: append([]Transition(nil), a.trans.entries...)}
	for _, o := range a.objs {
		var good, bad uint64
		for _, e := range o.members() {
			g, b := e.BudgetCounts(o.def.Name)
			good += g
			bad += b
		}
		hg, hb := o.windowCounts(now, time.Hour)
		os := ObjectiveStatus{
			Name:   o.def.Name,
			Kind:   string(o.def.Kind),
			Target: o.def.Target,
			Budget: budgetStatus(o.def, good, bad, burnRate(hg, hb, 1-o.def.Target)),
			Alerts: alertStatuses(o.alerts),
		}
		if o.def.Kind == KindLatency {
			os.ThresholdSeconds = o.def.Threshold.Seconds()
		}
		st.Objectives = append(st.Objectives, os)
	}
	return st
}

// AlertCounts returns fleet-level lifetime fired/resolved totals for one
// rule.
func (a *Aggregator) AlertCounts(objective, rule string) (fired, resolved uint64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, o := range a.objs {
		if o.def.Name != objective {
			continue
		}
		for i := range o.alerts {
			if o.alerts[i].rule.Name == rule {
				return o.alerts[i].fired, o.alerts[i].resolved, true
			}
		}
	}
	return 0, 0, false
}
