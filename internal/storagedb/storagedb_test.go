package storagedb

import (
	"testing"
)

func TestProvisionAndQuery(t *testing.T) {
	db := New()
	db.ProvisionUser("alice")
	db.ProvisionGroup("lab-a", 5<<40)
	db.ProvisionUser("bob")
	db.ProvisionGroup("lab-b", 1<<40)

	dirs := db.DirectoriesFor("alice", []string{"lab-a"})
	if len(dirs) != 3 {
		t.Fatalf("dirs = %d, want 3 (home, scratch, depot)", len(dirs))
	}
	if dirs[0].Kind != KindHome || dirs[0].Path != "/home/alice" {
		t.Fatalf("dirs[0] = %+v", dirs[0])
	}
	if dirs[1].Kind != KindScratch {
		t.Fatalf("dirs[1] = %+v", dirs[1])
	}
	if dirs[2].Kind != KindDepot || dirs[2].Owner != "lab-a" {
		t.Fatalf("dirs[2] = %+v", dirs[2])
	}
}

func TestPrivacyBoundary(t *testing.T) {
	db := New()
	db.ProvisionUser("alice")
	db.ProvisionUser("bob")
	db.ProvisionGroup("lab-b", 1<<40)

	dirs := db.DirectoriesFor("alice", nil)
	for _, d := range dirs {
		if d.Owner != "alice" {
			t.Fatalf("alice sees %s owned by %s", d.Path, d.Owner)
		}
	}
	if len(dirs) != 2 {
		t.Fatalf("alice dirs = %d, want 2", len(dirs))
	}
}

func TestSetUsageAndPercents(t *testing.T) {
	db := New()
	db.ProvisionUser("alice")
	if err := db.SetUsage("/home/alice", 20<<30, 250_000); err != nil {
		t.Fatal(err)
	}
	d, ok := db.Directory("/home/alice")
	if !ok {
		t.Fatal("directory missing")
	}
	if got := d.UsagePercent(); got != 80 {
		t.Fatalf("usage%% = %v, want 80", got)
	}
	if got := d.FilePercent(); got != 50 {
		t.Fatalf("file%% = %v, want 50", got)
	}
	if err := db.SetUsage("/nope", 1, 1); err == nil {
		t.Fatal("expected error for unknown path")
	}
}

func TestUnlimitedQuota(t *testing.T) {
	d := Directory{UsedBytes: 100, QuotaBytes: 0, FileCount: 10, FileLimit: 0}
	if d.UsagePercent() != 0 || d.FilePercent() != 0 {
		t.Fatal("unlimited quota should report 0%")
	}
}

func TestQueriesCounter(t *testing.T) {
	db := New()
	db.ProvisionUser("alice")
	db.DirectoriesFor("alice", nil)
	db.DirectoriesFor("alice", nil)
	if db.Queries() != 2 {
		t.Fatalf("queries = %d, want 2", db.Queries())
	}
}

func TestDirectoryReturnsCopy(t *testing.T) {
	db := New()
	db.ProvisionUser("alice")
	d, _ := db.Directory("/home/alice")
	d.UsedBytes = 999
	d2, _ := db.Directory("/home/alice")
	if d2.UsedBytes == 999 {
		t.Fatal("Directory exposed internal state")
	}
}
