// Package storagedb simulates the ZFS/GPFS storage quota database behind
// the dashboard's Storage widget (§3.5, Table 1). The real deployment polls
// filesystem quota databases for each user's home, scratch, and group depot
// directories; this package keeps the same shape: per-directory usage, file
// counts, and quota limits, queryable by user with group expansion.
package storagedb

import (
	"fmt"
	"sort"
	"sync"
)

// FilesystemKind distinguishes the two storage backends the paper names.
type FilesystemKind string

// Filesystem kinds.
const (
	ZFS  FilesystemKind = "zfs"
	GPFS FilesystemKind = "gpfs"
)

// DirectoryKind classifies a directory by its role.
type DirectoryKind string

// Directory kinds, matching the widget's sections: every user has a home
// and a scratch directory, plus depot space per group/allocation.
const (
	KindHome    DirectoryKind = "home"
	KindScratch DirectoryKind = "scratch"
	KindDepot   DirectoryKind = "depot"
)

// Directory is one quota-tracked directory.
type Directory struct {
	Path       string
	Filesystem FilesystemKind
	Kind       DirectoryKind
	// Owner is a username for home/scratch, a group/account name for depot.
	Owner      string
	UsedBytes  int64
	QuotaBytes int64
	FileCount  int64
	FileLimit  int64
}

// UsagePercent returns used space as a percentage of quota (0 when
// unlimited).
func (d *Directory) UsagePercent() float64 {
	if d.QuotaBytes <= 0 {
		return 0
	}
	return 100 * float64(d.UsedBytes) / float64(d.QuotaBytes)
}

// FilePercent returns the file count as a percentage of the file limit.
func (d *Directory) FilePercent() float64 {
	if d.FileLimit <= 0 {
		return 0
	}
	return 100 * float64(d.FileCount) / float64(d.FileLimit)
}

// Database is a thread-safe directory store. Queries count lookups so
// experiments can verify the storage cache shields it.
type Database struct {
	mu      sync.RWMutex
	dirs    map[string]*Directory // keyed by path
	queries int64
}

// New returns an empty storage database.
func New() *Database {
	return &Database{dirs: make(map[string]*Directory)}
}

// AddDirectory registers (or replaces) a directory record.
func (db *Database) AddDirectory(d Directory) {
	db.mu.Lock()
	defer db.mu.Unlock()
	cp := d
	db.dirs[d.Path] = &cp
}

// SetUsage updates usage counters for a path.
func (db *Database) SetUsage(path string, usedBytes, fileCount int64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	d, ok := db.dirs[path]
	if !ok {
		return fmt.Errorf("storagedb: unknown directory %q", path)
	}
	d.UsedBytes = usedBytes
	d.FileCount = fileCount
	return nil
}

// Directory returns a copy of the record for path.
func (db *Database) Directory(path string) (Directory, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	d, ok := db.dirs[path]
	if !ok {
		return Directory{}, false
	}
	return *d, true
}

// DirectoriesFor returns the directories visible to a user: their own home
// and scratch plus the depot directories of the given groups, sorted with
// home first, scratch second, then depots by path. This is the privacy
// boundary the paper describes — users only see their own disks (§2.4).
func (db *Database) DirectoriesFor(user string, groups []string) []Directory {
	db.mu.Lock()
	db.queries++
	db.mu.Unlock()

	groupSet := make(map[string]bool, len(groups))
	for _, g := range groups {
		groupSet[g] = true
	}
	db.mu.RLock()
	var out []Directory
	for _, d := range db.dirs {
		switch d.Kind {
		case KindHome, KindScratch:
			if d.Owner == user {
				out = append(out, *d)
			}
		case KindDepot:
			if groupSet[d.Owner] {
				out = append(out, *d)
			}
		}
	}
	db.mu.RUnlock()

	rank := func(k DirectoryKind) int {
		switch k {
		case KindHome:
			return 0
		case KindScratch:
			return 1
		default:
			return 2
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if rank(out[i].Kind) != rank(out[j].Kind) {
			return rank(out[i].Kind) < rank(out[j].Kind)
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// Queries returns how many per-user lookups the database has served.
func (db *Database) Queries() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.queries
}

// Len returns the number of registered directories.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.dirs)
}

// ProvisionUser creates the standard home (ZFS, 25 GiB) and scratch (GPFS,
// 100 TiB, 2M files) directories for a user, matching typical RCAC layouts.
func (db *Database) ProvisionUser(user string) {
	db.AddDirectory(Directory{
		Path: "/home/" + user, Filesystem: ZFS, Kind: KindHome, Owner: user,
		QuotaBytes: 25 << 30, FileLimit: 500_000,
	})
	db.AddDirectory(Directory{
		Path: "/scratch/" + user, Filesystem: GPFS, Kind: KindScratch, Owner: user,
		QuotaBytes: 100 << 40, FileLimit: 2_000_000,
	})
}

// ProvisionGroup creates the depot directory for a group/allocation.
func (db *Database) ProvisionGroup(group string, quotaBytes int64) {
	db.AddDirectory(Directory{
		Path: "/depot/" + group, Filesystem: GPFS, Kind: KindDepot, Owner: group,
		QuotaBytes: quotaBytes, FileLimit: 10_000_000,
	})
}
