package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock whose Sleep advances it, so backoff
// and breaker windows consume no wall time in these tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 7, 1, 8, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func (c *fakeClock) Sleep(d time.Duration) { c.Advance(d) }

var errBoom = errors.New("upstream boom")

// failNTimes returns an op that fails its first n calls and then succeeds.
func failNTimes(n int, calls *int) func(context.Context) (any, error) {
	return func(context.Context) (any, error) {
		*calls++
		if *calls <= n {
			return nil, errBoom
		}
		return "ok", nil
	}
}

func testBreaker(clock *fakeClock, p Policy, onChange func(StateChange)) *Breaker {
	return NewBreaker("test", p, clock, clock.Sleep, 1, onChange)
}

func TestRetryAbsorbsTransientFailure(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock, Policy{MaxAttempts: 3, Timeout: -1}, nil)
	var calls int
	v, err := b.Do(context.Background(), failNTimes(2, &calls))
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if v != "ok" || calls != 3 {
		t.Fatalf("got %v after %d calls, want ok after 3", v, calls)
	}
	st := b.Snapshot()
	if st.Attempts != 3 || st.Retries != 2 || st.Successes != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.State != Closed {
		t.Fatalf("state = %v, want closed", st.State)
	}
}

func TestExhaustedRetriesReturnUpstreamError(t *testing.T) {
	clock := newFakeClock()
	b := testBreaker(clock, Policy{MaxAttempts: 2, Timeout: -1}, nil)
	_, err := b.Do(context.Background(), func(context.Context) (any, error) {
		return nil, errBoom
	})
	var ue *UpstreamError
	if !errors.As(err, &ue) {
		t.Fatalf("err = %v, want *UpstreamError", err)
	}
	if !errors.Is(err, errBoom) {
		t.Fatalf("UpstreamError does not unwrap to the attempt error: %v", err)
	}
	if ue.Source != "test" {
		t.Fatalf("source = %q", ue.Source)
	}
}

func TestBreakerOpensAfterThresholdAndShortCircuits(t *testing.T) {
	clock := newFakeClock()
	var changes []StateChange
	p := Policy{MaxAttempts: 1, FailureThreshold: 3, OpenFor: 30 * time.Second, Timeout: -1}
	b := testBreaker(clock, p, func(c StateChange) { changes = append(changes, c) })

	fail := func(context.Context) (any, error) { return nil, errBoom }
	for i := 0; i < 3; i++ {
		if _, err := b.Do(context.Background(), fail); err == nil {
			t.Fatal("expected failure")
		}
	}
	if b.State() != Open {
		t.Fatalf("state after %d failures = %v, want open", 3, b.State())
	}
	if len(changes) != 1 || changes[0].From != Closed || changes[0].To != Open {
		t.Fatalf("changes = %+v", changes)
	}

	// While open, calls short-circuit without touching the upstream.
	var touched bool
	_, err := b.Do(context.Background(), func(context.Context) (any, error) {
		touched = true
		return "ok", nil
	})
	var oe *OpenError
	if !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OpenError", err)
	}
	if touched {
		t.Fatal("open breaker let a call through")
	}
	if oe.RetryAfter <= 0 || oe.RetryAfter > 30*time.Second {
		t.Fatalf("RetryAfter = %v", oe.RetryAfter)
	}
	if !oe.BreakerOpen() {
		t.Fatal("OpenError must carry the BreakerOpen marker")
	}
	if st := b.Snapshot(); st.ShortCircuits != 1 || st.Opens != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHalfOpenProbeSuccessCloses(t *testing.T) {
	clock := newFakeClock()
	var changes []StateChange
	p := Policy{MaxAttempts: 1, FailureThreshold: 1, OpenFor: 10 * time.Second, Timeout: -1}
	b := testBreaker(clock, p, func(c StateChange) { changes = append(changes, c) })

	if _, err := b.Do(context.Background(), func(context.Context) (any, error) { return nil, errBoom }); err == nil {
		t.Fatal("expected failure")
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}

	clock.Advance(11 * time.Second)
	v, err := b.Do(context.Background(), func(context.Context) (any, error) { return "fresh", nil })
	if err != nil || v != "fresh" {
		t.Fatalf("probe: %v %v", v, err)
	}
	if b.State() != Closed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	// closed→open, open→half-open, half-open→closed.
	if len(changes) != 3 || changes[1].To != HalfOpen || changes[2].To != Closed {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestHalfOpenProbeFailureReopens(t *testing.T) {
	clock := newFakeClock()
	p := Policy{MaxAttempts: 1, FailureThreshold: 1, OpenFor: 10 * time.Second, Timeout: -1}
	b := testBreaker(clock, p, nil)
	fail := func(context.Context) (any, error) { return nil, errBoom }

	if _, err := b.Do(context.Background(), fail); err == nil {
		t.Fatal("expected failure")
	}
	clock.Advance(11 * time.Second)
	if _, err := b.Do(context.Background(), fail); err == nil {
		t.Fatal("expected probe failure")
	}
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if st := b.Snapshot(); st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
	// The reopened window starts fresh: a call right away short-circuits.
	var oe *OpenError
	if _, err := b.Do(context.Background(), fail); !errors.As(err, &oe) {
		t.Fatalf("err = %v, want *OpenError", err)
	}
}

func TestClassifierSkipsRetryAndBreaker(t *testing.T) {
	clock := newFakeClock()
	semantic := errors.New("sacct: unknown job 42")
	p := Policy{
		MaxAttempts:      3,
		FailureThreshold: 1,
		Timeout:          -1,
		Classify:         func(err error) bool { return err != semantic },
	}
	b := testBreaker(clock, p, nil)
	var calls int
	_, err := b.Do(context.Background(), func(context.Context) (any, error) {
		calls++
		return nil, semantic
	})
	if err != semantic {
		t.Fatalf("err = %v, want the semantic error unchanged", err)
	}
	if calls != 1 {
		t.Fatalf("semantic error retried: %d calls", calls)
	}
	if b.State() != Closed {
		t.Fatalf("semantic error moved breaker to %v", b.State())
	}
	var ue *UpstreamError
	if errors.As(err, &ue) {
		t.Fatal("semantic error must not be wrapped as UpstreamError")
	}
}

func TestBackoffConsumesSimulatedTime(t *testing.T) {
	clock := newFakeClock()
	var slept []time.Duration
	sleep := func(d time.Duration) {
		slept = append(slept, d)
		clock.Advance(d)
	}
	p := Policy{MaxAttempts: 3, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0, Timeout: -1}
	b := NewBreaker("test", p, clock, sleep, 1, nil)
	_, _ = b.Do(context.Background(), func(context.Context) (any, error) { return nil, errBoom })
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (between 3 attempts)", len(slept))
	}
	if slept[0] != 100*time.Millisecond || slept[1] != 200*time.Millisecond {
		t.Fatalf("backoffs = %v, want exponential 100ms, 200ms", slept)
	}
}

func TestJitterSpreadsBackoffDeterministically(t *testing.T) {
	run := func() []time.Duration {
		clock := newFakeClock()
		var slept []time.Duration
		p := Policy{MaxAttempts: 4, Backoff: 100 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0.5, Timeout: -1}
		b := NewBreaker("test", p, clock, func(d time.Duration) { slept = append(slept, d) }, 7, nil)
		_, _ = b.Do(context.Background(), func(context.Context) (any, error) { return nil, errBoom })
		return slept
	}
	first, second := run(), run()
	if len(first) != 3 {
		t.Fatalf("slept %d times, want 3", len(first))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("same seed produced different jitter: %v vs %v", first, second)
		}
		base := 100 * time.Millisecond << i
		if first[i] < base/2 || first[i] > base*3/2 {
			t.Fatalf("backoff %v outside ±50%% of %v", first[i], base)
		}
	}
}

func TestAttemptTimeout(t *testing.T) {
	clock := newFakeClock()
	p := Policy{MaxAttempts: 1, Timeout: 20 * time.Millisecond}
	b := testBreaker(clock, p, nil)
	release := make(chan struct{})
	defer close(release)
	_, err := b.Do(context.Background(), func(ctx context.Context) (any, error) {
		<-release // hang past the deadline
		return "late", nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestCanceledContextDoesNotCountAsFailure(t *testing.T) {
	clock := newFakeClock()
	p := Policy{MaxAttempts: 2, FailureThreshold: 1, Timeout: -1}
	b := testBreaker(clock, p, nil)
	ctx, cancel := context.WithCancel(context.Background())
	_, err := b.Do(ctx, func(context.Context) (any, error) {
		cancel()
		return nil, errBoom
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if b.State() != Closed {
		t.Fatalf("client cancellation moved breaker to %v", b.State())
	}
	if st := b.Snapshot(); st.Failures != 0 {
		t.Fatalf("client cancellation counted as failure: %+v", st)
	}
}

func TestSetRoutesAndSnapshots(t *testing.T) {
	clock := newFakeClock()
	var changes []StateChange
	var mu sync.Mutex
	set := NewSet(Options{
		Clock: clock,
		Sleep: clock.Sleep,
		Seed:  1,
		OnStateChange: func(c StateChange) {
			mu.Lock()
			changes = append(changes, c)
			mu.Unlock()
		},
	})
	set.Register("slurmctld", Policy{MaxAttempts: 1, FailureThreshold: 1, Timeout: -1})
	set.Register("slurmdbd", Policy{MaxAttempts: 1, FailureThreshold: 5, Timeout: -1})

	fail := func(context.Context) (any, error) { return nil, errBoom }
	ok := func(context.Context) (any, error) { return "ok", nil }

	if _, err := set.Do("slurmctld", context.Background(), fail); err == nil {
		t.Fatal("expected failure")
	}
	if _, err := set.Do("slurmdbd", context.Background(), ok); err != nil {
		t.Fatalf("dbd: %v", err)
	}
	// Unknown source lazily registers with defaults.
	if _, err := set.Do("news", context.Background(), ok); err != nil {
		t.Fatalf("news: %v", err)
	}

	snap := set.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d entries, want 3", len(snap))
	}
	// Sorted by source name.
	if snap[0].Source != "news" || snap[1].Source != "slurmctld" || snap[2].Source != "slurmdbd" {
		t.Fatalf("snapshot order = %v %v %v", snap[0].Source, snap[1].Source, snap[2].Source)
	}
	if snap[1].State != Open {
		t.Fatalf("slurmctld state = %v, want open", snap[1].State)
	}
	if snap[2].Successes != 1 {
		t.Fatalf("slurmdbd successes = %d", snap[2].Successes)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(changes) != 1 || changes[0].Source != "slurmctld" {
		t.Fatalf("changes = %+v", changes)
	}
}

func TestConcurrentDoIsRaceFree(t *testing.T) {
	clock := newFakeClock()
	p := Policy{MaxAttempts: 2, FailureThreshold: 3, OpenFor: time.Second, Timeout: -1, Backoff: time.Millisecond, Jitter: 0.5}
	b := testBreaker(clock, p, func(StateChange) {})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				_, _ = b.Do(context.Background(), func(context.Context) (any, error) {
					if (i+n)%3 == 0 {
						return nil, errBoom
					}
					return "ok", nil
				})
			}
		}()
	}
	wg.Wait()
	st := b.Snapshot()
	if st.Attempts == 0 {
		t.Fatal("no attempts recorded")
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		Closed: "closed", HalfOpen: "half-open", Open: "open", State(9): "unknown",
	} {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
}

// TestResultHook asserts the OnResult observer sees one attributed outcome
// per Do call: ok, retried, error, short_circuit, and semantic_error.
func TestResultHook(t *testing.T) {
	clock := newFakeClock()
	var mu sync.Mutex
	var results []OpResult
	set := NewSet(Options{
		Clock: clock,
		Sleep: clock.Sleep,
		OnResult: func(_ context.Context, r OpResult) {
			mu.Lock()
			results = append(results, r)
			mu.Unlock()
		},
	})
	semantic := errors.New("unknown job")
	set.Register("src", Policy{
		MaxAttempts: 2, Timeout: -1, FailureThreshold: 1, OpenFor: 10 * time.Second,
		Classify: func(err error) bool { return err != semantic },
	})
	ctx := context.Background()

	// ok on first attempt.
	if _, err := set.Do("src", ctx, func(context.Context) (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	// ok after one retry.
	var calls int
	if _, err := set.Do("src", ctx, failNTimes(1, &calls)); err != nil {
		t.Fatal(err)
	}
	// semantic error: healthy contact, no retry.
	if _, err := set.Do("src", ctx, func(context.Context) (any, error) { return nil, semantic }); err != semantic {
		t.Fatalf("err = %v, want semantic", err)
	}
	// exhausted availability failure: opens the breaker (threshold 1).
	if _, err := set.Do("src", ctx, func(context.Context) (any, error) { return nil, errBoom }); err == nil {
		t.Fatal("want error")
	}
	// short-circuited by the open breaker.
	if _, err := set.Do("src", ctx, func(context.Context) (any, error) { return 1, nil }); err == nil {
		t.Fatal("want short-circuit")
	}

	mu.Lock()
	defer mu.Unlock()
	wantOutcomes := []Outcome{OutcomeOK, OutcomeRetried, OutcomeSemantic, OutcomeError, OutcomeShortCircuit}
	if len(results) != len(wantOutcomes) {
		t.Fatalf("got %d results, want %d: %+v", len(results), len(wantOutcomes), results)
	}
	for i, want := range wantOutcomes {
		r := results[i]
		if r.Outcome != want || r.Source != "src" {
			t.Fatalf("result[%d] = %+v, want outcome %s", i, r, want)
		}
	}
	if results[0].Attempts != 1 || results[1].Attempts != 2 {
		t.Fatalf("attempts = %d, %d; want 1, 2", results[0].Attempts, results[1].Attempts)
	}
	if results[4].Attempts != 0 {
		t.Fatalf("short-circuit attempts = %d, want 0", results[4].Attempts)
	}
	if results[3].Err == nil || results[4].Err == nil {
		t.Fatalf("failure results must carry errors: %+v", results[3:])
	}
}
