// Package resilience provides the fault-tolerance policies the dashboard
// backend puts between its cache and every external data source: per-attempt
// timeouts, bounded retries with exponential backoff and jitter, and a
// per-source circuit breaker (closed → open → half-open).
//
// The paper's caching design exists to protect a fragile upstream
// (slurmctld) from dashboard traffic; this package is the other half of that
// argument — when the upstream fails anyway, the dashboard must stop hammering
// it (breaker), absorb transient blips (retry), and give the cache layer a
// typed signal (OpenError, UpstreamError) so widgets can degrade to
// last-known-good data instead of erroring.
//
// All timing except the per-attempt Timeout reads from an injected Clock and
// sleep hook, so breaker transitions and backoff are fully driveable by a
// simulated clock in tests.
package resilience

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"ooddash/internal/trace"
)

// Clock supplies the current time; it matches slurm.Clock so the whole stack
// can share one simulated clock.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

// State is a circuit breaker state.
type State int

// Breaker states, in escalation order.
const (
	// Closed passes calls through, counting consecutive failures.
	Closed State = iota
	// HalfOpen lets a single probe through; its outcome closes or reopens.
	HalfOpen
	// Open short-circuits every call until OpenFor has elapsed.
	Open
)

// String returns the conventional state name.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half-open"
	case Open:
		return "open"
	}
	return "unknown"
}

// Policy configures one source's fault handling. The zero value of any field
// falls back to DefaultPolicy.
type Policy struct {
	// Timeout bounds each attempt. It is enforced with context.WithTimeout,
	// so it is the one wall-clock quantity in the package (a hung upstream
	// hangs in real time, simulated or not). <0 disables the deadline.
	Timeout time.Duration
	// MaxAttempts is the total number of tries per Do call (1 = no retry).
	MaxAttempts int
	// Backoff is the delay before the first retry; it doubles per attempt.
	Backoff time.Duration
	// MaxBackoff caps the doubled delay.
	MaxBackoff time.Duration
	// Jitter spreads each backoff by ±Jitter fraction (0.5 → 50%–150%),
	// drawn from the breaker's seeded RNG so runs are reproducible.
	Jitter float64
	// FailureThreshold is how many consecutive failed Do calls open the
	// breaker.
	FailureThreshold int
	// OpenFor is how long an open breaker short-circuits before allowing a
	// half-open probe.
	OpenFor time.Duration
	// Classify reports whether an error is an availability failure. Only
	// availability failures are retried and counted toward opening the
	// breaker; other errors (unknown job, bad arguments) return immediately
	// and count as successful contact with the upstream. Nil classifies
	// every error as an availability failure.
	Classify func(error) bool
}

// DefaultPolicy returns the policy the dashboard uses for every source
// unless configured otherwise: one retry after 50 ms (±50% jitter), 2 s
// per-attempt deadline, breaker opening after 3 consecutive failures for
// 30 s.
func DefaultPolicy() Policy {
	return Policy{
		Timeout:          2 * time.Second,
		MaxAttempts:      2,
		Backoff:          50 * time.Millisecond,
		MaxBackoff:       time.Second,
		Jitter:           0.5,
		FailureThreshold: 3,
		OpenFor:          30 * time.Second,
	}
}

// withDefaults fills zero-valued fields from DefaultPolicy. Timeout < 0
// means "no deadline" and is preserved.
func (p Policy) withDefaults() Policy {
	def := DefaultPolicy()
	if p.Timeout == 0 {
		p.Timeout = def.Timeout
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = def.Backoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = def.MaxBackoff
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.FailureThreshold <= 0 {
		p.FailureThreshold = def.FailureThreshold
	}
	if p.OpenFor <= 0 {
		p.OpenFor = def.OpenFor
	}
	return p
}

// OpenError is returned when a call is short-circuited by an open (or
// probe-busy half-open) breaker without touching the upstream.
type OpenError struct {
	Source string
	// RetryAfter is how long until the breaker will allow a probe.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: %s circuit open (retry in %v)", e.Source, e.RetryAfter)
}

// BreakerOpen marks the error for layers (the cache's degraded-mode stats)
// that count breaker short-circuits without importing this package.
func (e *OpenError) BreakerOpen() bool { return true }

// UpstreamError wraps an availability failure that exhausted the retry
// policy: the upstream was contacted and could not serve.
type UpstreamError struct {
	Source string
	// RetryAfter suggests when a client should try again (the breaker's
	// remaining open window when the failure tripped it).
	RetryAfter time.Duration
	Err        error
}

// Error implements error.
func (e *UpstreamError) Error() string {
	return fmt.Sprintf("resilience: %s unavailable: %v", e.Source, e.Err)
}

// Unwrap exposes the final attempt's error.
func (e *UpstreamError) Unwrap() error { return e.Err }

// StateChange describes one breaker transition, delivered to the OnChange
// hook (metrics, logs).
type StateChange struct {
	Source string
	From   State
	To     State
	At     time.Time
}

// Outcome classifies how one Do call against a source ended, for the
// observability layer's per-source attribution.
type Outcome string

// Do outcomes.
const (
	// OutcomeOK: first attempt succeeded.
	OutcomeOK Outcome = "ok"
	// OutcomeRetried: succeeded, but only after at least one retry.
	OutcomeRetried Outcome = "retried"
	// OutcomeSemantic: the upstream answered with a non-availability error
	// (unknown job, bad arguments); counts as healthy contact.
	OutcomeSemantic Outcome = "semantic_error"
	// OutcomeError: availability failure that exhausted the retry policy.
	OutcomeError Outcome = "error"
	// OutcomeShortCircuit: rejected by an open breaker, upstream untouched.
	OutcomeShortCircuit Outcome = "short_circuit"
	// OutcomeCanceled: the caller went away mid-call; says nothing about the
	// upstream.
	OutcomeCanceled Outcome = "canceled"
)

// OpResult describes one completed Do call, delivered to the OnResult hook.
// Duration is wall-clock (latency is a real quantity even under a simulated
// policy clock); the caller's context rides along so request-scoped trace
// IDs survive into metrics and logs.
type OpResult struct {
	Source   string
	Duration time.Duration
	// Attempts is the number of upstream calls made (0 for short-circuits).
	Attempts int
	Outcome  Outcome
	// Err is the error returned to the caller, nil on success.
	Err error
}

// Stats is a snapshot of one breaker's counters.
type Stats struct {
	Source              string
	State               State
	ConsecutiveFailures int
	Attempts            int64 // individual upstream calls (includes retries)
	Retries             int64 // attempts beyond the first within one Do
	Successes           int64 // Do calls that reached the upstream and succeeded
	Failures            int64 // Do calls that exhausted the retry policy
	ShortCircuits       int64 // Do calls rejected without touching the upstream
	Opens               int64 // transitions into Open
}

// Breaker executes calls against one data source under a Policy. All methods
// are safe for concurrent use.
type Breaker struct {
	source   string
	policy   Policy
	clock    Clock
	sleep    func(time.Duration)
	onChange func(StateChange)
	onResult func(context.Context, OpResult)

	mu          sync.Mutex
	rng         *rand.Rand
	state       State
	consecutive int
	openedAt    time.Time
	probing     bool
	stats       Stats
}

// NewBreaker builds a standalone breaker; most callers use a Set instead.
// clock nil means wall clock; sleep nil means time.Sleep; seed fixes the
// jitter RNG.
func NewBreaker(source string, p Policy, clock Clock, sleep func(time.Duration), seed int64, onChange func(StateChange)) *Breaker {
	if clock == nil {
		clock = realClock{}
	}
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Breaker{
		source:   source,
		policy:   p.withDefaults(),
		clock:    clock,
		sleep:    sleep,
		onChange: onChange,
		rng:      rand.New(rand.NewSource(seed)),
	}
}

// Source returns the breaker's source name.
func (b *Breaker) Source() string { return b.source }

// SetResultHook installs fn as the per-call outcome observer. It is called
// once after every Do with the call's attribution (outcome, attempts,
// wall-clock duration) and the caller's context. Install hooks during
// setup, before the breaker serves traffic.
func (b *Breaker) SetResultHook(fn func(context.Context, OpResult)) {
	b.mu.Lock()
	b.onResult = fn
	b.mu.Unlock()
}

// observe delivers one OpResult to the hook, outside breaker locks.
func (b *Breaker) observe(ctx context.Context, start time.Time, attempts int, outcome Outcome, err error) {
	b.mu.Lock()
	fn := b.onResult
	b.mu.Unlock()
	if fn == nil {
		return
	}
	fn(ctx, OpResult{
		Source:   b.source,
		Duration: time.Since(start),
		Attempts: attempts,
		Outcome:  outcome,
		Err:      err,
	})
}

// State returns the current breaker state. An expired open window still
// reports Open until the next call transitions it.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// RetryAfter reports how long until an open breaker admits a probe (zero
// when not open).
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != Open {
		return 0
	}
	remaining := b.openedAt.Add(b.policy.OpenFor).Sub(b.clock.Now())
	if remaining < 0 {
		remaining = 0
	}
	return remaining
}

// Snapshot returns a copy of the breaker's counters.
func (b *Breaker) Snapshot() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.Source = b.source
	st.State = b.state
	st.ConsecutiveFailures = b.consecutive
	return st
}

// Do executes op under the policy: admission through the breaker, a deadline
// per attempt, retries with backoff for availability failures. Availability
// failures that exhaust the policy return a *UpstreamError; short-circuits
// return a *OpenError; classified non-availability errors return as-is.
func (b *Breaker) Do(ctx context.Context, op func(context.Context) (any, error)) (any, error) {
	start := time.Now()
	traced := trace.SpanFromContext(ctx) != nil
	if err := b.admit(); err != nil {
		if traced {
			_, sp := trace.StartSpan(ctx, "resilience.short_circuit")
			sp.SetAttr("source", b.source)
			sp.SetAttr("error", err.Error())
			sp.End()
		}
		b.observe(ctx, start, 0, OutcomeShortCircuit, err)
		return nil, err
	}
	p := b.policy
	var lastErr error
	attempts := 0
	for attempt := 1; ; attempt++ {
		b.mu.Lock()
		b.stats.Attempts++
		b.mu.Unlock()
		attempts = attempt
		// Each attempt gets its own span; deeper layers (slurmcli, the
		// daemons) nest under the attempt's context, so a trace attributes
		// work to the retry that did it.
		actx := ctx
		var asp *trace.Span
		if traced {
			actx, asp = trace.StartSpan(ctx, "resilience.attempt")
			asp.SetAttr("source", b.source)
			asp.SetAttrInt("attempt", attempt)
			asp.SetAttr("state", b.State().String())
		}
		v, err := b.runOnce(actx, op)
		if err == nil {
			asp.End()
			b.recordSuccess()
			outcome := OutcomeOK
			if attempt > 1 {
				outcome = OutcomeRetried
			}
			b.observe(ctx, start, attempts, outcome, nil)
			return v, nil
		}
		if asp != nil {
			asp.SetAttr("error", err.Error())
		}
		if p.Classify != nil && !p.Classify(err) {
			// A semantic error from a healthy upstream: the daemon answered,
			// so the contact counts as a success for the breaker.
			if asp != nil {
				asp.SetAttr("class", "semantic")
			}
			asp.End()
			b.recordSuccess()
			b.observe(ctx, start, attempts, OutcomeSemantic, err)
			return nil, err
		}
		asp.End()
		lastErr = err
		if attempt >= p.MaxAttempts || ctx.Err() != nil {
			break
		}
		b.mu.Lock()
		b.stats.Retries++
		b.mu.Unlock()
		if traced {
			_, bsp := trace.StartSpan(ctx, "resilience.backoff")
			bsp.SetAttrInt("after_attempt", attempt)
			b.sleep(b.backoff(attempt))
			bsp.End()
		} else {
			b.sleep(b.backoff(attempt))
		}
	}
	if ctx.Err() != nil && ctx.Err() == context.Canceled {
		// The client went away mid-call; that says nothing about the
		// upstream, so release the probe slot without moving the breaker.
		b.releaseProbe()
		b.observe(ctx, start, attempts, OutcomeCanceled, lastErr)
		return nil, lastErr
	}
	b.recordFailure()
	err := &UpstreamError{Source: b.source, RetryAfter: b.RetryAfter(), Err: lastErr}
	b.observe(ctx, start, attempts, OutcomeError, err)
	return nil, err
}

// admit checks the breaker before an upstream call, transitioning
// Open → HalfOpen when the open window has elapsed.
func (b *Breaker) admit() error {
	b.mu.Lock()
	now := b.clock.Now()
	var change *StateChange
	switch b.state {
	case Open:
		remaining := b.openedAt.Add(b.policy.OpenFor).Sub(now)
		if remaining > 0 {
			b.stats.ShortCircuits++
			b.mu.Unlock()
			return &OpenError{Source: b.source, RetryAfter: remaining}
		}
		change = b.transition(HalfOpen, now)
		b.probing = true
	case HalfOpen:
		if b.probing {
			b.stats.ShortCircuits++
			b.mu.Unlock()
			return &OpenError{Source: b.source, RetryAfter: b.policy.OpenFor}
		}
		b.probing = true
	}
	b.mu.Unlock()
	b.notify(change)
	return nil
}

// runOnce performs one attempt under the per-attempt deadline. The op runs
// in its own goroutine so a hung upstream cannot wedge the caller; the
// goroutine drains into a buffered channel when the deadline wins.
func (b *Breaker) runOnce(ctx context.Context, op func(context.Context) (any, error)) (any, error) {
	if b.policy.Timeout < 0 {
		return op(ctx)
	}
	tctx, cancel := context.WithTimeout(ctx, b.policy.Timeout)
	defer cancel()
	type result struct {
		v   any
		err error
	}
	ch := make(chan result, 1)
	go func() {
		v, err := op(tctx)
		ch <- result{v, err}
	}()
	select {
	case r := <-ch:
		return r.v, r.err
	case <-tctx.Done():
		return nil, fmt.Errorf("resilience: %s: attempt: %w", b.source, tctx.Err())
	}
}

func (b *Breaker) recordSuccess() {
	b.mu.Lock()
	b.stats.Successes++
	b.consecutive = 0
	b.probing = false
	var change *StateChange
	if b.state != Closed {
		change = b.transition(Closed, b.clock.Now())
	}
	b.mu.Unlock()
	b.notify(change)
}

func (b *Breaker) recordFailure() {
	b.mu.Lock()
	b.stats.Failures++
	b.consecutive++
	b.probing = false
	now := b.clock.Now()
	var change *StateChange
	switch {
	case b.state == HalfOpen:
		// The probe failed: reopen for a full window.
		b.openedAt = now
		b.stats.Opens++
		change = b.transition(Open, now)
	case b.state == Closed && b.consecutive >= b.policy.FailureThreshold:
		b.openedAt = now
		b.stats.Opens++
		change = b.transition(Open, now)
	}
	b.mu.Unlock()
	b.notify(change)
}

func (b *Breaker) releaseProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// transition flips the state and returns the change to notify with after the
// lock is dropped. Caller holds b.mu.
func (b *Breaker) transition(to State, at time.Time) *StateChange {
	from := b.state
	b.state = to
	return &StateChange{Source: b.source, From: from, To: to, At: at}
}

func (b *Breaker) notify(change *StateChange) {
	if change != nil && b.onChange != nil {
		b.onChange(*change)
	}
}

// backoff computes the jittered delay before the retry following attempt.
func (b *Breaker) backoff(attempt int) time.Duration {
	p := b.policy
	d := p.Backoff << (attempt - 1)
	if d > p.MaxBackoff || d <= 0 { // <= 0 guards shift overflow
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		b.mu.Lock()
		f := 1 + p.Jitter*(2*b.rng.Float64()-1)
		b.mu.Unlock()
		d = time.Duration(float64(d) * f)
	}
	return d
}

// Options configure a Set.
type Options struct {
	// Clock drives breaker windows; nil means wall clock.
	Clock Clock
	// Sleep pauses between retries; nil means time.Sleep. Pass a simulated
	// clock's Sleep to keep tests off the wall clock.
	Sleep func(time.Duration)
	// Seed fixes every breaker's jitter RNG (offset per breaker).
	Seed int64
	// OnStateChange observes every breaker transition. It is called outside
	// breaker locks but must not invoke Do on the same breaker.
	OnStateChange func(StateChange)
	// OnResult observes the outcome of every Do call (latency histograms,
	// outcome counters). Called once per Do, outside breaker locks, with the
	// caller's context so request-scoped trace IDs stay attached.
	OnResult func(context.Context, OpResult)
}

// Set is a registry of per-source breakers sharing one clock, sleep hook,
// and state-change observer.
type Set struct {
	opts Options

	mu       sync.Mutex
	breakers map[string]*Breaker
	order    []string
}

// NewSet returns an empty registry.
func NewSet(opts Options) *Set {
	return &Set{opts: opts, breakers: make(map[string]*Breaker)}
}

// Register creates (or replaces) the breaker for source and returns it.
func (s *Set) Register(source string, p Policy) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.breakers[source]; !ok {
		s.order = append(s.order, source)
		sort.Strings(s.order)
	}
	seed := s.opts.Seed + int64(len(s.breakers))
	b := NewBreaker(source, p, s.opts.Clock, s.opts.Sleep, seed, s.opts.OnStateChange)
	b.SetResultHook(s.opts.OnResult)
	s.breakers[source] = b
	return b
}

// Breaker returns the breaker for source, or nil when unregistered.
func (s *Set) Breaker(source string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.breakers[source]
}

// Do executes op through the source's breaker, registering one with
// DefaultPolicy on first use.
func (s *Set) Do(source string, ctx context.Context, op func(context.Context) (any, error)) (any, error) {
	s.mu.Lock()
	b := s.breakers[source]
	s.mu.Unlock()
	if b == nil {
		b = s.Register(source, DefaultPolicy())
	}
	return b.Do(ctx, op)
}

// Snapshot returns every breaker's counters, sorted by source name.
func (s *Set) Snapshot() []Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Stats, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.breakers[name].Snapshot())
	}
	return out
}
