// Package etag implements strong entity tags and If-None-Match matching
// shared by the dashboard's widget routes (internal/core) and the Slurm
// REST surface (internal/slurmrest). Tags are FNV-64a content hashes of
// the exact response body, so equal bytes always revalidate and any byte
// change invalidates.
package etag

import "strings"

const hexDigits = "0123456789abcdef"

// For returns the strong entity tag for a response body: an FNV-64a
// content hash as 16 zero-padded hex digits in quotes. The hash loop is
// inlined and the tag built directly into a fixed buffer — a
// fmt.Sprintf("%q", fmt.Sprintf("%016x", ...)) pair allocates three
// strings per tag on a path that runs for every fresh 200; this
// allocates one.
func For(body []byte) string {
	h := uint64(14695981039346656037)
	for _, b := range body {
		h = (h ^ uint64(b)) * 1099511628211
	}
	var buf [18]byte
	buf[0], buf[17] = '"', '"'
	for i := 16; i >= 1; i-- {
		buf[i] = hexDigits[h&0xf]
		h >>= 4
	}
	return string(buf[:])
}

// Match implements If-None-Match: a comma-separated candidate list or
// "*", with weak-comparison semantics (a W/ prefix is ignored, per RFC
// 9110 §13.1.2 — If-None-Match uses weak comparison).
func Match(header, tag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	// Walk the candidate list in place; Split would allocate the slice on
	// every revalidation (the single-tag common case included).
	for len(header) > 0 {
		cand := header
		if i := strings.IndexByte(header, ','); i >= 0 {
			cand, header = header[:i], header[i+1:]
		} else {
			header = ""
		}
		cand = strings.TrimPrefix(strings.TrimSpace(cand), "W/")
		if cand == tag {
			return true
		}
	}
	return false
}
