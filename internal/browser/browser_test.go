package browser

import (
	"net/http/httptest"
	"testing"
	"time"

	"ooddash/internal/clientcache"
	"ooddash/internal/workload"
)

// stack boots a small workload environment plus dashboard and news servers.
func stack(t *testing.T) (*workload.Env, string) {
	t.Helper()
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	t.Cleanup(newsSrv.Close)
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	webSrv := httptest.NewServer(server)
	t.Cleanup(webSrv.Close)
	return env, webSrv.URL
}

func TestColdLoadGoesToNetwork(t *testing.T) {
	env, url := stack(t)
	b := New(env.UserNames[0], url, nil, env.Clock)
	load := b.LoadHomepage()
	if !load.FullyPainted() {
		t.Fatalf("load failed: %+v", load.Widgets)
	}
	if load.NetworkFetches != 5 || load.InstantPaints != 0 {
		t.Fatalf("cold load: network=%d instant=%d", load.NetworkFetches, load.InstantPaints)
	}
	if b.CacheLen() != 5 {
		t.Fatalf("client cache entries = %d", b.CacheLen())
	}
}

func TestWarmLoadIsInstant(t *testing.T) {
	env, url := stack(t)
	b := New(env.UserNames[0], url, nil, env.Clock)
	b.LoadHomepage()
	// Second load within every TTL: all five widgets paint from cache with
	// zero network traffic.
	load := b.LoadHomepage()
	if load.InstantPaints != 5 || load.NetworkFetches != 0 {
		t.Fatalf("warm load: instant=%d network=%d", load.InstantPaints, load.NetworkFetches)
	}
	if load.NetworkTime != 0 {
		t.Fatalf("warm load network time = %v", load.NetworkTime)
	}
}

func TestStaleWidgetsRefreshSelectively(t *testing.T) {
	env, url := stack(t)
	b := New(env.UserNames[0], url, nil, env.Clock)
	b.LoadHomepage()
	// Advance past the 30s recent-jobs TTL and the 60s sinfo/accounts TTLs,
	// but stay inside announcements (30m) and storage (1h).
	env.Clock.Advance(2 * time.Minute)
	env.Cluster.Ctl.Tick()

	load := b.LoadHomepage()
	bySource := make(map[string]clientcache.FetchSource)
	for _, w := range load.Widgets {
		bySource[w.Name] = w.Source
	}
	if bySource["announcements"] != clientcache.SourceFresh {
		t.Fatalf("announcements = %s", bySource["announcements"])
	}
	if bySource["storage"] != clientcache.SourceFresh {
		t.Fatalf("storage = %s", bySource["storage"])
	}
	// Expired widgets refresh over the network; an unchanged payload comes
	// back 304 (revalidated), a changed one as cache-stale. Both paint
	// instantly from the cached copy.
	for _, name := range []string{"recent_jobs", "system_status", "accounts"} {
		if s := bySource[name]; s != clientcache.SourceStale && s != clientcache.SourceRevalidated {
			t.Fatalf("%s = %s, want cache-stale or revalidated", name, s)
		}
	}
	if load.InstantPaints != 5 || load.NetworkFetches != 3 {
		t.Fatalf("instant=%d network=%d", load.InstantPaints, load.NetworkFetches)
	}
}

func TestBrowsersAreIsolatedProfiles(t *testing.T) {
	env, url := stack(t)
	b1 := New(env.UserNames[0], url, nil, env.Clock)
	b2 := New(env.UserNames[1], url, nil, env.Clock)
	b1.LoadHomepage()
	if b2.CacheLen() != 0 {
		t.Fatal("second browser shares the first's cache")
	}
	load := b2.LoadHomepage()
	if load.NetworkFetches != 5 {
		t.Fatalf("b2 cold load network = %d", load.NetworkFetches)
	}
}

func TestClearCache(t *testing.T) {
	env, url := stack(t)
	b := New(env.UserNames[0], url, nil, env.Clock)
	b.LoadHomepage()
	b.ClearCache()
	if b.CacheLen() != 0 {
		t.Fatal("cache not cleared")
	}
	load := b.LoadHomepage()
	if load.NetworkFetches != 5 {
		t.Fatalf("post-clear load network = %d", load.NetworkFetches)
	}
}

func TestFailedBackendDegradesToStale(t *testing.T) {
	env, url := stack(t)
	b := New(env.UserNames[0], url, nil, env.Clock)
	if load := b.LoadHomepage(); !load.FullyPainted() {
		t.Fatalf("initial load failed: %+v", load.Widgets)
	}
	// Point the browser at a dead server; everything should still paint
	// from the client cache once TTLs expire (stale fallback).
	env.Clock.Advance(2 * time.Hour)
	b.BaseURL = "http://127.0.0.1:1" // connection refused
	load := b.LoadHomepage()
	if !load.FullyPainted() {
		t.Fatalf("stale fallback failed: %+v", load.Widgets)
	}
	for _, w := range load.Widgets {
		if w.Source != clientcache.SourceStale {
			t.Fatalf("widget %s source = %s", w.Name, w.Source)
		}
		// Regression: a stale fallback is degraded as the client observes
		// it, even though no server header ever said so.
		if !w.StaleFallback || !w.Degraded {
			t.Fatalf("widget %s: stale fallback not reported degraded: %+v", w.Name, w)
		}
	}
	if load.DegradedPaints != 5 {
		t.Fatalf("DegradedPaints = %d, want 5 (client-observed)", load.DegradedPaints)
	}
}

func TestUnchangedPayloadRevalidatesWith304(t *testing.T) {
	env, url := stack(t)
	b := New(env.UserNames[0], url, nil, env.Clock)
	if load := b.LoadHomepage(); load.NotModified != 0 {
		t.Fatalf("cold load reported %d revalidations", load.NotModified)
	}
	// Expire everything client-side without changing the payloads (no jobs
	// run, storage is static): the next load must revalidate each widget
	// with a 304 and paint instantly. Announcements are excluded — their
	// active windows shift with the clock, legitimately changing the body.
	env.Clock.Advance(2 * time.Hour)
	stable := []WidgetRequest{
		{Name: "recent_jobs", Path: "/api/recent_jobs", TTL: 30 * time.Second},
		{Name: "system_status", Path: "/api/system_status", TTL: 60 * time.Second},
		{Name: "accounts", Path: "/api/accounts", TTL: 60 * time.Second},
		{Name: "storage", Path: "/api/storage", TTL: time.Hour},
	}
	load := b.LoadPage(stable)
	if !load.FullyPainted() {
		t.Fatalf("revalidation load failed: %+v", load.Widgets)
	}
	for _, w := range load.Widgets {
		if w.Source != clientcache.SourceRevalidated {
			t.Fatalf("widget %s = %s, want revalidated", w.Name, w.Source)
		}
		if w.Degraded {
			t.Fatalf("widget %s wrongly degraded", w.Name)
		}
	}
	if load.NotModified != 4 || load.InstantPaints != 4 {
		t.Fatalf("notModified=%d instant=%d, want 4/4", load.NotModified, load.InstantPaints)
	}
	if load.DegradedPaints != 0 {
		t.Fatalf("DegradedPaints = %d", load.DegradedPaints)
	}
}
