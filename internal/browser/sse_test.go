package browser

import (
	"net/http/httptest"
	"testing"
	"time"

	"ooddash/internal/clientcache"
	"ooddash/internal/core"
	"ooddash/internal/push"
	"ooddash/internal/slurm"
	"ooddash/internal/workload"
)

// sseStack is stack plus a handle on the core server, so tests can drive the
// push scheduler and shut the stream side down.
func sseStack(t *testing.T) (*workload.Env, *core.Server, string) {
	t.Helper()
	env, err := workload.Build(workload.SmallSpec())
	if err != nil {
		t.Fatal(err)
	}
	newsSrv := httptest.NewServer(env.Feed)
	t.Cleanup(newsSrv.Close)
	server, err := env.NewServer(newsSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(server.Close)
	webSrv := httptest.NewServer(server)
	t.Cleanup(webSrv.Close)
	return env, server, webSrv.URL
}

func TestEventStreamKeepsCacheHot(t *testing.T) {
	env, server, url := sseStack(t)
	user := env.UserNames[0]
	b := New(user, url, nil, env.Clock)

	events := make(chan push.Event, 64)
	st, err := b.OpenEventStream(HomepageWidgets(), func(ev push.Event) { events <- ev })
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// The subscribe-time replay primes all five widgets without a page load.
	seen := make(map[string]bool)
	deadline := time.After(5 * time.Second)
	for len(seen) < 5 {
		select {
		case ev := <-events:
			seen[ev.Name] = true
		case <-deadline:
			t.Fatalf("initial replay incomplete, saw %v", seen)
		}
	}
	load := b.LoadHomepage()
	if load.InstantPaints != 5 || load.NetworkFetches != 0 {
		t.Fatalf("SSE-primed load: instant=%d network=%d, want 5/0", load.InstantPaints, load.NetworkFetches)
	}

	// New work flows to the cache without the client polling: submit a job,
	// run a TTL cycle, and wait for the pushed recent_jobs snapshot.
	before := st.Stats().LastID
	if _, err := env.Cluster.Ctl.Submit(slurm.SubmitRequest{
		User: user, Account: "grp01", Partition: "cpu", QOS: "normal",
		TimeLimit: time.Hour, ReqTRES: slurm.TRES{CPUs: 2, MemMB: 1024},
	}); err != nil {
		t.Fatal(err)
	}
	env.Clock.Advance(80 * time.Second)
	env.Cluster.Ctl.Tick()
	if n := server.TickPush(); n == 0 {
		t.Fatal("TickPush refreshed nothing")
	}
	deadline = time.After(5 * time.Second)
	for {
		var ev push.Event
		select {
		case ev = <-events:
		case <-deadline:
			t.Fatal("no recent_jobs push after TTL cycle")
		}
		if ev.Name == "recent_jobs" && ev.ID > before {
			break
		}
	}
	// The pushed snapshot re-stamped the cache at the advanced clock: the
	// widget paints fresh with zero network even though its TTL (30s) expired
	// since the page last polled it.
	jobs := b.LoadPage([]WidgetRequest{{Name: "recent_jobs", Path: "/api/recent_jobs", TTL: 30 * time.Second}})
	if w := jobs.Widgets[0]; w.Source != clientcache.SourceFresh || jobs.NetworkFetches != 0 {
		t.Fatalf("pushed widget: source=%s network=%d, want cache-fresh/0", w.Source, jobs.NetworkFetches)
	}
	if st.Stats().LastID <= before {
		t.Fatalf("LastID did not advance past %d", before)
	}

	// Server shutdown ends the stream cleanly; the browser falls back to
	// plain polling against the still-running HTTP mux.
	server.Close()
	select {
	case <-st.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not end on server close")
	}
	if st.Err() != nil {
		t.Fatalf("stream ended with error: %v", st.Err())
	}
	if st.Alive() {
		t.Fatal("Alive() after close")
	}
	env.Clock.Advance(2 * time.Minute)
	env.Cluster.Ctl.Tick()
	fallback := b.LoadHomepage()
	if !fallback.FullyPainted() {
		t.Fatalf("polling fallback failed: %+v", fallback.Widgets)
	}
	if fallback.NetworkFetches == 0 {
		t.Fatal("polling fallback issued no requests")
	}
}

func TestEventStreamResumesFromLastID(t *testing.T) {
	env, _, url := sseStack(t)
	b := New(env.UserNames[0], url, nil, env.Clock)

	widgets := []WidgetRequest{{Name: "system_status", Path: "/api/system_status", TTL: 60 * time.Second}}
	st, err := b.OpenEventStream(widgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return st.Stats().Events >= 1 }, "initial snapshot")
	first := st.Stats().LastID
	st.Close()
	if b.lastEventID != first {
		t.Fatalf("browser lastEventID = %d, want %d", b.lastEventID, first)
	}

	// Reconnecting resumes from the remembered version: an unchanged snapshot
	// is not replayed a second time.
	st2, err := b.OpenEventStream(widgets, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	time.Sleep(50 * time.Millisecond)
	if n := st2.Stats().Events; n != 0 {
		t.Fatalf("resume replayed %d events, want 0", n)
	}
}
