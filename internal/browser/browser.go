// Package browser simulates dashboard users' browsers for the experiments:
// each Browser owns an IndexedDB-style client cache (internal/clientcache)
// and loads pages by fetching every widget's API route with the frontend's
// cache policy — instant first paint from cache when possible, background
// refresh when stale. Load results report where each widget's first paint
// came from and how long the network portion took, which is the measurement
// behind the paper's "users almost always instantly see the full component"
// claim (§2.4).
package browser

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/clientcache"
)

// WidgetRequest names one widget fetch within a page load: the API path and
// the client-side TTL the frontend uses for it.
type WidgetRequest struct {
	Name string
	Path string
	TTL  time.Duration
}

// HomepageWidgets returns the five homepage widget fetches with the
// client-side TTLs from §2.4 (matching core.DefaultTTLs).
func HomepageWidgets() []WidgetRequest {
	return []WidgetRequest{
		{Name: "announcements", Path: "/api/announcements", TTL: 30 * time.Minute},
		{Name: "recent_jobs", Path: "/api/recent_jobs", TTL: 30 * time.Second},
		{Name: "system_status", Path: "/api/system_status", TTL: 60 * time.Second},
		{Name: "accounts", Path: "/api/accounts", TTL: 60 * time.Second},
		{Name: "storage", Path: "/api/storage", TTL: time.Hour},
	}
}

// WidgetResult reports one widget fetch within a page load.
type WidgetResult struct {
	Name   string
	Source clientcache.FetchSource
	Bytes  int
	// NetworkTime is the wall-clock time this widget spent in its backend
	// request; zero when the first paint came from cache with no refresh.
	// Load generators aggregate it into per-widget latency percentiles.
	NetworkTime time.Duration
	// Degraded is degraded mode as this client observed it: the backend
	// answered from its stale-while-error fallback (X-OODDash-Degraded
	// header), or the request failed outright and the browser fell back to
	// its own stale cached copy. Either way the widget painted old data.
	Degraded bool
	// StaleFallback distinguishes the client-side case: the backend request
	// failed and the browser's cached copy was the fallback.
	StaleFallback bool
	Err           error
}

// PageLoad aggregates one page load.
type PageLoad struct {
	Widgets []WidgetResult
	// InstantPaints counts widgets whose first paint needed no network
	// round-trip (fresh or stale cache hit).
	InstantPaints int
	// NetworkFetches counts widgets that went to the backend.
	NetworkFetches int
	// NetworkTime is the wall-clock time spent in backend requests.
	NetworkTime time.Duration
	// DegradedPaints counts widgets that painted old data: served degraded
	// by the backend, or rescued by the browser's own stale cache after a
	// failed request. This is the client-observed degraded rate the load
	// generator gates on.
	DegradedPaints int
	// NotModified counts refreshes the server answered 304 from the
	// client's ETag — revalidations that cost headers, not a body.
	NotModified int
	// Failed counts widgets that errored with no cached fallback.
	Failed int
}

// FullyPainted reports whether every widget rendered something.
func (p *PageLoad) FullyPainted() bool { return p.Failed == 0 }

// Clock supplies the logical time for client-cache freshness decisions;
// it matches the simulation clock shared by the whole stack.
type Clock interface {
	Now() time.Time
}

// Browser is one simulated user's browser profile.
type Browser struct {
	User    string
	BaseURL string
	Client  *http.Client
	db      *clientcache.DB
	store   *clientcache.Store
	// lastEventID remembers the newest SSE snapshot version this browser has
	// applied, so a reconnecting event stream resumes instead of replaying
	// (EventSource's Last-Event-ID behavior). Guarded by the stream's mutex
	// while a stream is open.
	lastEventID int64
}

// New returns a browser for user against the dashboard at baseURL. Each
// browser has its own IndexedDB (per-profile, as in real browsers), driven
// by the shared simulation clock.
func New(user, baseURL string, client *http.Client, clock Clock) *Browser {
	if client == nil {
		client = http.DefaultClient
	}
	db := clientcache.New(clock)
	return &Browser{
		User:    user,
		BaseURL: baseURL,
		Client:  client,
		db:      db,
		store:   db.ObjectStore("api-responses"),
	}
}

// fetchAPI performs one authenticated backend request, revalidating with
// If-None-Match when the client cache holds a tagged copy. A 304 answer
// returns clientcache.ErrNotModified; degraded reports whether the server
// marked the response as stale-while-error fallback.
func (b *Browser) fetchAPI(path, etag string) (body []byte, newTag string, degraded bool, err error) {
	req, err := http.NewRequest("GET", b.BaseURL+path, nil)
	if err != nil {
		return nil, "", false, err
	}
	req.Header.Set(auth.UserHeader, b.User)
	req.Header.Set("Accept", "application/json")
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := b.Client.Do(req)
	if err != nil {
		return nil, "", false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotModified {
		return nil, etag, false, clientcache.ErrNotModified
	}
	degraded = resp.Header.Get("X-OODDash-Degraded") != ""
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, "", degraded, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", degraded, fmt.Errorf("browser: %s returned %d: %.120s", path, resp.StatusCode, body)
	}
	return body, resp.Header.Get("ETag"), degraded, nil
}

// LoadPage loads one page: every widget goes through the client cache
// policy, exactly like widgets.js in the served frontend.
func (b *Browser) LoadPage(widgets []WidgetRequest) PageLoad {
	var out PageLoad
	for _, w := range widgets {
		serverDegraded := false
		var netTime time.Duration
		res, err := b.store.FetchTagged(w.Path, w.TTL, func(etag string) ([]byte, string, error) {
			start := time.Now()
			body, tag, deg, ferr := b.fetchAPI(w.Path, etag)
			netTime = time.Since(start)
			out.NetworkTime += netTime
			out.NetworkFetches++
			serverDegraded = deg
			return body, tag, ferr
		})
		wr := WidgetResult{Name: w.Name, NetworkTime: netTime, Err: err}
		if err == nil {
			wr.Source = res.Source
			wr.Bytes = len(res.Value)
			wr.StaleFallback = res.StaleFallback
			wr.Degraded = serverDegraded || res.StaleFallback
			// Revalidated paints are instant too: the cached copy painted
			// while the conditional request confirmed it unchanged.
			switch res.Source {
			case clientcache.SourceFresh, clientcache.SourceStale, clientcache.SourceRevalidated:
				out.InstantPaints++
			}
			if res.Source == clientcache.SourceRevalidated {
				out.NotModified++
			}
			if wr.Degraded {
				out.DegradedPaints++
			}
		} else {
			wr.Degraded = serverDegraded
			out.Failed++
		}
		out.Widgets = append(out.Widgets, wr)
	}
	return out
}

// LoadHomepage loads the five-widget homepage.
func (b *Browser) LoadHomepage() PageLoad {
	return b.LoadPage(HomepageWidgets())
}

// ClearCache wipes the browser's client cache (a "first visit" profile).
func (b *Browser) ClearCache() {
	b.store.Clear()
}

// CacheLen reports how many API responses the client cache holds.
func (b *Browser) CacheLen() int { return b.store.Len() }
