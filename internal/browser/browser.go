// Package browser simulates dashboard users' browsers for the experiments:
// each Browser owns an IndexedDB-style client cache (internal/clientcache)
// and loads pages by fetching every widget's API route with the frontend's
// cache policy — instant first paint from cache when possible, background
// refresh when stale. Load results report where each widget's first paint
// came from and how long the network portion took, which is the measurement
// behind the paper's "users almost always instantly see the full component"
// claim (§2.4).
package browser

import (
	"fmt"
	"io"
	"net/http"
	"time"

	"ooddash/internal/auth"
	"ooddash/internal/clientcache"
)

// WidgetRequest names one widget fetch within a page load: the API path and
// the client-side TTL the frontend uses for it.
type WidgetRequest struct {
	Name string
	Path string
	TTL  time.Duration
}

// HomepageWidgets returns the five homepage widget fetches with the
// client-side TTLs from §2.4 (matching core.DefaultTTLs).
func HomepageWidgets() []WidgetRequest {
	return []WidgetRequest{
		{Name: "announcements", Path: "/api/announcements", TTL: 30 * time.Minute},
		{Name: "recent_jobs", Path: "/api/recent_jobs", TTL: 30 * time.Second},
		{Name: "system_status", Path: "/api/system_status", TTL: 60 * time.Second},
		{Name: "accounts", Path: "/api/accounts", TTL: 60 * time.Second},
		{Name: "storage", Path: "/api/storage", TTL: time.Hour},
	}
}

// WidgetResult reports one widget fetch within a page load.
type WidgetResult struct {
	Name   string
	Source clientcache.FetchSource
	Bytes  int
	// NetworkTime is the wall-clock time this widget spent in its backend
	// request; zero when the first paint came from cache with no refresh.
	// Load generators aggregate it into per-widget latency percentiles.
	NetworkTime time.Duration
	// Degraded is set when the backend answered from its stale-while-error
	// fallback (X-OODDash-Degraded header): the widget painted, but with
	// last-known-good data because the data source is down.
	Degraded bool
	Err      error
}

// PageLoad aggregates one page load.
type PageLoad struct {
	Widgets []WidgetResult
	// InstantPaints counts widgets whose first paint needed no network
	// round-trip (fresh or stale cache hit).
	InstantPaints int
	// NetworkFetches counts widgets that went to the backend.
	NetworkFetches int
	// NetworkTime is the wall-clock time spent in backend requests.
	NetworkTime time.Duration
	// DegradedPaints counts widgets the backend served in degraded mode
	// (stale last-known-good data during a source outage).
	DegradedPaints int
	// Failed counts widgets that errored with no cached fallback.
	Failed int
}

// FullyPainted reports whether every widget rendered something.
func (p *PageLoad) FullyPainted() bool { return p.Failed == 0 }

// Clock supplies the logical time for client-cache freshness decisions;
// it matches the simulation clock shared by the whole stack.
type Clock interface {
	Now() time.Time
}

// Browser is one simulated user's browser profile.
type Browser struct {
	User    string
	BaseURL string
	Client  *http.Client
	db      *clientcache.DB
	store   *clientcache.Store
}

// New returns a browser for user against the dashboard at baseURL. Each
// browser has its own IndexedDB (per-profile, as in real browsers), driven
// by the shared simulation clock.
func New(user, baseURL string, client *http.Client, clock Clock) *Browser {
	if client == nil {
		client = http.DefaultClient
	}
	db := clientcache.New(clock)
	return &Browser{
		User:    user,
		BaseURL: baseURL,
		Client:  client,
		db:      db,
		store:   db.ObjectStore("api-responses"),
	}
}

// fetchAPI performs one authenticated backend request. degraded reports
// whether the server marked the response as stale-while-error fallback.
func (b *Browser) fetchAPI(path string) (body []byte, degraded bool, err error) {
	req, err := http.NewRequest("GET", b.BaseURL+path, nil)
	if err != nil {
		return nil, false, err
	}
	req.Header.Set(auth.UserHeader, b.User)
	req.Header.Set("Accept", "application/json")
	resp, err := b.Client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	degraded = resp.Header.Get("X-OODDash-Degraded") != ""
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, degraded, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, degraded, fmt.Errorf("browser: %s returned %d: %.120s", path, resp.StatusCode, body)
	}
	return body, degraded, nil
}

// LoadPage loads one page: every widget goes through the client cache
// policy, exactly like widgets.js in the served frontend.
func (b *Browser) LoadPage(widgets []WidgetRequest) PageLoad {
	var out PageLoad
	for _, w := range widgets {
		degraded := false
		var netTime time.Duration
		res, err := b.store.Fetch(w.Path, w.TTL, func() ([]byte, error) {
			start := time.Now()
			body, deg, ferr := b.fetchAPI(w.Path)
			netTime = time.Since(start)
			out.NetworkTime += netTime
			out.NetworkFetches++
			degraded = deg
			return body, ferr
		})
		wr := WidgetResult{Name: w.Name, NetworkTime: netTime, Degraded: degraded, Err: err}
		if err == nil {
			wr.Source = res.Source
			wr.Bytes = len(res.Value)
			if res.Source == clientcache.SourceFresh || res.Source == clientcache.SourceStale {
				out.InstantPaints++
			}
			if degraded {
				out.DegradedPaints++
			}
		} else {
			out.Failed++
		}
		out.Widgets = append(out.Widgets, wr)
	}
	return out
}

// LoadHomepage loads the five-widget homepage.
func (b *Browser) LoadHomepage() PageLoad {
	return b.LoadPage(HomepageWidgets())
}

// ClearCache wipes the browser's client cache (a "first visit" profile).
func (b *Browser) ClearCache() {
	b.store.Clear()
}

// CacheLen reports how many API responses the client cache holds.
func (b *Browser) CacheLen() int { return b.store.Len() }
