package browser

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"ooddash/internal/auth"
	"ooddash/internal/push"
)

// EventStream is the browser's SSE connection to /api/events: every named
// event it receives is written into the client cache under the widget's API
// path, so page loads paint instantly from cache without polling. When the
// stream dies the browser simply falls back to the polling policy LoadPage
// already implements — the cache it kept hot is still there.
type EventStream struct {
	browser *Browser
	paths   map[string]string // event name -> client-cache key (API path)
	resp    *http.Response
	onEvent func(push.Event)

	mu       sync.Mutex
	events   int64
	degraded int64
	lastID   int64
	closed   bool
	err      error

	done chan struct{}
}

// OpenEventStream subscribes to the given widgets' live updates, resuming
// from the browser's last seen event version when reconnecting. onEvent
// (optional) observes every applied event after the cache write — load
// generators use it to timestamp delivery. The stream reads on its own
// goroutine until the server shuts down, the connection drops, or Close.
func (b *Browser) OpenEventStream(widgets []WidgetRequest, onEvent func(push.Event)) (*EventStream, error) {
	names := make([]string, 0, len(widgets))
	paths := make(map[string]string, len(widgets))
	for _, w := range widgets {
		names = append(names, w.Name)
		paths[w.Name] = w.Path
	}
	req, err := http.NewRequest("GET", b.BaseURL+"/api/events?widgets="+strings.Join(names, ","), nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(auth.UserHeader, b.User)
	req.Header.Set("Accept", "text/event-stream")
	if b.lastEventID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatInt(b.lastEventID, 10))
	}
	// The browser's polling client may carry a request timeout, which would
	// kill a long-lived stream mid-flight; streams share its transport only.
	client := &http.Client{Transport: b.Client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, fmt.Errorf("browser: event stream returned %d: %.120s", resp.StatusCode, body)
	}
	st := &EventStream{
		browser: b,
		paths:   paths,
		resp:    resp,
		onEvent: onEvent,
		lastID:  b.lastEventID,
		done:    make(chan struct{}),
	}
	go st.loop()
	return st, nil
}

func (st *EventStream) loop() {
	defer close(st.done)
	dec := push.NewDecoder(st.resp.Body)
	for {
		ev, err := dec.Next()
		if err != nil {
			st.mu.Lock()
			if err != io.EOF && !st.closed {
				st.err = err
			}
			st.mu.Unlock()
			return
		}
		if ev.Name == "shutdown" {
			return
		}
		key, ok := st.paths[ev.Name]
		if !ok {
			continue
		}
		// The event payload is exactly what the polling route would have
		// served; storing it keeps LoadPage's first paint instant and fresh.
		st.browser.store.Put(key, ev.Data)
		st.mu.Lock()
		st.events++
		if bytes.Contains(ev.Data, []byte(`"degraded":true`)) {
			st.degraded++
		}
		if ev.ID > st.lastID {
			st.lastID = ev.ID
			st.browser.lastEventID = ev.ID
		}
		st.mu.Unlock()
		if st.onEvent != nil {
			st.onEvent(ev)
		}
	}
}

// StreamStats reports what the stream has applied so far.
type StreamStats struct {
	Events   int64 // events applied to the client cache
	Degraded int64 // of those, payloads self-marked degraded
	LastID   int64 // newest applied snapshot version
}

// Stats returns the stream's counters.
func (st *EventStream) Stats() StreamStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return StreamStats{Events: st.events, Degraded: st.degraded, LastID: st.lastID}
}

// Alive reports whether the stream is still being read.
func (st *EventStream) Alive() bool {
	select {
	case <-st.done:
		return false
	default:
		return true
	}
}

// Done is closed when the stream ends for any reason.
func (st *EventStream) Done() <-chan struct{} { return st.done }

// Err returns the stream's terminal error, if it ended abnormally (nil for
// Close, server shutdown, or clean EOF).
func (st *EventStream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Close tears the connection down and waits for the read loop to exit.
func (st *EventStream) Close() {
	st.mu.Lock()
	st.closed = true
	st.mu.Unlock()
	st.resp.Body.Close()
	<-st.done
}
