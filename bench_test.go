package ooddash

// One benchmark per table and figure of the paper's evaluation, plus the
// §2.4 performance/privacy claims and the ablations DESIGN.md calls out.
// The heavyweight experiment logic lives in internal/experiments; these
// benchmarks measure the steady-state cost of each reproduced artifact.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"ooddash/internal/experiments"
	"ooddash/internal/workload"
)

var (
	stackOnce sync.Once
	stackVal  *experiments.Stack
	stackErr  error
	subjects  experiments.Subjects
)

// sharedStack returns the default-spec deployment (512 nodes, ~34k
// accounting records), built once per test binary.
func sharedStack(b *testing.B) *experiments.Stack {
	b.Helper()
	stackOnce.Do(func() {
		stackVal, stackErr = experiments.NewStack(workload.DefaultSpec())
		if stackErr == nil {
			subjects, stackErr = stackVal.PickSubjects()
		}
	})
	if stackErr != nil {
		b.Fatalf("building shared stack: %v", stackErr)
	}
	return stackVal
}

// smallStack builds a private small-spec deployment for benchmarks that
// mutate the simulated clock or global cache flags.
func smallStack(b *testing.B) *experiments.Stack {
	b.Helper()
	s, err := experiments.NewStack(workload.SmallSpec())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(s.Close)
	return s
}

// benchRoute measures one API route in cold (server cache cleared every
// iteration) and cached sub-benchmarks.
func benchRoute(b *testing.B, user, path string) {
	s := sharedStack(b)
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s.ClearServerCache()
			if _, _, err := s.MustGet(user, path); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		if _, _, err := s.MustGet(user, path); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := s.MustGet(user, path); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Table 1: one benchmark per feature row ----------------------------------

func BenchmarkTable1_AnnouncementsWidget(b *testing.B) {
	benchRoute(b, sharedStack(b).User(0), "/api/announcements")
}

func BenchmarkTable1_RecentJobsWidget(b *testing.B) {
	benchRoute(b, sharedStack(b).User(0), "/api/recent_jobs")
}

func BenchmarkTable1_SystemStatusWidget(b *testing.B) {
	benchRoute(b, sharedStack(b).User(0), "/api/system_status")
}

func BenchmarkTable1_AccountsWidget(b *testing.B) {
	benchRoute(b, sharedStack(b).User(0), "/api/accounts")
}

func BenchmarkTable1_StorageWidget(b *testing.B) {
	benchRoute(b, sharedStack(b).User(0), "/api/storage")
}

func BenchmarkTable1_MyJobs(b *testing.B) {
	s := sharedStack(b)
	benchRoute(b, subjects.User, "/api/myjobs?range=7d")
	_ = s
}

func BenchmarkTable1_JobPerformanceMetrics(b *testing.B) {
	benchRoute(b, subjects.User, "/api/jobperf?range=7d")
}

func BenchmarkTable1_ClusterStatus(b *testing.B) {
	benchRoute(b, sharedStack(b).User(0), "/api/cluster_status")
}

func BenchmarkTable1_JobOverview(b *testing.B) {
	sharedStack(b)
	benchRoute(b, subjects.User, fmt.Sprintf("/api/job/%d", subjects.JobID))
}

func BenchmarkTable1_NodeOverview(b *testing.B) {
	sharedStack(b)
	benchRoute(b, subjects.User, "/api/node/"+subjects.Node)
}

func BenchmarkTable1_JobLogView(b *testing.B) {
	s := sharedStack(b)
	owner := subjects.User
	if j := s.Env.Cluster.DBD.Job(subjects.LogJobID); j != nil {
		owner = j.User
	}
	benchRoute(b, owner, fmt.Sprintf("/api/job/%d/logs", subjects.LogJobID))
}

func BenchmarkTable1_JobArrayTab(b *testing.B) {
	s := sharedStack(b)
	if subjects.ArrayJobID == 0 {
		b.Skip("trace has no job arrays")
	}
	owner := subjects.User
	if j := s.Env.Cluster.DBD.Job(subjects.ArrayJobID); j != nil {
		owner = j.User
	}
	benchRoute(b, owner, fmt.Sprintf("/api/job/%d/array", subjects.ArrayJobID))
}

// --- Figure 1: end-to-end data flow -------------------------------------------

func BenchmarkFigure1_DataFlow(b *testing.B) {
	s := smallStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1DataFlow(s, 10, 3)
		if err != nil {
			b.Fatal(err)
		}
		if res.CtlRPCs >= int64(res.WidgetViews) {
			b.Fatalf("funnel inverted: %+v", res)
		}
	}
}

// --- Figure 2: homepage load --------------------------------------------------

func BenchmarkFigure2_HomepageColdLoad(b *testing.B) {
	s := sharedStack(b)
	user := s.User(0)
	for i := 0; i < b.N; i++ {
		s.ClearServerCache()
		br := s.Browser(user)
		load := br.LoadHomepage()
		if !load.FullyPainted() || load.NetworkFetches != 5 {
			b.Fatalf("cold load = %+v", load)
		}
	}
}

func BenchmarkFigure2_HomepageWarmLoad(b *testing.B) {
	s := sharedStack(b)
	br := s.Browser(s.User(0))
	if load := br.LoadHomepage(); !load.FullyPainted() {
		b.Fatal("prime failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		load := br.LoadHomepage()
		if load.InstantPaints != 5 {
			b.Fatalf("warm load not instant: %+v", load)
		}
	}
}

// --- Figure 3: My Jobs ----------------------------------------------------------

func BenchmarkFigure3_MyJobsTable(b *testing.B) {
	benchRoute(b, subjects.User, "/api/myjobs?range=all")
	_ = sharedStack(b)
}

func BenchmarkFigure3_MyJobsCharts(b *testing.B) {
	sharedStack(b)
	benchRoute(b, subjects.User, "/api/myjobs/charts?range=all")
}

// --- Figure 4a: Job Performance Metrics -----------------------------------------

func BenchmarkFigure4a_JobPerf(b *testing.B) {
	sharedStack(b)
	for _, rng := range []string{"24h", "7d", "all"} {
		benchRange := rng
		b.Run(benchRange, func(b *testing.B) {
			s := sharedStack(b)
			path := "/api/jobperf?range=" + benchRange
			for i := 0; i < b.N; i++ {
				s.ClearServerCache()
				if _, _, err := s.MustGet(subjects.User, path); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4b: Cluster Status node sweep ----------------------------------------

func BenchmarkFigure4b_ClusterStatus(b *testing.B) {
	for _, nodes := range []int{128, 512, 2048} {
		nodes := nodes
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			spec := workload.SmallSpec()
			spec.CPUNodes = nodes - nodes/8 - nodes/32
			spec.HighmemNodes = nodes / 8
			spec.GPUNodes = nodes / 32
			s, err := experiments.NewStack(spec)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			user := s.User(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.ClearServerCache()
				if _, _, err := s.MustGet(user, "/api/cluster_status"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 4c: Node Overview ------------------------------------------------------

func BenchmarkFigure4c_NodeOverview(b *testing.B) {
	sharedStack(b)
	benchRoute(b, subjects.User, "/api/node/"+subjects.Node)
}

// --- Figure 4d: Job Overview and log tail ------------------------------------------

func BenchmarkFigure4d_JobOverview(b *testing.B) {
	sharedStack(b)
	benchRoute(b, subjects.User, fmt.Sprintf("/api/job/%d", subjects.JobID))
}

func BenchmarkFigure4d_LogTail50kLines(b *testing.B) {
	s := smallStack(b)
	res, err := experiments.Figure4dJobOverview(s)
	if err != nil {
		b.Fatal(err)
	}
	user := s.User(0)
	path := fmt.Sprintf("/api/job/%s/logs", res.JobID)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.MustGet(user, path); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §2.4: cache load, TTL, singleflight, privacy -----------------------------------

func BenchmarkSection24_CacheLoadCacheOn(b *testing.B) {
	s := smallStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Section24CacheLoad(s, []int{50}, 2, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection24_CacheLoadCacheOff(b *testing.B) {
	s := smallStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Section24CacheLoad(s, []int{50}, 2, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSection24_Privacy(b *testing.B) {
	s := smallStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Section24Privacy(s, 6)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) != 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
	}
}

// --- Ablations -------------------------------------------------------------------------

func BenchmarkAblation_Singleflight(b *testing.B) {
	s := smallStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Section24Singleflight(s, 32)
		if err != nil {
			b.Fatal(err)
		}
		if rows[0].CtlRPCs != 1 {
			b.Fatalf("collapsed burst cost %d RPCs", rows[0].CtlRPCs)
		}
	}
}

func BenchmarkAblation_ServerCacheDisabled(b *testing.B) {
	s := smallStack(b)
	user := s.User(0)
	s.Server.Cache().Disabled = true
	defer func() { s.Server.Cache().Disabled = false }()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.MustGet(user, "/api/recent_jobs"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblation_TTLSweep(b *testing.B) {
	for _, ttl := range []time.Duration{time.Second, 30 * time.Second, 5 * time.Minute} {
		ttl := ttl
		b.Run(ttl.String(), func(b *testing.B) {
			s := smallStack(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.Section24TTLSweep(s, []time.Duration{ttl}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
