module ooddash

go 1.23
