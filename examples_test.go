package ooddash

// Smoke tests that build and run every example and CLI entry point as a
// subprocess, so the runnable documentation can't rot. Skipped with -short.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// runGo executes `go run <pkg> <args...>` with a deadline and returns its
// combined output.
func runGo(t *testing.T, timeout time.Duration, pkg string, args ...string) string {
	t.Helper()
	argv := append([]string{"run", pkg}, args...)
	cmd := exec.Command("go", argv...)
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(timeout):
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
		<-done
		t.Fatalf("go run %s timed out after %v\n%s", pkg, timeout, out)
	}
	if err != nil {
		t.Fatalf("go run %s: %v\n%s", pkg, err, out)
	}
	return string(out)
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke tests")
	}
	cases := []struct {
		pkg  string
		want string // substring that proves the example did its job
	}{
		{"./examples/quickstart", "System Status:"},
		{"./examples/groupmonitor", "CSV export of"},
		{"./examples/efficiencyreport", "cluster efficiency report"},
		{"./examples/portability", "failure isolation"},
		{"./examples/adminreport", "cluster accounting overview"},
		{"./examples/maintenancewindow", "MAINT"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.pkg, "./examples/"), func(t *testing.T) {
			t.Parallel()
			out := runGo(t, 2*time.Minute, tc.pkg)
			if !strings.Contains(out, tc.want) {
				t.Fatalf("output missing %q:\n%.600s", tc.want, out)
			}
		})
	}
}

func TestSlurmsimCLIRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke tests")
	}
	out := runGo(t, 2*time.Minute, "./cmd/slurmsim", "-small", "sinfo")
	if !strings.Contains(out, "PARTITION") {
		t.Fatalf("sinfo output:\n%s", out)
	}
	out = runGo(t, 2*time.Minute, "./cmd/slurmsim", "-small", "sdiag")
	if !strings.Contains(out, "slurmctld statistics") {
		t.Fatalf("sdiag output:\n%s", out)
	}
}

func TestBenchharnessSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess smoke tests")
	}
	out := runGo(t, 3*time.Minute, "./cmd/benchharness", "-small", "-experiment", "privacy")
	if !strings.Contains(out, "violations") || strings.Contains(out, "VIOLATION:") {
		t.Fatalf("privacy experiment output:\n%s", out)
	}
}
