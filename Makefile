# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: check test vet test-race race bench bench-go bench-push bench-hotpath bench-chaos bench-rest bench-fleet bench-rollup bench-slo drills harness run verify

check: test vet test-race vet-push vet-trace vet-rest vet-fleet vet-rollup vet-slo drills  ## the default CI gate: build + tests + vet + race detector + chaos drills

drills:          ## fast chaos-drill smoke: every catalog scenario + unit drills under -race
	go test -race -run Drill -count=1 ./internal/slurm/ ./internal/core/ ./internal/chaos/ ./internal/fleet/

.PHONY: vet-push
vet-push:        ## focused gate on the push subsystem (vet + race over its packages)
	go vet ./internal/push/ ./internal/browser/ ./cmd/loadgen/
	go test -race ./internal/push/ ./internal/browser/

.PHONY: vet-trace
vet-trace:       ## focused gate on span tracing (vet + race over the instrumented layers)
	go vet ./internal/trace/ ./internal/cache/ ./internal/resilience/ ./internal/slurmcli/
	go test -race ./internal/trace/

.PHONY: vet-rest
vet-rest:        ## focused gate on the REST backend (vet + race over its packages)
	go vet ./internal/slurmrest/ ./cmd/dashboard/
	go test -race ./internal/slurmrest/

.PHONY: vet-fleet
vet-fleet:       ## focused gate on the scale-out tier (vet + race over its packages)
	go vet ./internal/fleet/ ./cmd/dashboard/ ./cmd/loadgen/
	go test -race ./internal/fleet/

.PHONY: vet-rollup
vet-rollup:      ## focused gate on the rollup pipeline (vet + race over its layers)
	go vet ./internal/slurm/ ./internal/core/ ./cmd/loadgen/
	go test -race -run Rollup ./internal/slurm/ ./internal/slurmcli/ ./internal/slurmrest/ ./internal/core/

.PHONY: vet-slo
vet-slo:         ## focused gate on the SLO engine (vet + race over every wired layer)
	go vet ./internal/slo/ ./internal/core/ ./internal/fleet/ ./internal/chaos/
	go test -race -run SLO -count=1 ./internal/slo/ ./internal/core/ ./internal/fleet/ ./internal/chaos/

test:            ## full test suite
	go build ./... && go test ./...

vet:             ## static analysis
	go vet ./...

test-race:       ## test suite under the race detector
	go test -race ./...

race: test-race  ## alias for test-race

bench: check     ## CI gate + loadgen smoke on the simulated clock -> BENCH_latency.json
	go run ./cmd/loadgen -smoke -users 25 -rounds 8 -interval 5s \
		-max-error-rate 0 -bench-out BENCH_latency.json

bench-go:        ## every Go benchmark (one per paper table/figure + package benches)
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

bench-push:      ## polling vs SSE upstream-RPC comparison -> BENCH_push.json
	go run ./cmd/loadgen -sse -users 50 -rounds 6 -interval 75s \
		-max-sse-rpc-ratio 2 -bench-out BENCH_push.json

bench-hotpath: check  ## encode-once vs re-encode hit path -> BENCH_hotpath.json (gated)
	go run ./cmd/loadgen -hotpath -hotpath-requests 28000 \
		-min-hotpath-alloc-ratio 5 -max-trace-allocs 3 -bench-out BENCH_hotpath.json

bench-chaos: drills  ## full chaos catalog under open-loop load, SLO-gated -> BENCH_chaos.json
	go run ./cmd/loadgen -chaos all -arrival-rate 400 -seed 7 \
		-chaos-wall 250ms -fill-cap 24 -bench-out BENCH_chaos.json

bench-rest: vet-rest  ## CLI vs REST backend A/B + token-scope probes -> BENCH_rest.json (gated)
	go run ./cmd/loadgen -backend-ab -ab-requests 300 \
		-max-rest-p95-ratio 1.5 -bench-out BENCH_rest.json

bench-fleet: vet-fleet  ## 1->4 replica scale-out: RPC flatness + kill drill -> BENCH_fleet.json (gated)
	go run ./cmd/loadgen -fleet -users 50 -fleet-replicas 4 -rounds 6 \
		-interval 75s -max-fleet-rpc-ratio 1.3 -bench-out BENCH_fleet.json

bench-slo: vet-slo  ## SLI recording allocs/op + chaos alert truth table -> BENCH_slo.json (gated)
	go run ./cmd/loadgen -slo -max-slo-allocs 1 -bench-out BENCH_slo.json

bench-rollup: vet-rollup  ## rollup vs raw-scan latency at 1x/100x/1000x history -> BENCH_rollup.json (gated)
	go run ./cmd/loadgen -rollup -rollup-requests 40 \
		-max-rollup-p95-ratio 1.5 -bench-out BENCH_rollup.json

harness:         ## regenerate every paper artifact (EXPERIMENTS.md numbers)
	go run ./cmd/benchharness

run:             ## live dashboard on :8080 over a small simulated cluster
	go run ./cmd/dashboard -small

verify: test     ## CI-style: tests + recorded outputs
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
