# Convenience targets; everything is plain `go` underneath (stdlib only).

.PHONY: check test vet test-race race bench bench-go harness run verify

check: test vet test-race  ## the default CI gate: build + tests + vet + race detector

test:            ## full test suite
	go build ./... && go test ./...

vet:             ## static analysis
	go vet ./...

test-race:       ## test suite under the race detector
	go test -race ./...

race: test-race  ## alias for test-race

bench: check     ## CI gate + loadgen smoke on the simulated clock -> BENCH_latency.json
	go run ./cmd/loadgen -smoke -users 25 -rounds 8 -interval 5s \
		-max-error-rate 0 -bench-out BENCH_latency.json

bench-go:        ## every Go benchmark (one per paper table/figure + package benches)
	go test -bench=. -benchmem ./...

harness:         ## regenerate every paper artifact (EXPERIMENTS.md numbers)
	go run ./cmd/benchharness

run:             ## live dashboard on :8080 over a small simulated cluster
	go run ./cmd/dashboard -small

verify: test     ## CI-style: tests + recorded outputs
	go test ./... 2>&1 | tee test_output.txt
	go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt
